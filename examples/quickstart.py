#!/usr/bin/env python
"""Quickstart: the two GPU filters of the paper, in five minutes.

The Two-Choice Filter (TCF) is the fast set-membership filter: inserts,
queries, deletes and small associated values.  The GPU Counting Quotient
Filter (GQF) adds counting (and therefore multiset semantics) at some
performance cost.  Both offer a point API (shown here) and a bulk API
(shown in the other examples).

Run with::

    python examples/quickstart.py
"""

import os

from repro import BulkGQF, PointGQF, PointTCF
from repro.core.tcf import TCFConfig
from repro.hashing import generate_keys

#: REPRO_EXAMPLE_SCALE=tiny shrinks the demo 10x so tests/test_examples.py
#: can run every example as a fast subprocess smoke test.
N = 1_000 if os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny" else 10_000


def tcf_demo() -> None:
    print("=== Two-Choice Filter (TCF) ===")
    # Size the filter for 10x the inserted items at its recommended 90 % load.
    tcf = PointTCF.for_capacity(10 * N)
    keys = generate_keys(5 * N, seed=42)

    for key in keys[:N]:
        tcf.insert(int(key))
    print(f"inserted {N:,} items; load factor {tcf.load_factor:.3f}")

    present = sum(tcf.query(int(k)) for k in keys[:N])
    absent = sum(tcf.query(int(k)) for k in keys[N:2 * N])
    print(f"positive queries found {present}/{N} (never a false negative)")
    print(f"negative queries matched {absent}/{N} "
          f"(false-positive rate ~{tcf.false_positive_rate:.4%})")

    # Deletions tombstone the fingerprint with a single compare-and-swap.
    for key in keys[:N // 2]:
        tcf.delete(int(key))
    print(f"deleted {N // 2:,} items; {tcf.n_items} remain\n")

    # Small values can be packed next to the fingerprint.
    valued = PointTCF.for_capacity(
        1_000, TCFConfig(fingerprint_bits=16, block_size=16, value_bits=4)
    )
    valued.insert(1234, value=7)
    print(f"value stored with key 1234: {valued.get_value(1234)}\n")


def gqf_demo() -> None:
    print("=== GPU Counting Quotient Filter (GQF) ===")
    gqf = PointGQF.for_capacity(10 * N)
    keys = generate_keys(N // 2, seed=7)

    # The GQF counts multiplicities; counts are never under-reported.
    for key in keys:
        gqf.insert(int(key))
    for key in keys[:N // 10]:
        gqf.insert(int(key))  # second occurrence
    print(f"count of a twice-inserted key: {gqf.count(int(keys[0]))}")
    print(f"count of a once-inserted key:  {gqf.count(int(keys[N // 5]))}")
    print(f"count of an absent key:        {gqf.count(987654321)}")

    # The bulk API inserts a whole batch with the lock-free even-odd scheme.
    bulk = BulkGQF.for_capacity(10 * N)
    bulk.bulk_insert(keys)
    print(f"bulk filter holds {bulk.n_items} distinct items "
          f"at load factor {bulk.load_factor:.3f}")

    # Quotient filters are resizable: enumerate fingerprints into a bigger table.
    resized = gqf.resized()
    print(f"after resize: {resized.n_slots} slots, "
          f"twice-inserted key still counts {resized.count(int(keys[0]))}")


if __name__ == "__main__":
    tcf_demo()
    gqf_demo()
