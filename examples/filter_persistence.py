#!/usr/bin/env python
"""Filter lifecycle: save/load snapshots, k-way merge, and online resize.

A filter in a real pipeline (the paper's motivating MetaHipMer run) outlives
a single process: per-node shards are written to disk, shipped, merged into
one filter, and grown when the dataset outpaces the initial sizing.  This
example walks the whole lifecycle with the lifecycle layer:

* ``filter.save(path)`` / ``FilterClass.load(path)`` — versioned,
  CRC-checked binary snapshots, ``np.memmap``-able for zero-copy loads;
* ``repro.lifecycle.merge(*filters)`` — k-way merge via the same device
  sort + reduce-by-key pipeline the bulk insert path uses;
* ``auto_resize=True`` — load-factor-triggered online growth (quotient
  extension for the GQF, journal-replay double-and-rehash for the TCF).

Run with::

    python examples/filter_persistence.py

Set ``REPRO_SNAPSHOT_DIR`` to keep the snapshot files around (CI uploads
them as build artifacts); otherwise a temporary directory is used.
"""

import os
import tempfile

import numpy as np

from repro import BulkGQF, PointTCF
from repro.hashing import generate_keys
from repro.lifecycle import merge

#: REPRO_EXAMPLE_SCALE=tiny shrinks the demo so tests/test_examples.py
#: can run every example as a fast subprocess smoke test.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
N = 2_000 if TINY else 50_000
SHARDS = 3


def snapshot_demo(workdir: str) -> None:
    print("=== snapshots: save/load round trip ===")
    filt = BulkGQF.for_capacity(2 * N)
    keys = generate_keys(N, seed=42)
    filt.bulk_insert(keys)

    path = os.path.join(workdir, "gqf.rpro")
    nbytes = filt.save(path)
    print(f"saved {filt.n_items:,} items to {path} ({nbytes:,} bytes)")

    loaded = BulkGQF.load(path)
    assert loaded.bulk_query(keys).all()
    assert np.array_equal(loaded.core.slots.peek(), filt.core.slots.peek())
    print(f"loaded filter is bit-identical ({loaded.n_items:,} items)\n")


def merge_demo(workdir: str) -> None:
    print(f"=== {SHARDS}-way merge of per-shard filters ===")
    keys = generate_keys(N, seed=7)
    paths = []
    for i, shard in enumerate(np.array_split(keys, SHARDS)):
        filt = BulkGQF.for_capacity(N)
        filt.bulk_insert(shard)
        path = os.path.join(workdir, f"shard{i}.rpro")
        filt.save(path)
        paths.append(path)
    shards = [BulkGQF.load(path) for path in paths]
    merged = merge(*shards)
    assert merged.bulk_query(keys).all()
    print(f"merged {SHARDS} shards of ~{N // SHARDS:,} keys into one filter "
          f"holding {merged.n_items:,} items "
          f"(load factor {merged.load_factor:.2f})\n")


def resize_demo() -> None:
    print("=== online resize: inserting far past the initial capacity ===")
    filt = PointTCF(256, auto_resize=True)
    keys = generate_keys(N, seed=3)
    filt.bulk_insert(keys)
    assert filt.bulk_query(keys).all()
    print(f"a 256-slot TCF absorbed {N:,} keys through {filt.n_resizes} "
          f"doublings ({filt.table.n_slots:,} slots, "
          f"load factor {filt.load_factor:.2f})")


def main() -> None:
    snapshot_dir = os.environ.get("REPRO_SNAPSHOT_DIR")
    if snapshot_dir:
        os.makedirs(snapshot_dir, exist_ok=True)
        snapshot_demo(snapshot_dir)
        merge_demo(snapshot_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            snapshot_demo(tmp)
            merge_demo(tmp)
    resize_demo()


if __name__ == "__main__":
    main()
