#!/usr/bin/env python
"""Genomics example: GPU k-mer counting and singleton filtering.

This is the workload that motivates the paper's MetaHipMer integration
(Table 3) and the "k-mer count" column of Table 5: raw sequencing reads are
decomposed into k-mers, counted in a GQF (the Squeakr-on-GPU design), and —
in the memory-constrained assembler setting — singleton k-mers (mostly
sequencing errors) are weeded out with a TCF before they ever reach the
k-mer hash table.

Run with::

    python examples/kmer_counting.py
"""

import os

import numpy as np

from repro.apps.kmer_counter import GPUKmerCounter
from repro.apps.metahipmer import KmerAnalysisPhase
from repro.workloads import kmer

#: REPRO_EXAMPLE_SCALE=tiny shrinks the sample so tests/test_examples.py
#: can run every example as a fast subprocess smoke test.
GENOME_BP = 2_000 if os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny" else 20_000


def main() -> None:
    # ------------------------------------------------------------------ data
    print("generating a synthetic metagenome sample...")
    genome = kmer.random_genome(GENOME_BP, seed=11)
    reads = kmer.generate_reads(genome, read_length=100, coverage=8.0,
                                error_rate=0.01, seed=11)
    kmers = kmer.extract_kmers(reads, k=21)
    distinct, counts = kmer.kmer_spectrum(kmers)
    print(f"  {reads.n_reads} reads, {kmers.size} k-mers, "
          f"{distinct.size} distinct, "
          f"{kmer.singleton_fraction(kmers):.0%} singletons\n")

    # ----------------------------------------------------------- counting
    print("counting k-mers in the GQF (bulk, map-reduce aggregated)...")
    counter = GPUKmerCounter(expected_kmers=distinct.size * 2, k=21)
    report = counter.count_reads(reads)
    print(f"  filter load factor: {report.filter_load_factor:.2f}")

    # Verify a few counts against the exact spectrum (the GQF never
    # under-counts; over-counts come only from rare fingerprint collisions).
    sample = np.random.default_rng(0).choice(distinct.size, 5, replace=False)
    for index in sample:
        kmer_value, true_count = int(distinct[index]), int(counts[index])
        print(f"  k-mer {kmer_value:>20d}: true count {true_count:>3d}, "
              f"GQF count {counter.count(kmer_value):>3d}")

    frequent = counter.heavy_hitters(distinct[:200].tolist(), threshold=5)
    print(f"  heavy hitters (count >= 5) among first 200 distinct k-mers: "
          f"{len(frequent)}\n")

    # ----------------------------------------------- MetaHipMer-style filtering
    print("MetaHipMer k-mer analysis phase: TCF singleton filtering...")
    with_tcf = KmerAnalysisPhase(expected_kmers=distinct.size * 2, use_tcf=True)
    without = KmerAnalysisPhase(expected_kmers=distinct.size * 2, use_tcf=False)
    with_tcf.process_read_set(reads)
    without.process_read_set(reads)

    mem_with = with_tcf.memory_report()
    mem_without = without.memory_report()
    total_with = sum(mem_with.values())
    total_without = sum(mem_without.values())
    print(f"  hash-table entries: {with_tcf.hash_table.n_entries} (with TCF) vs "
          f"{without.hash_table.n_entries} (without)")
    print(f"  memory: {total_with/1e3:.1f} KB (TCF {mem_with['tcf_bytes']/1e3:.1f} KB + "
          f"hash table {mem_with['hash_table_bytes']/1e3:.1f} KB) vs "
          f"{total_without/1e3:.1f} KB without the TCF")
    print(f"  reduction: {1 - total_with / total_without:.0%} "
          "(the paper reports ~38 % at full application scale)")


if __name__ == "__main__":
    main()
