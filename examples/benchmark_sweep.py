#!/usr/bin/env python
"""Mini benchmark sweep: reproduce a slice of Figures 3 and 4 interactively.

The full benchmark harness lives under ``benchmarks/`` (one module per paper
table/figure); this example runs a reduced sweep through the same public API
so you can explore how the modelled throughput responds to filter size,
device, and cooperative-group size.

Run with::

    python examples/benchmark_sweep.py
"""

from repro.analysis import figures, reporting
from repro.analysis.throughput import PHASE_INSERT, PHASE_POSITIVE
from repro.core.tcf import FIGURE5_VARIANTS
from repro.gpusim.device import A100, V100


def main() -> None:
    sizes = [22, 24, 26, 28]

    print("Point-API sweep (Figure 3 style), V100 vs A100\n")
    for device in (V100, A100):
        results = figures.figure3_point_api(device, sizes, sim_lg=10, n_queries=512)
        print(reporting.format_figure_series(
            results, PHASE_INSERT, f"{device.system.capitalize()} point inserts"))
        print()
        print(reporting.format_figure_series(
            results, PHASE_POSITIVE, f"{device.system.capitalize()} point positive queries"))
        print()

    print("Bulk-API sweep (Figure 4 style), V100\n")
    bulk = figures.figure4_bulk_api(V100, sizes, sim_lg=10, n_queries=512)
    print(reporting.format_figure_series(bulk, PHASE_INSERT, "Cori bulk inserts"))
    print()

    print("Cooperative-group sweep (Figure 5 style) for two TCF variants\n")
    cg_results = figures.figure5_cg_sweep(
        V100,
        lg_capacity=26,
        variants={label: FIGURE5_VARIANTS[label] for label in ("16-16", "8-8")},
        cg_sizes=(1, 2, 4, 8, 16, 32),
        sim_lg=10,
        n_queries=256,
    )
    best = figures.figure5_optimal_cg(cg_results, PHASE_INSERT)
    for label, per_cg in cg_results.items():
        series = ", ".join(
            f"cg={cg}: {point.throughput_bops(PHASE_INSERT):.2f} B/s"
            for cg, point in sorted(per_cg.items())
        )
        print(f"  variant {label}: {series}")
        print(f"    -> best cooperative-group size: {best[label]} "
              "(the paper finds 4 for most variants)")


if __name__ == "__main__":
    main()
