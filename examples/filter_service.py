#!/usr/bin/env python
"""Running the fault-tolerant filter service: bulk jobs, retries, recovery.

The :mod:`repro.service` layer turns the filters into a multi-tenant bulk-job
service: clients submit asynchronous insert/query/delete/count jobs against
named filters and get per-item results back, while the service handles
batching, bounded retries with backoff, capacity growth, deadlines,
idempotent resubmission and crash recovery from its journal.  This example
walks the client-facing surface:

* ``submit`` / ``status`` / ``result`` — the async job round trip;
* partial success — a fixed-capacity tenant fills up and reports a per-item
  ``ok_mask`` instead of failing the whole job;
* fault injection — a seeded injector crashes workers mid-run and the
  retries absorb it without duplicating any insert;
* deadlines and idempotency — expired jobs are dropped effect-free,
  resubmitted request IDs return the original result;
* crash recovery — a second service instance rebuilt from the journal and
  the snapshot directory still knows every acked key and finished result.

Run with::

    python examples/filter_service.py
"""

import os
import tempfile

import numpy as np

from repro.core.tcf import PointTCF
from repro.service import (
    FaultConfig,
    FaultInjector,
    FilterRegistry,
    FilterService,
    ServiceConfig,
)

#: REPRO_EXAMPLE_SCALE=tiny shrinks the demo so tests/test_examples.py
#: can run every example as a fast subprocess smoke test.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
N = 512 if TINY else 20_000


def users_filter() -> PointTCF:
    """The growable tenant: resizes online as the key space expands."""
    return PointTCF(1024, auto_resize=True)


def tickets_filter() -> PointTCF:
    """A deliberately fixed-capacity tenant: fills up and goes PARTIAL."""
    return PointTCF(256)


def main() -> None:
    print("=== the fault-tolerant filter service ===")
    with tempfile.TemporaryDirectory() as workdir:
        snapshots = os.path.join(workdir, "snapshots")
        journal = os.path.join(workdir, "journal")
        registry = FilterRegistry(snapshots)
        # A seeded injector crashes ~20% of batch attempts before any filter
        # mutation; the service's backoff retries absorb every crash.
        injector = FaultInjector(FaultConfig(seed=11, worker_crash_rate=0.2))
        config = ServiceConfig(max_workers=2, max_attempts=6)
        service = FilterService(
            registry, config, journal_dir=journal, fault_injector=injector
        )
        service.register_filter("users", users_filter)
        service.register_filter("tickets", tickets_filter)

        # --- async bulk jobs -------------------------------------------------
        keys = np.arange(2, 2 + N, dtype=np.uint64)
        rid = service.submit("users", "insert", keys, request_id="load-users")
        print(f"submitted {N:,} inserts as {rid!r} "
              f"(status right away: {service.status(rid).value})")
        result = service.result(rid, timeout=60.0)
        print(f"insert finished: {result.status.value} after "
              f"{result.attempts} attempt(s), {result.n_ok:,}/{result.n_items:,} keys")

        hits = service.result(service.submit("users", "query", keys), timeout=60.0)
        print(f"query of the same keys: {sum(hits.data):,}/{N:,} present")

        # --- partial success -------------------------------------------------
        burst = np.arange(2, 2 + 4 * N, dtype=np.uint64)
        partial = service.result(
            service.submit("tickets", "insert", burst), timeout=60.0
        )
        print(f"fixed-capacity tenant: {partial.status.value}, per-item mask acked "
              f"{partial.n_ok:,} of {partial.n_items:,} keys")

        # --- deadlines and idempotency --------------------------------------
        expired = service.result(
            service.submit("users", "query", keys, deadline_s=0.0), timeout=60.0
        )
        print(f"already-expired deadline: {expired.status.value} (zero effects)")
        again = service.submit("users", "insert", keys, request_id="load-users")
        print(f"resubmitting {again!r}: idempotent, original result returned "
              f"({service.result(again, timeout=1.0) is result})")
        crashes = injector.fired.get("worker_crash", 0)
        print(f"injected worker crashes absorbed by retries: {crashes}")

        # --- crash recovery --------------------------------------------------
        service.shutdown(wait=True)
        registry.flush()  # snapshot every tenant, as a checkpoint would
        recovered_registry = FilterRegistry(snapshots)
        recovered_registry.register_snapshot("users", users_filter)
        recovered_registry.register_snapshot("tickets", tickets_filter)
        recovered = FilterService.recover(recovered_registry, journal)
        recovered.drain(timeout=60.0)
        check = recovered.result(
            recovered.submit("users", "query", keys), timeout=60.0
        )
        print(f"after recovery from the journal: {sum(check.data):,}/{N:,} acked "
              f"keys still present, finished results preloaded "
              f"({recovered.status('load-users').value})")
        recovered.shutdown(wait=True)


if __name__ == "__main__":
    main()
