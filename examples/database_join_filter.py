#!/usr/bin/env python
"""Database example: filter-accelerated semi-join / multiplicity estimation.

The paper's introduction motivates feature-rich GPU filters with database
engines that "leverage GPUs to speed up merge and join operations [but]
cannot use existing filters as they do not support counting and enumeration".
This example shows that workload: a fact table is summarised into a GQF
(counting) and a TCF (membership + small values); probe-side rows are then
pre-filtered on the GPU before the expensive join, and the GQF's counts give
an upper bound on the join fan-out per key.

Run with::

    python examples/database_join_filter.py
"""

import os

import numpy as np

from repro.core.gqf import BulkGQF
from repro.core.tcf import BulkTCF
from repro.hashing import generate_keys

#: REPRO_EXAMPLE_SCALE=tiny shrinks the tables so tests/test_examples.py
#: can run every example as a fast subprocess smoke test.
TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"


def build_fact_table(n_rows: int, n_customers: int, seed: int = 3):
    """A synthetic orders table: (customer_id, amount)."""
    rng = np.random.default_rng(seed)
    customer_ids = generate_keys(n_customers, seed=seed)
    # Skewed fan-out: a few customers place many orders.
    weights = 1.0 / np.arange(1, n_customers + 1) ** 1.1
    weights /= weights.sum()
    rows = rng.choice(customer_ids, size=n_rows, p=weights)
    amounts = rng.integers(1, 500, size=n_rows)
    return rows.astype(np.uint64), amounts


def main() -> None:
    n_orders, n_customers = (20_000, 800) if TINY else (200_000, 5_000)
    print(f"building a fact table with {n_orders} orders from {n_customers} customers...")
    order_customers, _amounts = build_fact_table(n_orders, n_customers)

    # ----------------------------------------------------------------- build
    # Counting summary of the fact table's join key column.
    gqf = BulkGQF.for_capacity(n_customers * 2, use_mapreduce=True)
    gqf.bulk_insert(order_customers)

    # Membership summary for the semi-join (space-lean, faster).
    tcf = BulkTCF.for_capacity(n_customers * 2)
    tcf.bulk_insert(np.unique(order_customers))
    print(f"  GQF load {gqf.load_factor:.2f}, TCF load {tcf.load_factor:.2f}")

    # ----------------------------------------------------------------- probe
    # The probe side: customers from a marketing table; only 30 % ever ordered.
    probe_hit = np.unique(order_customers)[: n_customers // 3]
    probe_miss = generate_keys(2 * len(probe_hit), seed=99)
    probe = np.concatenate([probe_hit, probe_miss])
    np.random.default_rng(1).shuffle(probe)

    semi_join_mask = tcf.bulk_query(probe)
    kept = int(semi_join_mask.sum())
    print(f"\nsemi-join pre-filter: kept {kept}/{probe.size} probe rows "
          f"({kept / probe.size:.0%}); the join now touches only those rows")

    # False-positive accounting: every true match is kept; a few extra rows
    # slip through at the filter's design false-positive rate.
    truly_matching = np.isin(probe, order_customers)
    false_drops = int(np.count_nonzero(truly_matching & ~semi_join_mask))
    extra_rows = int(np.count_nonzero(~truly_matching & semi_join_mask))
    print(f"  false drops: {false_drops} (always 0 — filters never lie negatively)")
    print(f"  extra rows passed: {extra_rows} "
          f"(~{extra_rows / max(1, int((~truly_matching).sum())):.3%} of non-matching)")

    # ------------------------------------------------------------- fan-out
    # The GQF's counts bound the join fan-out per key, which a query planner
    # can use to pick between broadcast and shuffle joins.
    counts = gqf.bulk_count(probe[semi_join_mask][:10_000])
    true_counts = np.array(
        [int(np.count_nonzero(order_customers == key)) for key in probe[semi_join_mask][:200]]
    )
    estimated = counts[:200]
    print(f"\njoin fan-out estimation (first 200 kept keys):")
    print(f"  estimated total fan-out: {int(estimated.sum())}")
    print(f"  true total fan-out:      {int(true_counts.sum())}")
    print(f"  keys where estimate < truth: {int(np.sum(estimated < true_counts))} "
          "(counting filters never under-count)")
    hot = int(estimated.max())
    print(f"  hottest probe key fan-out estimate: {hot} "
          "(skew the planner must know about)")


if __name__ == "__main__":
    main()
