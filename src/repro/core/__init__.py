"""Core contribution of the paper: the TCF and GQF GPU filters."""

from .base import AbstractFilter, FilterCapabilities, FilterState
from .exceptions import (
    CapacityLimitError,
    ConcurrencyError,
    DeletionError,
    FilterError,
    FilterFullError,
    SnapshotError,
    UnsupportedOperationError,
)
from .gqf import BulkGQF, PointGQF, QuotientFilterCore
from .tcf import BulkTCF, PointTCF, TCFConfig

__all__ = [
    "AbstractFilter",
    "FilterCapabilities",
    "FilterState",
    "CapacityLimitError",
    "ConcurrencyError",
    "DeletionError",
    "FilterError",
    "FilterFullError",
    "SnapshotError",
    "UnsupportedOperationError",
    "BulkGQF",
    "PointGQF",
    "QuotientFilterCore",
    "BulkTCF",
    "PointTCF",
    "TCFConfig",
]
