"""Core contribution of the paper: the TCF and GQF GPU filters."""

from .base import AbstractFilter, FilterCapabilities
from .exceptions import (
    CapacityLimitError,
    ConcurrencyError,
    DeletionError,
    FilterError,
    FilterFullError,
    UnsupportedOperationError,
)
from .gqf import BulkGQF, PointGQF, QuotientFilterCore
from .tcf import BulkTCF, PointTCF, TCFConfig

__all__ = [
    "AbstractFilter",
    "FilterCapabilities",
    "CapacityLimitError",
    "ConcurrencyError",
    "DeletionError",
    "FilterError",
    "FilterFullError",
    "UnsupportedOperationError",
    "BulkGQF",
    "PointGQF",
    "QuotientFilterCore",
    "BulkTCF",
    "PointTCF",
    "TCFConfig",
]
