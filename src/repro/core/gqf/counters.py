"""Variable-sized counter encoding for the counting quotient filter.

The CQF (and therefore the GQF) stores the multiplicity of a repeated
fingerprint *in line*, inside the same remainder slots that hold the
fingerprints, using a variable-length encoding.  This is what gives the
counting quotient filter its asymptotically optimal space even on highly
skewed multisets: an item occurring ``C`` times costs
:math:`O(\\log_{2^r} C)` extra slots, not ``C`` slots.

Encoding used here (equivalent in structure and asymptotics to Pandey et
al.'s scheme; the digit alphabet is chosen for a clean, unambiguous
specification and documented deviations are noted in DESIGN.md):

* remainders within a run are kept in ascending order;
* an item with remainder ``x`` and count ``C`` is encoded as

  ===========  ==========================================================
  ``C == 1``   ``[x]``
  ``C == 2``   ``[x, x]``
  ``C >= 3``   ``[x, d_0, ..., d_{k-1}, x]`` with every digit ``d_i < x``
               and the digits encoding ``C - 3`` in base ``x``
               (most-significant digit first)
  ===========  ==========================================================

* remainders ``0`` and ``1`` cannot host digits (no smaller values exist),
  so they fall back to unary: ``C`` copies of the remainder.  Such tiny
  remainders occur with probability :math:`2^{1-r}`, so the space impact is
  negligible for the 8/16/32-bit remainders the GQF supports.

Decoding is unambiguous: scanning a run left to right, a value smaller than
the current remainder can only be a counter digit (run order is ascending),
and the counter is terminated by the next occurrence of the remainder
itself.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: Remainder values that use unary encoding because they cannot host digits.
UNARY_REMAINDERS = (0, 1)


def slots_for_count(remainder: int, count: int) -> int:
    """Number of slots the encoding of ``(remainder, count)`` occupies."""
    return len(encode_item(remainder, count))


def encode_item(remainder: int, count: int) -> List[int]:
    """Encode one ``(remainder, count)`` pair into a list of slot values."""
    remainder = int(remainder)
    count = int(count)
    if count <= 0:
        raise ValueError("count must be positive")
    if remainder < 0:
        raise ValueError("remainder must be non-negative")
    if remainder in UNARY_REMAINDERS:
        return [remainder] * count
    if count == 1:
        return [remainder]
    if count == 2:
        return [remainder, remainder]
    # count >= 3: digits of (count - 3) in base `remainder`, MSD first.
    value = count - 3
    digits: List[int] = []
    if value == 0:
        digits = [0]
    else:
        while value > 0:
            digits.append(value % remainder)
            value //= remainder
        digits.reverse()
    return [remainder] + digits + [remainder]


def encode_run(items: Sequence[Tuple[int, int]]) -> List[int]:
    """Encode a whole run (list of ``(remainder, count)`` pairs).

    The items are sorted by remainder before encoding, matching the run
    invariant; duplicate remainders are merged by summing their counts.
    """
    merged: dict[int, int] = {}
    for remainder, count in items:
        if count <= 0:
            raise ValueError("counts must be positive")
        merged[int(remainder)] = merged.get(int(remainder), 0) + int(count)
    out: List[int] = []
    for remainder in sorted(merged):
        out.extend(encode_item(remainder, merged[remainder]))
    return out


def decode_run(slots: Iterable[int]) -> List[Tuple[int, int]]:
    """Decode a run's slot values back into ``(remainder, count)`` pairs.

    Raises ``ValueError`` on malformed encodings (e.g. an unterminated
    counter), which the property tests rely on to catch corruption.
    """
    values = [int(v) for v in slots]
    items: List[Tuple[int, int]] = []
    i = 0
    n = len(values)
    while i < n:
        x = values[i]
        if x in UNARY_REMAINDERS:
            count = 1
            i += 1
            while i < n and values[i] == x:
                count += 1
                i += 1
            items.append((x, count))
            continue
        # Look ahead to classify.
        if i + 1 >= n or values[i + 1] > x:
            items.append((x, 1))
            i += 1
            continue
        if values[i + 1] == x:
            items.append((x, 2))
            i += 2
            continue
        # values[i+1] < x: counter digits until the closing x.
        j = i + 1
        digits: List[int] = []
        while j < n and values[j] < x:
            digits.append(values[j])
            j += 1
        if j >= n or values[j] != x:
            raise ValueError(
                f"malformed counter encoding for remainder {x}: missing terminator"
            )
        value = 0
        for digit in digits:
            value = value * x + digit
        items.append((x, value + 3))
        i = j + 1
    # Verify the run invariant (ascending remainders).
    remainders = [rem for rem, _ in items]
    if remainders != sorted(remainders):
        raise ValueError("decoded run is not in ascending remainder order")
    return items


def run_length(items: Sequence[Tuple[int, int]]) -> int:
    """Total number of slots the encoded run occupies."""
    return len(encode_run(items))


def increment(
    items: List[Tuple[int, int]], remainder: int, delta: int = 1
) -> List[Tuple[int, int]]:
    """Return a new item list with ``remainder``'s count increased by ``delta``.

    Appends the remainder with count ``delta`` if it was not present.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    out: List[Tuple[int, int]] = []
    found = False
    for rem, count in items:
        if rem == remainder:
            out.append((rem, count + delta))
            found = True
        else:
            out.append((rem, count))
    if not found:
        out.append((int(remainder), int(delta)))
    out.sort(key=lambda rc: rc[0])
    return out


def decrement(
    items: List[Tuple[int, int]], remainder: int, delta: int = 1
) -> Tuple[List[Tuple[int, int]], bool]:
    """Decrease ``remainder``'s count by ``delta`` (removing it at zero).

    Returns ``(new_items, found)``.  ``found`` is False when the remainder
    was not present, in which case the items are returned unchanged.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    out: List[Tuple[int, int]] = []
    found = False
    for rem, count in items:
        if rem == remainder and not found:
            found = True
            new_count = count - delta
            if new_count > 0:
                out.append((rem, new_count))
        else:
            out.append((rem, count))
    return out, found


def is_plain_run(values: np.ndarray) -> bool:
    """True when a run's slot values decode to singletons (count 1 each).

    Strictly increasing values can contain neither counter digits (a digit
    is always smaller than the remainder preceding it) nor duplicates (a
    count of 2+ always produces a repeated remainder), so the run needs no
    counter decoding.  This is the single definition of the fast-path
    invariant; change it together with the encoding above.
    """
    values = np.asarray(values)
    return values.size <= 1 or bool(np.all(values[1:] > values[:-1]))


def plain_run_mask(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Vectorised :func:`is_plain_run` over many concatenated runs.

    ``values`` holds every run's slots back to back; ``offsets`` is the
    cumulative boundary array (``len(runs) + 1`` entries, starting at 0).
    Returns one boolean per run.
    """
    increasing = np.ones(values.size, dtype=bool)
    increasing[1:] = values[1:] > values[:-1]
    increasing[offsets[:-1]] = True
    return np.logical_and.reduceat(increasing, offsets[:-1])


def encode_flat(
    remainders: np.ndarray,
    counts: np.ndarray,
    counting: bool,
    dtype: np.dtype,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised run encoder for a batch of ``(remainder, count)`` items.

    ``remainders``/``counts`` describe already-merged items in run order
    (ascending remainder within each run).  Returns ``(flat_values,
    enc_lens)`` where ``flat_values`` is the concatenation of every item's
    slot encoding and ``enc_lens[i]`` is the number of slots item ``i``
    occupies.  Counts of 1 and 2 — the overwhelmingly common cases — are
    encoded without any per-item Python work; only items that need counter
    digits (count >= 3 with a digit-hosting remainder) fall back to
    :func:`encode_item`.
    """
    remainders = np.asarray(remainders, dtype=np.uint64)
    counts = np.asarray(counts, dtype=np.int64)
    if remainders.size == 0:
        return np.zeros(0, dtype=dtype), np.zeros(0, dtype=np.int64)
    if not counting:
        enc_lens = counts.copy()
        flat = np.repeat(remainders, enc_lens).astype(dtype, copy=False)
        return flat, enc_lens
    enc_lens = np.minimum(counts, 2).astype(np.int64)
    unary = remainders < len(UNARY_REMAINDERS)
    big = counts >= 3
    # Unary remainders (0/1) encode any count as `count` copies.
    np.copyto(enc_lens, counts, where=big & unary)
    digit_items = np.flatnonzero(big & ~unary)
    encodings = [encode_item(int(remainders[i]), int(counts[i])) for i in digit_items]
    if encodings:
        enc_lens[digit_items] = [len(e) for e in encodings]
    flat = np.repeat(remainders, enc_lens)
    offsets = np.concatenate(([0], np.cumsum(enc_lens)))
    for i, enc in zip(digit_items, encodings):
        flat[offsets[i] : offsets[i + 1]] = enc
    return flat.astype(dtype, copy=False), enc_lens


def max_count_single_slot(remainder_bits: int) -> int:
    """Largest count representable before the encoding needs extra slots.

    The paper notes the GQF counts "smaller than the maximum value in a GQF
    slot (256 for an 8-bit slot)" are the cheap case; this helper exposes
    that threshold for tests and documentation.
    """
    return 1 << remainder_bits
