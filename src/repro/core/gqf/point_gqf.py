"""Point (device-side, per-item) API of the GPU counting quotient filter.

Every point insert acquires two cache-aligned region locks — the region that
owns the item's canonical slot and the next one — performs the Robin-Hood
insertion (which may shift remainders within the locked window), flushes, and
releases the locks.  Queries and counts are lock-free reads.

Locking is the GQF's dominant point-insert cost: with ~80 K active threads
and only ``n_slots / 8192`` locks, small filters thrash badly (the paper
observes the GPU Bloom filter out-inserting the GQF for exactly this reason).
The simulated thread concurrency is configurable via :meth:`set_concurrency`
so the benchmark harness can expose that contention to the perf model.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ...gpusim.atomics import SpinLockTable
from ...gpusim.kernel import KernelContext, point_launch
from ...gpusim.stats import StatsRecorder
from ...hashing.fingerprints import FingerprintScheme
from ..base import AbstractFilter, FilterCapabilities
from ..exceptions import FilterFullError
from .layout import QuotientFilterCore
from .regions import DEFAULT_REGION_SLOTS, RegionPartition


class PointGQF(AbstractFilter):
    """GPU counting quotient filter with a device-side point API.

    Parameters
    ----------
    quotient_bits:
        log2 of the number of canonical slots.
    remainder_bits:
        Remainder width; the GQF supports the machine-word-aligned widths
        8, 16 and 32 (8 gives the paper's ~0.19 % false-positive rate).
        64-bit remainders are not offered: the quotient needs at least 3
        bits, so a 64-bit remainder can never fit the 64-bit fingerprint.
    region_slots:
        Locking-region size (8192 in the paper; smaller values are useful for
        unit tests).
    recorder:
        Optional stats recorder.
    auto_resize:
        Grow the filter by quotient extension instead of raising
        :class:`FilterFullError` when an insert finds no space (or when the
        load factor reaches ``auto_resize_at``).  Each growth step doubles
        the slots and costs one remainder bit, so the false-positive rate
        doubles per step; resizing stops (and the error is raised again)
        once the remainder is down to a single bit.
    auto_resize_at:
        Load-factor threshold that triggers a pre-emptive grow (defaults to
        the recommended load factor).  Only meaningful with ``auto_resize``.
    """

    name = "GQF"
    SUPPORTED_REMAINDERS = (8, 16, 32)

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int = 8,
        region_slots: int = DEFAULT_REGION_SLOTS,
        recorder: Optional[StatsRecorder] = None,
        enforce_alignment: bool = True,
        auto_resize: bool = False,
        auto_resize_at: Optional[float] = None,
    ) -> None:
        super().__init__(recorder)
        if enforce_alignment and remainder_bits not in self.SUPPORTED_REMAINDERS:
            raise ValueError(
                f"the GQF supports word-aligned remainders {self.SUPPORTED_REMAINDERS}, "
                f"got {remainder_bits}"
            )
        self.scheme = FingerprintScheme(quotient_bits, remainder_bits)
        self.core = QuotientFilterCore(
            quotient_bits, remainder_bits, self.recorder, counting=True, name="gqf-slots"
        )
        self.partition = RegionPartition(self.core.n_canonical_slots, region_slots)
        self.locks = SpinLockTable(
            self.partition.n_regions + 1,
            self.recorder,
            cache_aligned=True,
        )
        self.kernels = KernelContext(self.recorder)
        self._active_threads = 0
        self.auto_resize = bool(auto_resize)
        self.auto_resize_at = (
            float(auto_resize_at)
            if auto_resize_at is not None
            else self.recommended_load_factor
        )
        self.n_resizes = 0

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        remainder_bits: int = 8,
        recorder: Optional[StatsRecorder] = None,
    ) -> "PointGQF":
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, n_items) / 0.95))))
        return cls(quotient_bits, remainder_bits, recorder=recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=True,
            bulk_count=True,
            values=True,
            resizable=True,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, remainder_bits: int = 8) -> int:
        """Footprint for ``n_slots`` canonical slots without building a filter."""
        bits = n_slots * (remainder_bits + 2.125)
        return int(np.ceil(bits / 8.0))

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.core.n_canonical_slots * self.recommended_load_factor)

    @property
    def n_slots(self) -> int:
        return self.core.n_canonical_slots

    @property
    def nbytes(self) -> int:
        return self.core.nbytes + self.locks.nbytes

    @property
    def n_items(self) -> int:
        return self.core.n_distinct_items

    @property
    def total_count(self) -> int:
        return self.core.total_count

    @property
    def n_occupied_slots(self) -> int:
        return self.core.n_occupied_slots

    @property
    def load_factor(self) -> float:
        return self.core.load_factor

    @property
    def recommended_load_factor(self) -> float:
        return 0.95

    @property
    def false_positive_rate(self) -> float:
        return 2.0 ** (-self.scheme.remainder_bits)

    # -------------------------------------------------------------- concurrency
    def set_concurrency(self, active_threads: int) -> None:
        """Tell the simulator how many device threads run point ops concurrently.

        Determines the lock-contention probability (threads competing for
        ``n_regions`` locks) that the performance model charges for.
        """
        self._active_threads = max(0, int(active_threads))
        if self._active_threads and self.partition.n_regions:
            per_lock = self._active_threads / self.partition.n_regions
            probability = min(0.95, per_lock / (per_lock + 8.0))
        else:
            probability = 0.0
        self.locks.contention_probability = probability

    @property
    def lock_serialization(self) -> float:
        """Average number of competing threads per lock (for the perf model)."""
        if not self._active_threads:
            return 0.0
        return min(
            64.0, self._active_threads / max(1, self.partition.n_regions)
        )

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        """Insert one occurrence of ``key``.

        ``value`` (if non-zero) is stored by re-purposing the counter, the
        same mechanism applications like Mantis use with the CQF.
        """
        return self._insert_count(key, max(1, int(value)))

    def insert_count(self, key: int, count: int) -> bool:
        """Insert ``count`` occurrences of ``key`` in one locked operation."""
        return self._insert_count(key, count)

    def _insert_count(self, key: int, count: int) -> bool:
        while True:
            self._maybe_grow()
            quotient, remainder = self.scheme.key_to_slot(
                np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF)
            )
            try:
                self._locked_insert(int(quotient), int(remainder), count)
                return True
            except FilterFullError:
                if not self._can_grow():
                    raise
                self._grow()

    def _locked_insert(self, quotient: int, remainder: int, count: int) -> None:
        """One point insert under the pair of region locks."""
        lock_a, lock_b = self.partition.locks_for_insert(quotient)
        self.locks.lock(lock_a)
        if lock_b != lock_a:
            self.locks.lock(lock_b)
        try:
            self.core.insert_fingerprint(quotient, remainder, count)
        finally:
            if lock_b != lock_a:
                self.locks.unlock(lock_b)
            self.locks.unlock(lock_a)

    def query(self, key: int) -> bool:
        return self.count(key) > 0

    def count(self, key: int) -> int:
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        return self.core.query_fingerprint(int(quotient), int(remainder))

    def get_value(self, key: int) -> Optional[int]:
        """Return the value stored via the counter, or None when absent."""
        count = self.count(key)
        return count if count > 0 else None

    def delete(self, key: int) -> bool:
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        quotient, remainder = int(quotient), int(remainder)
        lock_a, lock_b = self.partition.locks_for_insert(quotient)
        self.locks.lock(lock_a)
        if lock_b != lock_a:
            self.locks.lock(lock_b)
        try:
            return self.core.delete_fingerprint(quotient, remainder, 1)
        finally:
            if lock_b != lock_a:
                self.locks.unlock(lock_b)
            self.locks.unlock(lock_a)

    # ---------------------------------------------------------------- bulk API
    def _processing_order(self, quotients: np.ndarray, remainders: np.ndarray) -> np.ndarray:
        """The order in which the simulated schedule serialises point threads.

        A point kernel launches one thread per item and the hardware
        interleaves them arbitrarily; the simulator picks the fingerprint-
        sorted interleaving because it is the one the canonical-layout merge
        can replay with whole-array operations (and, per region, it is the
        shift-free schedule the paper's analysis assumes).  The host-side
        argsort is simulator bookkeeping, not a device sort — no traffic is
        charged for it.  Exposed so the differential tests can drive the
        per-item reference through the identical schedule.
        """
        return np.argsort(self.scheme.join(quotients, remainders), kind="stable")

    def _charge_point_locks(self, quotients: np.ndarray) -> None:
        """Replay the per-item region-lock traffic for a whole batch.

        Each item acquires the lock of its canonical region and (unless it
        sits in the last region) the next region's lock, then releases both.
        Failure counts come from the same generator stream, consumed in the
        same order, as per-item locking (see
        :meth:`~repro.gpusim.atomics.SpinLockTable.lock_unlock_batch`), so
        the lock counters match the sequential loop exactly at every
        ``set_concurrency`` level.
        """
        regions = self.partition.regions_of(quotients)
        n_calls = int(quotients.size) + int(
            np.count_nonzero(regions < self.partition.n_regions - 1)
        )
        self.locks.lock_unlock_batch(n_calls)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Point-style batched insert (one cooperative thread per item).

        Batches big enough to amortise the whole-table decode are replayed as
        one canonical merge (state identical to the per-item loop; events
        calibrated per input row, exact for fills of distinct fingerprints)
        plus a batched region-lock replay; small batches keep the per-item
        loop.  ``values`` are interpreted as per-key counts, as in the
        per-item :meth:`insert`.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is None:
            counts = np.ones(keys.size, dtype=np.int64)
        else:
            counts = np.maximum(1, np.asarray(values, dtype=np.int64))
        with self.kernels.launch("gqf_point_bulk_insert", point_launch(keys.size, 1)):
            if keys.size and not self.core.prefers_sequential(int(keys.size)):
                self._bulk_insert_vectorised(keys, counts)
            else:
                for key, count in zip(keys, counts):
                    self._insert_count(int(key), int(count))
        return int(keys.size)

    def _bulk_insert_vectorised(self, keys: np.ndarray, counts: np.ndarray) -> None:
        while True:
            self._maybe_grow()
            quotients, remainders = self.scheme.key_to_slot(keys)
            quotients = np.asarray(quotients, dtype=np.int64)
            remainders = np.asarray(remainders, dtype=np.uint64)
            order = self._processing_order(quotients, remainders)
            sq, sr, sc = quotients[order], remainders[order], counts[order]
            try:
                self.core.insert_sorted_batch(sq, sr, sc)
            except FilterFullError:
                # The merge is all-or-nothing, so the table is untouched:
                # grow and retry the whole batch under the new geometry...
                if self._can_grow():
                    self._grow()
                    continue
                # ... or replay the schedule per item so an over-capacity
                # batch still fills the table before raising (the benchmark
                # fill loops catch the error and measure at capacity).
                for i in range(sq.size):
                    self._locked_insert(int(sq[i]), int(sr[i]), int(sc[i]))
                raise  # pragma: no cover - the replay above must raise first
            self._charge_point_locks(sq)
            return

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        quotients, remainders = self.scheme.key_to_slot(keys)
        with self.kernels.launch("gqf_point_bulk_query", point_launch(keys.size, 1)):
            # Queries are lock-free reads, so the batch can run as one
            # vectorised lookup without changing the simulated traffic.
            counts = self.core.batch_counts(quotients, remainders)
        return counts > 0

    def bulk_count(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        quotients, remainders = self.scheme.key_to_slot(keys)
        with self.kernels.launch("gqf_point_bulk_count", point_launch(keys.size, 1)):
            counts = self.core.batch_counts(quotients, remainders)
        return counts

    def bulk_delete(self, keys: Sequence[int]) -> int:
        """Point-style batched delete.

        Large batches run the vectorised cluster re-canonicalisation (state
        and removal counts identical to per-item deletes; cluster traffic
        carries the calibrated approximation documented on
        :meth:`QuotientFilterCore.delete_sorted_batch`) plus the exact
        batched region-lock replay; small batches keep the per-item loop.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        removed = 0
        with self.kernels.launch("gqf_point_bulk_delete", point_launch(keys.size, 1)):
            if keys.size and not self.core.prefers_sequential(int(keys.size)):
                quotients, remainders = self.scheme.key_to_slot(keys)
                quotients = np.asarray(quotients, dtype=np.int64)
                removed = self.core.delete_sorted_batch(
                    quotients, np.asarray(remainders, dtype=np.uint64)
                )
                self._charge_point_locks(quotients)
            else:
                for key in keys:
                    if self.delete(int(key)):
                        removed += 1
        return removed

    # ------------------------------------------------------------------ resize
    def resized(self, extra_quotient_bits: int = 1) -> "PointGQF":
        """Return a filter with ``2**extra_quotient_bits`` times the slots.

        The quotient filter's resizability comes from keeping the total
        fingerprint width ``p = q + r`` fixed and moving bits from the
        remainder to the quotient: every stored ``p``-bit fingerprint is
        enumerated and re-split under the larger quotient, so membership and
        counts are preserved exactly (and the false-positive rate improves
        slightly per item because the load factor drops).
        """
        if extra_quotient_bits < 1:
            raise ValueError("resize must grow the filter")
        if self.scheme.remainder_bits - extra_quotient_bits < 1:
            raise ValueError("not enough remainder bits to donate to the quotient")
        new_q = self.scheme.quotient_bits + extra_quotient_bits
        new_r = self.scheme.remainder_bits - extra_quotient_bits
        bigger = PointGQF(
            new_q,
            new_r,
            self.partition.region_slots,
            recorder=self.recorder,
            enforce_alignment=False,
            auto_resize=self.auto_resize,
            auto_resize_at=self.auto_resize_at,
        )
        bigger.core = self.core.extended(extra_quotient_bits, name="gqf-slots")
        return bigger

    def _can_grow(self) -> bool:
        return self.auto_resize and self.scheme.remainder_bits > 1

    def _maybe_grow(self) -> None:
        """Pre-emptive growth once the configured load threshold is crossed."""
        while (
            self.auto_resize
            and self.load_factor >= self.auto_resize_at
            and self.scheme.remainder_bits > 1
        ):
            self._grow()

    def _grow(self, extra_quotient_bits: int = 1) -> None:
        """Extend the quotient in place (the auto-resize step).

        The core is rebuilt at ``2**extra_quotient_bits`` times the slots via
        the canonical sorted merge, and the locking partition is re-derived
        for the new table; the filter object itself keeps its identity.
        """
        self.core = self.core.extended(extra_quotient_bits, name="gqf-slots")
        self.scheme = FingerprintScheme(
            self.core.quotient_bits, self.core.remainder_bits
        )
        self.partition = RegionPartition(
            self.core.n_canonical_slots, self.partition.region_slots
        )
        self.locks = SpinLockTable(
            self.partition.n_regions + 1, self.recorder, cache_aligned=True
        )
        self.n_resizes += extra_quotient_bits
        if self._active_threads:
            self.set_concurrency(self._active_threads)

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> Dict[str, object]:
        return {
            "quotient_bits": self.scheme.quotient_bits,
            "remainder_bits": self.scheme.remainder_bits,
            "region_slots": self.partition.region_slots,
            "enforce_alignment": False,
            "auto_resize": self.auto_resize,
            "auto_resize_at": self.auto_resize_at,
        }

    def snapshot_state(self) -> Dict[str, np.ndarray]:
        return self.core.export_state()

    def restore_state(self, state: Mapping[str, np.ndarray]) -> None:
        self.core.import_state(state)

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        """Point kernels map one thread per item."""
        return n_ops
