"""Region partitioning for GQF insertion (locking and even-odd phases).

The GQF divides its slots into fixed-size *regions* of 8192 slots.  The size
comes from the cluster-length bound: at a 95 % load factor the longest
cluster is (with high probability) shorter than 8192 slots, so

* a **point** insert that locks its own region *and the next one* can shift
  remainders freely without corrupting a neighbouring thread's region;
* a **bulk** insert that processes all *even* regions in one phase and all
  *odd* regions in a second phase gives every active thread exclusive access
  to ~16 K consecutive slots, eliminating locks entirely.

This module holds the partitioning helpers shared by both APIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Region size (in slots) used by the paper; bounded by the maximum cluster
#: length at 95 % load factor.
DEFAULT_REGION_SLOTS = 8192


@dataclass(frozen=True)
class RegionPartition:
    """A partition of ``n_slots`` canonical slots into fixed-size regions."""

    n_slots: int
    region_slots: int = DEFAULT_REGION_SLOTS

    def __post_init__(self) -> None:
        if self.n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if self.region_slots <= 0:
            raise ValueError("region_slots must be positive")

    @property
    def n_regions(self) -> int:
        """Number of regions (at least 1)."""
        return max(1, (self.n_slots + self.region_slots - 1) // self.region_slots)

    def region_of(self, slot: int) -> int:
        """Region index containing canonical ``slot``."""
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range")
        return slot // self.region_slots

    def region_bounds(self, region: int) -> Tuple[int, int]:
        """``[start, stop)`` slot bounds of a region (stop clamps to n_slots)."""
        if not 0 <= region < self.n_regions:
            raise IndexError(f"region {region} out of range")
        start = region * self.region_slots
        return start, min(self.n_slots, start + self.region_slots)

    def regions_of(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`region_of`."""
        slots = np.asarray(slots, dtype=np.int64)
        return slots // self.region_slots

    def locks_for_insert(self, slot: int) -> Tuple[int, int]:
        """The pair of locks a point insert must hold for canonical ``slot``.

        The region containing the slot plus the following region (clamped),
        so that a shift overflowing into the next region is still covered.
        """
        region = self.region_of(slot)
        next_region = min(region + 1, self.n_regions - 1)
        return region, next_region

    def even_regions(self) -> List[int]:
        """Indices of even regions (phase 1 of bulk insertion)."""
        return list(range(0, self.n_regions, 2))

    def odd_regions(self) -> List[int]:
        """Indices of odd regions (phase 2 of bulk insertion)."""
        return list(range(1, self.n_regions, 2))

    def phases(self) -> Tuple[List[int], List[int]]:
        """Both phases, even first."""
        return self.even_regions(), self.odd_regions()

    def phase_mask(self, quotients: np.ndarray, parity: int) -> np.ndarray:
        """Boolean mask of the quotients whose region has the given parity.

        The bulk even-odd scheme partitions a sorted batch into the items
        processed by phase 0 (even regions) and phase 1 (odd regions); this
        is the vectorised membership test for one phase.
        """
        if parity not in (0, 1):
            raise ValueError("parity must be 0 (even) or 1 (odd)")
        return (self.regions_of(quotients) & 1) == parity

    def split_sorted_quotients(self, sorted_quotients: np.ndarray) -> np.ndarray:
        """Start index of each region's items within a sorted quotient array.

        Mirrors the paper's successor-search buffer setup: instead of using
        atomics to build per-region buffers, the sorted input array is
        indexed by the first position whose quotient reaches the region's
        first slot.  Returns ``n_regions + 1`` boundaries.

        The vectorised bulk GQF now partitions phases with
        :meth:`phase_mask`; this remains public as the per-region buffer
        view of the same batch (Section 5.3's exposition).
        """
        sorted_quotients = np.asarray(sorted_quotients, dtype=np.int64)
        region_starts = np.arange(self.n_regions, dtype=np.int64) * self.region_slots
        boundaries = np.searchsorted(sorted_quotients, region_starts, side="left")
        return np.concatenate([boundaries, [sorted_quotients.size]])

    def max_cluster_guarantee(self, load_factor: float = 0.95) -> float:
        """High-probability bound on the longest cluster (paper Section 5.2).

        ``O(ln(2^q) / (alpha - ln(alpha) - 1))`` slots; the region size must
        exceed this for the even-odd scheme to be safe.
        """
        if not 0.0 < load_factor < 1.0:
            raise ValueError("load_factor must be in (0, 1)")
        alpha = load_factor
        q = np.log2(self.n_slots) if self.n_slots > 1 else 1.0
        denom = alpha - np.log(alpha) - 1.0
        if denom <= 0:
            return float("inf")
        return float(np.log(2.0 ** q) / denom)
