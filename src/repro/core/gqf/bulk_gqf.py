"""Bulk (host-side, batched) API of the GPU counting quotient filter.

The bulk GQF is a coordinated, lock-free insertion scheme (Section 5.3):

1. the batch is hashed and **sorted** (Thrust), which removes all
   intra-batch Robin-Hood shifting — each new remainder lands in the last
   empty slot of its run;
2. per-region buffers are marked with a **successor search** over the sorted
   array instead of atomics;
3. insertion happens in two phases over **even-odd regions**: phase one
   processes all even regions (one thread per region), phase two the odd
   regions.  Threads are therefore always ≥ ~16 K slots apart, farther than
   any cluster can reach, so no locking is required;
4. for skewed count distributions, an optional **map-reduce** pass
   (:mod:`~repro.core.gqf.mapreduce`) collapses duplicates into
   ``(item, count)`` pairs before insertion.

Deletes use the same even-odd phasing (and delete larger runs first), which
is why Figure 6 shows the GQF roughly two orders of magnitude faster than the
SQF for deletions.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.kernel import KernelContext, bulk_region_launch
from ...gpusim.sorting import device_sort_by_key
from ...gpusim.stats import StatsRecorder
from ...hashing.fingerprints import FingerprintScheme
from ..base import AbstractFilter, FilterCapabilities
from ..exceptions import FilterFullError
from .layout import SEQUENTIAL_BATCH_MAX, QuotientFilterCore  # noqa: F401 - re-exported
from .mapreduce import aggregate_batch
from .point_gqf import PointGQF
from .regions import DEFAULT_REGION_SLOTS, RegionPartition


class BulkGQF(AbstractFilter):
    """GPU counting quotient filter with the lock-free bulk API.

    Parameters
    ----------
    quotient_bits, remainder_bits:
        Table geometry, as for :class:`~repro.core.gqf.point_gqf.PointGQF`.
    region_slots:
        Even-odd region size (8192 in the paper).
    use_mapreduce:
        Aggregate duplicate keys with sort + reduce_by_key before insertion
        (the Zipfian-count optimisation; harmless for uniform data).
    recorder:
        Optional stats recorder.
    auto_resize:
        Grow by quotient extension instead of raising
        :class:`FilterFullError` (see :class:`PointGQF` for the trade-offs).
    auto_resize_at:
        Load-factor threshold for pre-emptive growth (defaults to the
        recommended load factor).
    """

    name = "GQF (bulk)"

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int = 8,
        region_slots: int = DEFAULT_REGION_SLOTS,
        use_mapreduce: bool = False,
        recorder: Optional[StatsRecorder] = None,
        enforce_alignment: bool = True,
        auto_resize: bool = False,
        auto_resize_at: Optional[float] = None,
    ) -> None:
        super().__init__(recorder)
        if enforce_alignment and remainder_bits not in PointGQF.SUPPORTED_REMAINDERS:
            raise ValueError(
                f"the GQF supports word-aligned remainders {PointGQF.SUPPORTED_REMAINDERS}, "
                f"got {remainder_bits}"
            )
        self.scheme = FingerprintScheme(quotient_bits, remainder_bits)
        self.core = QuotientFilterCore(
            quotient_bits, remainder_bits, self.recorder, counting=True, name="bulk-gqf-slots"
        )
        self.partition = RegionPartition(self.core.n_canonical_slots, region_slots)
        self.use_mapreduce = bool(use_mapreduce)
        self.kernels = KernelContext(self.recorder)
        self.auto_resize = bool(auto_resize)
        self.auto_resize_at = (
            float(auto_resize_at)
            if auto_resize_at is not None
            else self.recommended_load_factor
        )
        self.n_resizes = 0

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        remainder_bits: int = 8,
        use_mapreduce: bool = False,
        recorder: Optional[StatsRecorder] = None,
    ) -> "BulkGQF":
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, n_items) / 0.95))))
        return cls(quotient_bits, remainder_bits, use_mapreduce=use_mapreduce, recorder=recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=False,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=False,
            bulk_delete=True,
            point_count=True,
            bulk_count=True,
            values=True,
            resizable=True,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, remainder_bits: int = 8) -> int:
        return PointGQF.nominal_nbytes(n_slots, remainder_bits)

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.core.n_canonical_slots * self.recommended_load_factor)

    @property
    def n_slots(self) -> int:
        return self.core.n_canonical_slots

    @property
    def nbytes(self) -> int:
        return self.core.nbytes

    @property
    def n_items(self) -> int:
        return self.core.n_distinct_items

    @property
    def total_count(self) -> int:
        return self.core.total_count

    @property
    def n_occupied_slots(self) -> int:
        return self.core.n_occupied_slots

    @property
    def load_factor(self) -> float:
        return self.core.load_factor

    @property
    def recommended_load_factor(self) -> float:
        return 0.95

    @property
    def false_positive_rate(self) -> float:
        return 2.0 ** (-self.scheme.remainder_bits)

    # --------------------------------------------------------------- bulk insert
    def _hash_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        fingerprints = self.scheme.hash_key(keys.astype(np.uint64))
        quotients, remainders = self.scheme.split(fingerprints)
        return quotients.astype(np.int64), remainders.astype(np.uint64)

    def _sorted_batch(
        self, keys: np.ndarray, *extra: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """Hash a batch and sort it by full fingerprint (Thrust sort).

        The sort key is the p-bit fingerprint itself, built in uint64 —
        ``quotient * 2^r + remainder`` in a signed int64 would overflow once
        ``q + r >= 63``, silently mis-sorting wide geometries.
        """
        quotients, remainders = self._hash_batch(keys)
        sort_keys = self.scheme.join(quotients, remainders)
        _sorted, order = device_sort_by_key(
            sort_keys, np.arange(keys.size), self.recorder
        )
        return (quotients[order], remainders[order]) + tuple(a[order] for a in extra)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Insert a batch with the two-phase even-odd lock-free scheme.

        ``values`` are interpreted as per-key counts when given (count of 0
        is bumped to 1), so the same entry point serves plain insertion,
        counting and value association.

        Each phase hands its regions' items to the core as one vectorised
        sorted merge; batches too small to amortise the whole-table decode
        (see :meth:`QuotientFilterCore.prefers_sequential`) take the
        per-item path instead.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        if values is not None:
            counts = np.maximum(1, np.asarray(values, dtype=np.int64))
        else:
            counts = np.ones(keys.size, dtype=np.int64)

        if self.use_mapreduce:
            unique_keys, agg_counts = aggregate_batch(keys, self.recorder)
            if values is not None:
                # Aggregate the explicit counts as well (sorted by key).
                order = np.argsort(keys, kind="stable")
                sorted_keys = keys[order]
                sorted_counts = counts[order]
                boundaries = np.searchsorted(sorted_keys, unique_keys, side="left")
                agg_counts = np.add.reduceat(sorted_counts, boundaries)
            keys, counts = unique_keys, agg_counts.astype(np.int64)

        self._maybe_grow()
        quotients, remainders, counts = self._sorted_batch(keys, counts)
        return self._phased_insert(quotients, remainders, counts)

    def _phased_insert(
        self, quotients: np.ndarray, remainders: np.ndarray, counts: np.ndarray
    ) -> int:
        """Run the even-odd insertion phases over fingerprint-sorted items.

        On overflow with ``auto_resize`` enabled, the not-yet-inserted items
        are re-split under the grown geometry and the phases restart — exact,
        because each phase's canonical merge is all-or-nothing.
        """
        vectorised = not self.core.prefers_sequential(int(quotients.size))
        inserted = 0
        done = np.zeros(quotients.size, dtype=bool)
        for parity, (phase_name, regions) in enumerate(
            zip(("even", "odd"), self.partition.phases())
        ):
            if not regions:
                continue
            mask = self.partition.phase_mask(quotients, parity)
            with self.kernels.launch(
                f"gqf_bulk_insert_{phase_name}", bulk_region_launch(len(regions))
            ):
                if vectorised and mask.any():
                    try:
                        self.core.insert_sorted_batch(
                            quotients[mask], remainders[mask], counts[mask]
                        )
                        inserted += int(np.count_nonzero(mask))
                        done |= mask
                        continue
                    except FilterFullError:
                        if self._can_grow():
                            return inserted + self._grow_and_reinsert(
                                quotients, remainders, counts, done
                            )
                        # The merge is all-or-nothing; replay the phase per
                        # item so an over-capacity batch still fills the
                        # table before raising (callers such as the
                        # benchmark fill loops catch FilterFullError and
                        # measure the filter at capacity).
                        pass
                for i in np.flatnonzero(mask & ~done):
                    try:
                        self.core.insert_fingerprint(
                            int(quotients[i]), int(remainders[i]), int(counts[i])
                        )
                    except FilterFullError:
                        if not self._can_grow():
                            raise
                        return inserted + self._grow_and_reinsert(
                            quotients, remainders, counts, done
                        )
                    inserted += 1
                    done[i] = True
        return inserted

    def _grow_and_reinsert(
        self,
        quotients: np.ndarray,
        remainders: np.ndarray,
        counts: np.ndarray,
        done: np.ndarray,
    ) -> int:
        """Grow, re-split the pending items, and restart the phases."""
        pending = ~done
        fingerprints = self.scheme.join(quotients[pending], remainders[pending])
        pending_counts = counts[pending]
        self._grow()
        new_quotients, new_remainders = self.scheme.split(fingerprints)
        return self._phased_insert(
            np.asarray(new_quotients, dtype=np.int64),
            np.asarray(new_remainders, dtype=np.uint64),
            pending_counts,
        )

    def bulk_count_items(self, keys: Sequence[int]) -> int:
        """Count (multiset-insert) a batch; alias of :meth:`bulk_insert`."""
        return self.bulk_insert(keys)

    # ---------------------------------------------------------------- bulk query
    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        quotients, remainders = self._hash_batch(keys)
        with self.kernels.launch("gqf_bulk_query", bulk_region_launch(self.partition.n_regions)):
            counts = self.core.batch_counts(quotients, remainders)
        return counts > 0

    def bulk_count(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        quotients, remainders = self._hash_batch(keys)
        with self.kernels.launch("gqf_bulk_count", bulk_region_launch(self.partition.n_regions)):
            counts = self.core.batch_counts(quotients, remainders)
        return counts

    # ---------------------------------------------------------------- bulk delete
    def bulk_delete(self, keys: Sequence[int]) -> int:
        """Delete a batch using the same sorted even-odd scheme.

        Each phase removes its regions' fingerprints in one vectorised
        subtraction and cluster re-canonicalisation (the left-shifting the
        paper describes for deletes, applied batch-wide).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        quotients, remainders = self._sorted_batch(keys)
        vectorised = not self.core.prefers_sequential(int(keys.size))
        removed = 0
        for parity, (phase_name, regions) in enumerate(
            zip(("even", "odd"), self.partition.phases())
        ):
            if not regions:
                continue
            mask = self.partition.phase_mask(quotients, parity)
            with self.kernels.launch(
                f"gqf_bulk_delete_{phase_name}", bulk_region_launch(len(regions))
            ):
                if vectorised:
                    if mask.any():
                        removed += self.core.delete_sorted_batch(
                            quotients[mask], remainders[mask]
                        )
                else:
                    # Largest items (quotients) first, as on the device.
                    for i in np.flatnonzero(mask)[::-1]:
                        if self.core.delete_fingerprint(
                            int(quotients[i]), int(remainders[i]), 1
                        ):
                            removed += 1
        return removed

    # ------------------------------------------------------------------ point API
    def query(self, key: int) -> bool:
        return self.count(key) > 0

    def count(self, key: int) -> int:
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        return self.core.query_fingerprint(int(quotient), int(remainder))

    def get_value(self, key: int) -> Optional[int]:
        count = self.count(key)
        return count if count > 0 else None

    def insert(self, key: int, value: int = 0) -> bool:
        """Single-item convenience wrapper over :meth:`bulk_insert`."""
        return self.bulk_insert(np.array([key], dtype=np.uint64),
                                np.array([max(1, value)], dtype=np.int64)) == 1

    def delete(self, key: int) -> bool:
        return self.bulk_delete(np.array([key], dtype=np.uint64)) == 1

    # ------------------------------------------------------------------ resize
    def resized(self, extra_quotient_bits: int = 1) -> "BulkGQF":
        """Return a filter with ``2**extra_quotient_bits`` times the slots.

        Quotient extension, exactly as :meth:`PointGQF.resized`: the total
        fingerprint width stays fixed, so every stored fingerprint re-splits
        exactly under the wider quotient.
        """
        if extra_quotient_bits < 1:
            raise ValueError("resize must grow the filter")
        if self.scheme.remainder_bits - extra_quotient_bits < 1:
            raise ValueError("not enough remainder bits to donate to the quotient")
        bigger = BulkGQF(
            self.scheme.quotient_bits + extra_quotient_bits,
            self.scheme.remainder_bits - extra_quotient_bits,
            self.partition.region_slots,
            use_mapreduce=self.use_mapreduce,
            recorder=self.recorder,
            enforce_alignment=False,
            auto_resize=self.auto_resize,
            auto_resize_at=self.auto_resize_at,
        )
        bigger.core = self.core.extended(extra_quotient_bits, name="bulk-gqf-slots")
        return bigger

    def _can_grow(self) -> bool:
        return self.auto_resize and self.scheme.remainder_bits > 1

    def _maybe_grow(self) -> None:
        """Pre-emptive growth once the configured load threshold is crossed."""
        while (
            self.auto_resize
            and self.load_factor >= self.auto_resize_at
            and self.scheme.remainder_bits > 1
        ):
            self._grow()

    def _grow(self, extra_quotient_bits: int = 1) -> None:
        """Extend the quotient in place (the auto-resize step)."""
        self.core = self.core.extended(extra_quotient_bits, name="bulk-gqf-slots")
        self.scheme = FingerprintScheme(
            self.core.quotient_bits, self.core.remainder_bits
        )
        self.partition = RegionPartition(
            self.core.n_canonical_slots, self.partition.region_slots
        )
        self.n_resizes += extra_quotient_bits

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> Dict[str, object]:
        return {
            "quotient_bits": self.scheme.quotient_bits,
            "remainder_bits": self.scheme.remainder_bits,
            "region_slots": self.partition.region_slots,
            "use_mapreduce": self.use_mapreduce,
            "enforce_alignment": False,
            "auto_resize": self.auto_resize,
            "auto_resize_at": self.auto_resize_at,
        }

    def snapshot_state(self) -> Dict[str, np.ndarray]:
        return self.core.export_state()

    def restore_state(self, state: Mapping[str, np.ndarray]) -> None:
        self.core.import_state(state)

    # ------------------------------------------------------------ shared state
    def adopt_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Rebind the table onto shared-memory views (see the core method).

        Adopted filters must not grow in place (growth reallocates the
        table, detaching it from the shared segment), so adoption requires
        ``auto_resize=False``; the sharding layer rebalances from the parent
        process instead.
        """
        if self.auto_resize:
            raise ValueError(
                "auto-resizing filters cannot adopt shared buffers; "
                "construct the shard with auto_resize=False"
            )
        self.core.adopt_state(state)

    def refresh_shared(self) -> None:
        """Reload scalar counters / drop caches after another process wrote."""
        self.core.refresh_shared()

    def flush_shared(self) -> None:
        """Publish the scalar counters back to the shared segment."""
        self.core.flush_shared()

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        """Bulk kernels map one thread per (half of the) regions per phase."""
        return max(1, self.partition.n_regions // 2)
