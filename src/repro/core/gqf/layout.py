"""Core counting-quotient-filter machinery shared by the GQF, SQF and CQF.

A quotient filter stores, for every inserted item, an ``r``-bit remainder in
an array of :math:`2^q` slots.  The remainder is placed as close as possible
to its *canonical slot* (the ``q``-bit quotient), using Robin-Hood linear
probing; two metadata bit vectors, ``occupieds`` and ``runends``, record
which canonical slots own a *run* and where each run ends.  Contiguous runs
with no empty slot between them form a *cluster*: an insert at the start of a
cluster must shift every following slot of the cluster one position right,
which is the cost the GQF's sorted/bulk insertion strategies are designed to
avoid.

:class:`QuotientFilterCore` implements the full functional data structure —
including the in-slot variable-length counters from
:mod:`~repro.core.gqf.counters` — together with hardware-event accounting.
The point GQF adds region locking on top; the bulk GQF adds the even-odd
phased insertion; the SQF/RSQF/CQF baselines reuse the same core with
different configuration and cost models.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.memory import DeviceArray
from ...gpusim.stats import StatsRecorder
from ...hashing.fingerprints import FingerprintScheme
from ..exceptions import FilterFullError
from . import counters
from .rank_select import Bitvector

#: Extra slots appended after the 2^q canonical slots so that runs near the
#: end of the table can shift past it (the reference CQF does the same).
DEFAULT_SLACK_SLOTS = 1024

#: Metadata bits per slot: occupieds + runends (+ the per-block offset byte
#: of the packed representation, amortised).  Used for logical space
#: accounting, matching the paper's ~2.125 bits/slot overhead figure.
METADATA_BITS_PER_SLOT = 2.125


def _dtype_for_remainder(remainder_bits: int) -> np.dtype:
    """Smallest machine dtype that holds an ``r``-bit remainder."""
    if remainder_bits <= 8:
        return np.dtype(np.uint8)
    if remainder_bits <= 16:
        return np.dtype(np.uint16)
    if remainder_bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


class QuotientFilterCore:
    """Functional counting quotient filter with hardware-event accounting.

    Parameters
    ----------
    quotient_bits:
        log2 of the number of canonical slots.
    remainder_bits:
        Width of the stored remainder (sets the false-positive rate ~2^-r).
    recorder:
        Stats recorder for simulated hardware events.
    counting:
        When True (GQF/CQF), duplicate fingerprints are collapsed into
        in-slot variable-length counters; when False (SQF/RSQF-style), each
        duplicate occupies its own slot.
    slack_slots:
        Overflow slots appended after the canonical region.
    slot_metadata_packed:
        When True, the remainder and its 3 metadata bits share one machine
        word (the SQF layout with 5/13-bit remainders); affects only space
        accounting.
    name:
        Label for the device allocation.
    """

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int,
        recorder: StatsRecorder,
        counting: bool = True,
        slack_slots: Optional[int] = None,
        slot_metadata_packed: bool = False,
        name: str = "qf-core",
    ) -> None:
        if quotient_bits < 3 or quotient_bits > 40:
            raise ValueError("quotient_bits must be in [3, 40]")
        if remainder_bits < 1 or remainder_bits > 64:
            raise ValueError("remainder_bits must be in [1, 64]")
        self.quotient_bits = int(quotient_bits)
        self.remainder_bits = int(remainder_bits)
        self.recorder = recorder
        self.counting = bool(counting)
        self.scheme = FingerprintScheme(quotient_bits, min(remainder_bits, 64 - quotient_bits) if quotient_bits + remainder_bits > 64 else remainder_bits)
        self.n_canonical_slots = 1 << self.quotient_bits
        if slack_slots is None:
            # Enough overflow room for the longest cluster, without dominating
            # the footprint of small (test-scale) tables.
            slack_slots = min(DEFAULT_SLACK_SLOTS, max(64, self.n_canonical_slots // 8))
        self.total_slots = self.n_canonical_slots + int(slack_slots)
        self.slot_metadata_packed = bool(slot_metadata_packed)
        self.slots = DeviceArray(
            self.total_slots,
            _dtype_for_remainder(remainder_bits),
            recorder,
            fill=0,
            name=name,
        )
        self.occupieds = Bitvector(self.total_slots)
        self.runends = Bitvector(self.total_slots)
        self.slot_used = Bitvector(self.total_slots)
        self._n_distinct = 0
        self._total_count = 0

    # ---------------------------------------------------------------- metrics
    @property
    def n_slots(self) -> int:
        """Canonical slot count (2^q)."""
        return self.n_canonical_slots

    @property
    def n_occupied_slots(self) -> int:
        """Physical slots currently in use (including counter slots)."""
        return self.slot_used.count()

    @property
    def load_factor(self) -> float:
        return self.n_occupied_slots / self.n_canonical_slots

    @property
    def n_distinct_items(self) -> int:
        """Number of distinct fingerprints stored."""
        return self._n_distinct

    @property
    def total_count(self) -> int:
        """Sum of all stored counts (multiset cardinality)."""
        return self._total_count

    @property
    def slot_bytes(self) -> int:
        return int(self.slots.itemsize)

    @property
    def nbytes(self) -> int:
        """Logical packed footprint: r bits + ~2.125 metadata bits per slot."""
        bits_per_slot = self.remainder_bits + METADATA_BITS_PER_SLOT
        if self.slot_metadata_packed:
            bits_per_slot = self.slot_bytes * 8  # metadata already inside the word
        return int(np.ceil(self.total_slots * bits_per_slot / 8.0))

    # ------------------------------------------------------------- accounting
    def _slot_lines(self, n_slots_touched: int) -> int:
        """Cache lines covered by ``n_slots_touched`` contiguous slots."""
        if n_slots_touched <= 0:
            return 0
        return int(np.ceil(n_slots_touched * self.slot_bytes / 128.0)) or 1

    def _account(self, read_slots: int = 0, write_slots: int = 0, metadata_lines: int = 1,
                 shifted: int = 0) -> None:
        self.recorder.add(
            cache_line_reads=self._slot_lines(read_slots) + metadata_lines,
            cache_line_writes=self._slot_lines(write_slots) + (metadata_lines if write_slots else 0),
            slots_shifted=shifted,
            instructions=4 + read_slots + write_slots,
        )

    # ---------------------------------------------------------- run navigation
    def run_interval(self, quotient: int) -> Tuple[int, int]:
        """Return the inclusive ``[start, end]`` slot range of ``quotient``'s run.

        Requires ``occupieds[quotient]`` to be set.
        """
        if not self.occupieds.get(quotient):
            raise ValueError(f"quotient {quotient} has no run")
        t = self.occupieds.rank(quotient)
        run_end = self.runends.select(t)
        if run_end is None:
            raise RuntimeError("runends/occupieds invariant violated")
        if t == 1:
            prev_end = -1
        else:
            prev_end = self.runends.select(t - 1)
            if prev_end is None:
                raise RuntimeError("runends/occupieds invariant violated")
        run_start = max(quotient, prev_end + 1)
        return run_start, run_end

    def new_run_position(self, quotient: int) -> int:
        """Slot where a new run for ``quotient`` would begin."""
        t = self.occupieds.rank(quotient)
        if t == 0:
            return quotient
        prev_end = self.runends.select(t)
        if prev_end is None:
            raise RuntimeError("runends/occupieds invariant violated")
        return max(quotient, prev_end + 1)

    def cluster_bounds(self, position: int) -> Tuple[int, int]:
        """Inclusive bounds of the cluster (maximal used region) containing
        ``position`` (which must be a used slot)."""
        if not self.slot_used.get(position):
            raise ValueError(f"slot {position} is not in use")
        prev_unused = self.slot_used.prev_unset(position)
        cstart = 0 if prev_unused is None else prev_unused + 1
        next_unused = self.slot_used.next_unset(position)
        cend = self.total_slots - 1 if next_unused is None else next_unused - 1
        return cstart, cend

    # -------------------------------------------------------------- shifting
    def _first_unused(self, start: int) -> int:
        pos = self.slot_used.next_unset(start)
        if pos is None:
            raise FilterFullError("quotient filter has no free slots left")
        return pos

    def _shift_right_one(self, pos: int) -> int:
        """Open one slot at ``pos`` by shifting the cluster tail right.

        Returns the number of slots moved.
        """
        u = self._first_unused(pos)
        moved = u - pos
        if moved > 0:
            segment = self.slots.read_range(pos, u)
            self.slots.write_range(pos + 1, segment)
            self.runends.shift_right_one(pos, u)
        self.slot_used.set(u, True)
        self.recorder.add(slots_shifted=moved)
        return moved

    def _shift_right(self, pos: int, delta: int) -> int:
        """Open ``delta`` slots starting at ``pos``; returns slots moved."""
        moved = 0
        for i in range(delta):
            moved += self._shift_right_one(pos + i)
        return moved

    # ------------------------------------------------------------ run (de)code
    def _read_run(self, run_start: int, run_end: int) -> List[Tuple[int, int]]:
        values = self.slots.read_range(run_start, run_end + 1)
        if self.counting:
            return counters.decode_run(values.tolist())
        return [(int(v), 1) for v in values.tolist()]

    def _encode_items(self, items: Sequence[Tuple[int, int]]) -> List[int]:
        if self.counting:
            return counters.encode_run(items)
        out: List[int] = []
        for rem, count in sorted(items, key=lambda rc: rc[0]):
            out.extend([int(rem)] * int(count))
        return out

    # ------------------------------------------------------------------ insert
    def insert_fingerprint(self, quotient: int, remainder: int, count: int = 1) -> None:
        """Insert ``count`` occurrences of a fingerprint.

        Raises :class:`FilterFullError` when the table has no free slots.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if not 0 <= quotient < self.n_canonical_slots:
            raise ValueError("quotient out of range")
        if remainder >= (1 << self.remainder_bits):
            raise ValueError("remainder wider than remainder_bits")

        was_present = False
        if self.occupieds.get(quotient):
            run_start, run_end = self.run_interval(quotient)
            items = self._read_run(run_start, run_end)
            was_present = any(rem == remainder for rem, _ in items)
            if self.counting:
                new_items = counters.increment(items, remainder, count)
            else:
                new_items = items + [(int(remainder), 1)] * count
            old_len = run_end - run_start + 1
        else:
            run_start = self.new_run_position(quotient)
            items = []
            new_items = [(int(remainder), int(count))] if self.counting else [
                (int(remainder), 1)
            ] * count
            old_len = 0

        encoded = self._encode_items(new_items)
        new_len = len(encoded)
        delta = new_len - old_len
        shifted = 0
        if delta > 0:
            shifted = self._shift_right(run_start + old_len, delta)
        elif delta < 0:
            raise RuntimeError("insert can never shrink a run")

        self.slots.write_range(run_start, np.asarray(encoded, dtype=self.slots.data.dtype))
        for offset in range(new_len):
            self.slot_used.set(run_start + offset, True)
        if old_len > 0:
            self.runends.clear(run_start + old_len - 1)
        self.runends.set(run_start + new_len - 1, True)
        self.occupieds.set(quotient, True)

        # Two metadata bit vectors (occupieds and runends) are read and
        # updated on every insert, in addition to the remainder slots.
        self._account(
            read_slots=old_len,
            write_slots=new_len + shifted,
            metadata_lines=2,
            shifted=shifted,
        )
        if not was_present:
            self._n_distinct += 1
        self._total_count += count

    # ------------------------------------------------------------------- query
    def query_fingerprint(self, quotient: int, remainder: int) -> int:
        """Return the stored count of a fingerprint (0 when absent)."""
        if not self.occupieds.get(quotient):
            self._account(read_slots=0, metadata_lines=1)
            return 0
        run_start, run_end = self.run_interval(quotient)
        items = self._read_run(run_start, run_end)
        self._account(read_slots=run_end - run_start + 1, metadata_lines=1)
        if self.counting:
            for rem, count in items:
                if rem == remainder:
                    return count
            return 0
        return sum(1 for rem, _ in items if rem == remainder)

    # ------------------------------------------------------------------ delete
    def delete_fingerprint(self, quotient: int, remainder: int, count: int = 1) -> bool:
        """Remove ``count`` occurrences of a fingerprint.

        Returns False (and changes nothing) when the fingerprint is absent.
        The whole cluster containing the run is re-canonicalised, which both
        removes the slots and lets trailing runs slide back towards their
        canonical positions (the left-shifting the paper describes for
        deletes).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if not self.occupieds.get(quotient):
            self._account(metadata_lines=1)
            return False
        run_start, run_end = self.run_interval(quotient)
        cstart, cend = self.cluster_bounds(run_start)
        cluster_len = cend - cstart + 1

        # Decode every run in the cluster, in quotient order.
        runs: List[Tuple[int, List[Tuple[int, int]]]] = []
        pos = cstart
        for q in self.occupieds.set_positions(cstart, cend + 1):
            rend = self.runends.next_set(pos)
            if rend is None or rend > cend:
                raise RuntimeError("cluster decoding ran past its bounds")
            runs.append((int(q), self._read_run(pos, rend)))
            pos = rend + 1
        if pos != cend + 1:
            raise RuntimeError("cluster decoding did not cover the cluster")

        # Remove the requested occurrences.
        found = False
        removed_exactly = 0
        new_runs: List[Tuple[int, List[Tuple[int, int]]]] = []
        for q, items in runs:
            if q == quotient and not found:
                if self.counting:
                    present = next((c for r, c in items if r == remainder), 0)
                    if present:
                        found = True
                        removed_exactly = min(count, present)
                        items, _ = counters.decrement(items, remainder, removed_exactly)
                else:
                    present = sum(1 for r, _ in items if r == remainder)
                    if present:
                        found = True
                        removed_exactly = min(count, present)
                        kept: List[Tuple[int, int]] = []
                        to_remove = removed_exactly
                        for r, c in items:
                            if r == remainder and to_remove > 0:
                                to_remove -= 1
                            else:
                                kept.append((r, c))
                        items = kept
            new_runs.append((q, items))
        if not found:
            self._account(read_slots=cluster_len, metadata_lines=1)
            return False

        # Re-write the cluster from scratch with canonical placement.
        self.slot_used.clear_range(cstart, cend + 1)
        self.runends.clear_range(cstart, cend + 1)
        write_slots = 0
        pos = cstart
        for q, items in new_runs:
            if not items:
                self.occupieds.clear(q)
                continue
            start = max(q, pos)
            encoded = self._encode_items(items)
            self.slots.write_range(start, np.asarray(encoded, dtype=self.slots.data.dtype))
            for offset in range(len(encoded)):
                self.slot_used.set(start + offset, True)
            self.runends.set(start + len(encoded) - 1, True)
            self.occupieds.set(q, True)
            write_slots += len(encoded)
            pos = start + len(encoded)

        self._account(
            read_slots=cluster_len,
            write_slots=write_slots,
            metadata_lines=2,
            shifted=cluster_len,
        )
        item_gone = self.query_fingerprint(quotient, remainder) == 0
        if item_gone:
            self._n_distinct -= 1
        self._total_count -= removed_exactly
        return True

    # --------------------------------------------------------------- iterate
    def iter_fingerprints(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(quotient, remainder, count)`` for every stored item.

        Host-side enumeration (used for resize / merge and by tests); does
        not count device traffic.
        """
        for quotient in np.flatnonzero(self.occupieds.bits):
            run_start, run_end = self.run_interval(int(quotient))
            values = self.slots.peek()[run_start : run_end + 1]
            if self.counting:
                items = counters.decode_run(values.tolist())
            else:
                items = [(int(v), 1) for v in values.tolist()]
            for remainder, count in items:
                yield int(quotient), int(remainder), int(count)

    def check_invariants(self) -> None:
        """Raise AssertionError if the metadata invariants are violated.

        Used heavily by the test suite: every occupied quotient has exactly
        one runend, runs are within bounds, used slots are exactly the slots
        covered by runs, and every run decodes cleanly.
        """
        n_runs = 0
        covered = np.zeros(self.total_slots, dtype=bool)
        for quotient in np.flatnonzero(self.occupieds.bits):
            run_start, run_end = self.run_interval(int(quotient))
            assert run_start >= int(quotient), "run starts before its canonical slot"
            assert run_end >= run_start, "empty run interval"
            assert self.runends.get(run_end), "run does not end on a runend bit"
            values = self.slots.peek()[run_start : run_end + 1]
            if self.counting:
                counters.decode_run(values.tolist())
            covered[run_start : run_end + 1] = True
            n_runs += 1
        assert n_runs == self.runends.count(), "occupieds/runends count mismatch"
        assert np.array_equal(covered, self.slot_used.bits), "slot_used does not match run coverage"
