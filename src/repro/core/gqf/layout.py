"""Core counting-quotient-filter machinery shared by the GQF, SQF and CQF.

A quotient filter stores, for every inserted item, an ``r``-bit remainder in
an array of :math:`2^q` slots.  The remainder is placed as close as possible
to its *canonical slot* (the ``q``-bit quotient), using Robin-Hood linear
probing; two metadata bit vectors, ``occupieds`` and ``runends``, record
which canonical slots own a *run* and where each run ends.  Contiguous runs
with no empty slot between them form a *cluster*: an insert at the start of a
cluster must shift every following slot of the cluster one position right,
which is the cost the GQF's sorted/bulk insertion strategies are designed to
avoid.

:class:`QuotientFilterCore` implements the full functional data structure —
including the in-slot variable-length counters from
:mod:`~repro.core.gqf.counters` — together with hardware-event accounting.
The point GQF adds region locking on top; the bulk GQF adds the even-odd
phased insertion; the SQF/RSQF/CQF baselines reuse the same core with
different configuration and cost models.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.memory import DeviceArray
from ...gpusim.stats import StatsRecorder
from ...hashing.fingerprints import FingerprintScheme
from ..exceptions import FilterFullError, SnapshotError
from . import counters
from .rank_select import Bitvector

#: Extra slots appended after the 2^q canonical slots so that runs near the
#: end of the table can shift past it (the reference CQF does the same).
DEFAULT_SLACK_SLOTS = 1024

#: Metadata bits per slot: occupieds + runends (+ the per-block offset byte
#: of the packed representation, amortised).  Used for logical space
#: accounting, matching the paper's ~2.125 bits/slot overhead figure.
METADATA_BITS_PER_SLOT = 2.125

#: Floor for the batch size below which the per-item path is always used;
#: see :meth:`QuotientFilterCore.prefers_sequential`.
SEQUENTIAL_BATCH_MAX = 32


def _dtype_for_remainder(remainder_bits: int) -> np.dtype:
    """Smallest machine dtype that holds an ``r``-bit remainder."""
    if remainder_bits <= 8:
        return np.dtype(np.uint8)
    if remainder_bits <= 16:
        return np.dtype(np.uint16)
    if remainder_bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


class QuotientFilterCore:
    """Functional counting quotient filter with hardware-event accounting.

    Parameters
    ----------
    quotient_bits:
        log2 of the number of canonical slots.
    remainder_bits:
        Width of the stored remainder (sets the false-positive rate ~2^-r).
    recorder:
        Stats recorder for simulated hardware events.
    counting:
        When True (GQF/CQF), duplicate fingerprints are collapsed into
        in-slot variable-length counters; when False (SQF/RSQF-style), each
        duplicate occupies its own slot.
    slack_slots:
        Overflow slots appended after the canonical region.
    slot_metadata_packed:
        When True, the remainder and its 3 metadata bits share one machine
        word (the SQF layout with 5/13-bit remainders); affects only space
        accounting.
    name:
        Label for the device allocation.
    """

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int,
        recorder: StatsRecorder,
        counting: bool = True,
        slack_slots: Optional[int] = None,
        slot_metadata_packed: bool = False,
        name: str = "qf-core",
    ) -> None:
        if quotient_bits < 3 or quotient_bits > 40:
            raise ValueError("quotient_bits must be in [3, 40]")
        if remainder_bits < 1 or remainder_bits > 64:
            raise ValueError("remainder_bits must be in [1, 64]")
        self.quotient_bits = int(quotient_bits)
        self.remainder_bits = int(remainder_bits)
        self.recorder = recorder
        self.counting = bool(counting)
        if quotient_bits + remainder_bits > 64:
            effective_remainder_bits = min(remainder_bits, 64 - quotient_bits)
        else:
            effective_remainder_bits = remainder_bits
        self.scheme = FingerprintScheme(quotient_bits, effective_remainder_bits)
        self.n_canonical_slots = 1 << self.quotient_bits
        if slack_slots is None:
            # Enough overflow room for the longest cluster, without dominating
            # the footprint of small (test-scale) tables.
            slack_slots = min(DEFAULT_SLACK_SLOTS, max(64, self.n_canonical_slots // 8))
        self.total_slots = self.n_canonical_slots + int(slack_slots)
        self.slot_metadata_packed = bool(slot_metadata_packed)
        self.slots = DeviceArray(
            self.total_slots,
            _dtype_for_remainder(remainder_bits),
            recorder,
            fill=0,
            name=name,
        )
        self.occupieds = Bitvector(self.total_slots)
        self.runends = Bitvector(self.total_slots)
        self.slot_used = Bitvector(self.total_slots)
        self._n_distinct = 0
        self._total_count = 0
        #: Memoised whole-table decode (host-side); every mutation drops it,
        #: and the batch rebuild re-seeds it from the merged item arrays.
        self._decoded_cache: Optional[Tuple[np.ndarray, ...]] = None
        #: When the table is adopted onto shared memory (:meth:`adopt_state`),
        #: the int64[2] view holding [n_distinct, total_count]; None for
        #: ordinary heap-allocated tables.
        self._shared_scalars: Optional[np.ndarray] = None

    # ---------------------------------------------------------------- metrics
    @property
    def n_slots(self) -> int:
        """Canonical slot count (2^q)."""
        return self.n_canonical_slots

    @property
    def n_occupied_slots(self) -> int:
        """Physical slots currently in use (including counter slots)."""
        return self.slot_used.count()

    @property
    def load_factor(self) -> float:
        return self.n_occupied_slots / self.n_canonical_slots

    @property
    def n_distinct_items(self) -> int:
        """Number of distinct fingerprints stored."""
        return self._n_distinct

    @property
    def total_count(self) -> int:
        """Sum of all stored counts (multiset cardinality)."""
        return self._total_count

    @property
    def slot_bytes(self) -> int:
        return int(self.slots.itemsize)

    @property
    def nbytes(self) -> int:
        """Logical packed footprint: r bits + ~2.125 metadata bits per slot."""
        bits_per_slot = self.remainder_bits + METADATA_BITS_PER_SLOT
        if self.slot_metadata_packed:
            bits_per_slot = self.slot_bytes * 8  # metadata already inside the word
        return int(np.ceil(self.total_slots * bits_per_slot / 8.0))

    # ------------------------------------------------------------- accounting
    def _slot_lines(self, n_slots_touched: int) -> int:
        """Cache lines covered by ``n_slots_touched`` contiguous slots."""
        if n_slots_touched <= 0:
            return 0
        return int(np.ceil(n_slots_touched * self.slot_bytes / 128.0)) or 1

    def _account(self, read_slots: int = 0, write_slots: int = 0, metadata_lines: int = 1,
                 shifted: int = 0) -> None:
        self.recorder.add(
            cache_line_reads=self._slot_lines(read_slots) + metadata_lines,
            cache_line_writes=(
                self._slot_lines(write_slots) + (metadata_lines if write_slots else 0)
            ),
            slots_shifted=shifted,
            instructions=4 + read_slots + write_slots,
        )

    # ---------------------------------------------------------- run navigation
    def run_interval(self, quotient: int) -> Tuple[int, int]:
        """Return the inclusive ``[start, end]`` slot range of ``quotient``'s run.

        Requires ``occupieds[quotient]`` to be set.
        """
        if not self.occupieds.get(quotient):
            raise ValueError(f"quotient {quotient} has no run")
        t = self.occupieds.rank(quotient)
        run_end = self.runends.select(t)
        if run_end is None:
            raise RuntimeError("runends/occupieds invariant violated")
        if t == 1:
            prev_end = -1
        else:
            prev_end = self.runends.select(t - 1)
            if prev_end is None:
                raise RuntimeError("runends/occupieds invariant violated")
        run_start = max(quotient, prev_end + 1)
        return run_start, run_end

    def new_run_position(self, quotient: int) -> int:
        """Slot where a new run for ``quotient`` would begin."""
        t = self.occupieds.rank(quotient)
        if t == 0:
            return quotient
        prev_end = self.runends.select(t)
        if prev_end is None:
            raise RuntimeError("runends/occupieds invariant violated")
        return max(quotient, prev_end + 1)

    def cluster_bounds(self, position: int) -> Tuple[int, int]:
        """Inclusive bounds of the cluster (maximal used region) containing
        ``position`` (which must be a used slot)."""
        if not self.slot_used.get(position):
            raise ValueError(f"slot {position} is not in use")
        prev_unused = self.slot_used.prev_unset(position)
        cstart = 0 if prev_unused is None else prev_unused + 1
        next_unused = self.slot_used.next_unset(position)
        cend = self.total_slots - 1 if next_unused is None else next_unused - 1
        return cstart, cend

    # -------------------------------------------------------------- shifting
    def _first_unused(self, start: int) -> int:
        pos = self.slot_used.next_unset(start)
        if pos is None:
            raise FilterFullError(
                "quotient filter has no free slots left",
                n_items=self.n_distinct_items,
                n_slots=self.total_slots,
                load_factor=self.load_factor,
            )
        return pos

    def _shift_right_one(self, pos: int) -> int:
        """Open one slot at ``pos`` by shifting the cluster tail right.

        Returns the number of slots moved.
        """
        u = self._first_unused(pos)
        moved = u - pos
        if moved > 0:
            segment = self.slots.read_range(pos, u)
            self.slots.write_range(pos + 1, segment)
            self.runends.shift_right_one(pos, u)
        self.slot_used.set(u, True)
        self.recorder.add(slots_shifted=moved)
        return moved

    def _shift_right(self, pos: int, delta: int) -> int:
        """Open ``delta`` slots starting at ``pos``; returns slots moved."""
        moved = 0
        for i in range(delta):
            moved += self._shift_right_one(pos + i)
        return moved

    # ------------------------------------------------------------ run (de)code
    def _read_run(self, run_start: int, run_end: int) -> List[Tuple[int, int]]:
        values = self.slots.read_range(run_start, run_end + 1)
        # Plain runs (no counter digits, no duplicates) are the common case
        # and need no per-slot Python scan.
        if not self.counting or counters.is_plain_run(values):
            return [(int(v), 1) for v in values.tolist()]
        return counters.decode_run(values.tolist())

    def _encode_items(self, items: Sequence[Tuple[int, int]]) -> List[int]:
        if self.counting:
            return counters.encode_run(items)
        out: List[int] = []
        for rem, count in sorted(items, key=lambda rc: rc[0]):
            out.extend([int(rem)] * int(count))
        return out

    # ------------------------------------------------------------------ insert
    def insert_fingerprint(self, quotient: int, remainder: int, count: int = 1) -> None:
        """Insert ``count`` occurrences of a fingerprint.

        Raises :class:`FilterFullError` when the table has no free slots.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if not 0 <= quotient < self.n_canonical_slots:
            raise ValueError("quotient out of range")
        if remainder >= (1 << self.remainder_bits):
            raise ValueError("remainder wider than remainder_bits")
        self._decoded_cache = None

        was_present = False
        if self.occupieds.get(quotient):
            run_start, run_end = self.run_interval(quotient)
            items = self._read_run(run_start, run_end)
            was_present = any(rem == remainder for rem, _ in items)
            if self.counting:
                new_items = counters.increment(items, remainder, count)
            else:
                new_items = items + [(int(remainder), 1)] * count
            old_len = run_end - run_start + 1
        else:
            run_start = self.new_run_position(quotient)
            items = []
            new_items = [(int(remainder), int(count))] if self.counting else [
                (int(remainder), 1)
            ] * count
            old_len = 0

        encoded = self._encode_items(new_items)
        new_len = len(encoded)
        delta = new_len - old_len
        shifted = 0
        if delta > 0:
            shifted = self._shift_right(run_start + old_len, delta)
        elif delta < 0:
            raise RuntimeError("insert can never shrink a run")

        self.slots.write_range(run_start, np.asarray(encoded, dtype=self.slots.data.dtype))
        self.slot_used.set_range(run_start, run_start + new_len)
        if old_len > 0:
            self.runends.clear(run_start + old_len - 1)
        self.runends.set(run_start + new_len - 1, True)
        self.occupieds.set(quotient, True)

        # Two metadata bit vectors (occupieds and runends) are read and
        # updated on every insert, in addition to the remainder slots.
        self._account(
            read_slots=old_len,
            write_slots=new_len + shifted,
            metadata_lines=2,
            shifted=shifted,
        )
        if not was_present:
            self._n_distinct += 1
        self._total_count += count

    # ------------------------------------------------------------------- query
    def query_fingerprint(self, quotient: int, remainder: int) -> int:
        """Return the stored count of a fingerprint (0 when absent)."""
        if not self.occupieds.get(quotient):
            self._account(read_slots=0, metadata_lines=1)
            return 0
        run_start, run_end = self.run_interval(quotient)
        items = self._read_run(run_start, run_end)
        self._account(read_slots=run_end - run_start + 1, metadata_lines=1)
        if self.counting:
            for rem, count in items:
                if rem == remainder:
                    return count
            return 0
        return sum(1 for rem, _ in items if rem == remainder)

    # ------------------------------------------------------------------ delete
    def delete_fingerprint(self, quotient: int, remainder: int, count: int = 1) -> bool:
        """Remove ``count`` occurrences of a fingerprint.

        Returns False (and changes nothing) when the fingerprint is absent.
        The whole cluster containing the run is re-canonicalised, which both
        removes the slots and lets trailing runs slide back towards their
        canonical positions (the left-shifting the paper describes for
        deletes).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if not self.occupieds.get(quotient):
            self._account(metadata_lines=1)
            return False
        self._decoded_cache = None
        run_start, run_end = self.run_interval(quotient)
        cstart, cend = self.cluster_bounds(run_start)
        cluster_len = cend - cstart + 1

        # Decode every run in the cluster, in quotient order.
        runs: List[Tuple[int, List[Tuple[int, int]]]] = []
        pos = cstart
        for q in self.occupieds.set_positions(cstart, cend + 1):
            rend = self.runends.next_set(pos)
            if rend is None or rend > cend:
                raise RuntimeError("cluster decoding ran past its bounds")
            runs.append((int(q), self._read_run(pos, rend)))
            pos = rend + 1
        if pos != cend + 1:
            raise RuntimeError("cluster decoding did not cover the cluster")

        # Remove the requested occurrences.
        found = False
        removed_exactly = 0
        new_runs: List[Tuple[int, List[Tuple[int, int]]]] = []
        for q, items in runs:
            if q == quotient and not found:
                if self.counting:
                    present = next((c for r, c in items if r == remainder), 0)
                    if present:
                        found = True
                        removed_exactly = min(count, present)
                        items, _ = counters.decrement(items, remainder, removed_exactly)
                else:
                    present = sum(1 for r, _ in items if r == remainder)
                    if present:
                        found = True
                        removed_exactly = min(count, present)
                        kept: List[Tuple[int, int]] = []
                        to_remove = removed_exactly
                        for r, c in items:
                            if r == remainder and to_remove > 0:
                                to_remove -= 1
                            else:
                                kept.append((r, c))
                        items = kept
            new_runs.append((q, items))
        if not found:
            self._account(read_slots=cluster_len, metadata_lines=1)
            return False

        # Re-write the cluster from scratch with canonical placement.
        self.slot_used.clear_range(cstart, cend + 1)
        self.runends.clear_range(cstart, cend + 1)
        write_slots = 0
        pos = cstart
        for q, items in new_runs:
            if not items:
                self.occupieds.clear(q)
                continue
            start = max(q, pos)
            encoded = self._encode_items(items)
            self.slots.write_range(start, np.asarray(encoded, dtype=self.slots.data.dtype))
            self.slot_used.set_range(start, start + len(encoded))
            self.runends.set(start + len(encoded) - 1, True)
            self.occupieds.set(q, True)
            write_slots += len(encoded)
            pos = start + len(encoded)

        self._account(
            read_slots=cluster_len,
            write_slots=write_slots,
            metadata_lines=2,
            shifted=cluster_len,
        )
        item_gone = self.query_fingerprint(quotient, remainder) == 0
        if item_gone:
            self._n_distinct -= 1
        self._total_count -= removed_exactly
        return True

    # ----------------------------------------------------------- batch (bulk)
    # The bulk GQF processes whole sorted batches at once.  The key fact the
    # batch path exploits is that the quotient-filter layout is *canonical*:
    # runs are stored in quotient order and packed greedily left to right
    # (``start = max(quotient, previous_end + 1)``), so the final slot layout
    # is a pure function of the stored (quotient, remainder, count) multiset,
    # independent of insertion order.  A batch insert therefore decodes the
    # table into item arrays, merges the batch in, and rewrites the canonical
    # layout with whole-array NumPy operations — producing bit-for-bit the
    # same table the per-item Robin-Hood path would.

    def _slot_lines_vec(self, n_slots: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_slot_lines`: cache lines per contiguous span."""
        lines = (n_slots * self.slot_bytes + 127) // 128
        return np.where(n_slots > 0, np.maximum(lines, 1), 0)

    def _span_lines_vec(self, starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """Alignment-aware cache lines per span (DeviceArray.lines_in_range)."""
        per_line = max(1, 128 // self.slot_bytes)
        return np.where(
            lens > 0, (starts + lens - 1) // per_line - starts // per_line + 1, 0
        )

    def _run_traffic_of(
        self,
        quotients: np.ndarray,
        run_q: np.ndarray,
        run_starts: np.ndarray,
        run_lens: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-quotient run ``(lengths, cache lines)`` as the per-item path
        charges them: one alignment-aware ``read_range``/``write_range``
        transaction plus one ``_account`` charge per run touched."""
        if run_q.size == 0:
            zero = np.zeros(quotients.size, dtype=np.int64)
            return zero, zero.copy()
        idx = np.minimum(np.searchsorted(run_q, quotients), run_q.size - 1)
        hit = run_q[idx] == quotients
        lens = np.where(hit, run_lens[idx], 0)
        starts = np.where(hit, run_starts[idx], 0)
        return lens, self._span_lines_vec(starts, lens) + self._slot_lines_vec(lens)

    def prefers_sequential(self, batch_size: int) -> bool:
        """Whether a batch is too small to amortise the whole-table decode.

        The batch paths decode every stored item (cost ∝ occupied slots),
        while each per-item operation costs roughly ``occupied / 64`` packed
        words of rank/select work — so the crossover sits near a fixed
        fraction of the occupancy (measured at ~1/1000) with a small floor
        for the single-key convenience wrappers.
        """
        return batch_size <= max(SEQUENTIAL_BATCH_MAX, self.n_occupied_slots >> 10)

    def batch_counts(self, quotients: np.ndarray, remainders: np.ndarray) -> np.ndarray:
        """Per-fingerprint stored counts, routed by batch size.

        Large batches amortise one vectorised whole-table lookup; small
        ones probe per item (same simulated traffic either way).
        """
        quotients = np.asarray(quotients, dtype=np.int64)
        remainders = np.asarray(remainders, dtype=np.uint64)
        if not self.prefers_sequential(quotients.size):
            return self.lookup_counts(quotients, remainders)
        return np.array(
            [
                self.query_fingerprint(int(q), int(r))
                for q, r in zip(quotients, remainders)
            ],
            dtype=np.int64,
        )

    def _runs_layout(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Whole-table run geometry: ``(quotients, starts, ends, lengths)``.

        Uses the rank/select correspondence (the i-th occupied quotient owns
        the i-th runend) to recover every run boundary in one pass.
        """
        uq = np.flatnonzero(self.occupieds.bits).astype(np.int64)
        if uq.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return uq, empty, empty.copy(), empty.copy()
        ends = np.flatnonzero(self.runends.bits).astype(np.int64)
        if ends.size != uq.size:
            raise RuntimeError("runends/occupieds invariant violated")
        starts = np.maximum(uq, np.concatenate(([0], ends[:-1] + 1)))
        return uq, starts, ends, ends - starts + 1

    def _decode_items(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Decode the whole table into merged item arrays.

        Returns ``(item_q, item_r, item_count, run_q, run_starts, run_lens)``
        with items sorted by (quotient, remainder) and one row per distinct
        fingerprint.  Runs whose slot values are strictly increasing (no
        counter digits, no duplicates) decode vectorised; only runs that
        embed counters fall back to the per-run Python decoder.  The result
        is memoised until the next mutation (callers treat it as read-only),
        so back-to-back batch probes decode the table once.
        """
        if self._decoded_cache is not None:
            return self._decoded_cache
        uq, starts, _ends, lens = self._runs_layout()
        if uq.size == 0:
            self._decoded_cache = (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.uint64),
                np.zeros(0, dtype=np.int64),
                uq,
                starts,
                lens,
            )
            return self._decoded_cache
        total = int(lens.sum())
        off = np.concatenate(([0], np.cumsum(lens)))
        pos = np.repeat(starts - off[:-1], lens) + np.arange(total)
        vals = self.slots.peek()[pos].astype(np.uint64)
        run_id = np.repeat(np.arange(uq.size), lens)

        if not self.counting:
            item_q, item_r = uq[run_id], vals
            item_c = np.ones(total, dtype=np.int64)
        else:
            plain_run = counters.plain_run_mask(vals, off)
            if plain_run.all():
                item_q, item_r = uq[run_id], vals
                item_c = np.ones(total, dtype=np.int64)
            else:
                fast = plain_run[run_id]
                parts_q = [uq[run_id[fast]]]
                parts_r = [vals[fast]]
                parts_c = [np.ones(int(np.count_nonzero(fast)), dtype=np.int64)]
                for k in np.flatnonzero(~plain_run):
                    decoded = counters.decode_run(vals[off[k] : off[k + 1]].tolist())
                    parts_q.append(np.full(len(decoded), uq[k], dtype=np.int64))
                    parts_r.append(np.array([r for r, _ in decoded], dtype=np.uint64))
                    parts_c.append(np.array([c for _, c in decoded], dtype=np.int64))
                item_q = np.concatenate(parts_q)
                item_r = np.concatenate(parts_r)
                item_c = np.concatenate(parts_c)
                order = np.lexsort((item_r, item_q))
                item_q, item_r, item_c = item_q[order], item_r[order], item_c[order]

        if item_q.size > 1:
            # Merge duplicate (q, r) rows (possible in non-counting mode).
            fresh = np.ones(item_q.size, dtype=bool)
            fresh[1:] = (item_q[1:] != item_q[:-1]) | (item_r[1:] != item_r[:-1])
            if not fresh.all():
                first = np.flatnonzero(fresh)
                item_c = np.add.reduceat(item_c, first)
                item_q, item_r = item_q[first], item_r[first]
        self._decoded_cache = (item_q, item_r, item_c, uq, starts, lens)
        return self._decoded_cache

    def _rebuild_from_items(
        self, item_q: np.ndarray, item_r: np.ndarray, item_c: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rewrite the whole table as the canonical layout of the given items.

        Items must be sorted by (quotient, remainder) with one row per
        distinct fingerprint.  Returns the new ``(run_q, run_starts,
        run_lens)`` geometry.  Raises :class:`FilterFullError` (without
        mutating anything) when the packed layout does not fit.
        """
        if item_q.size == 0:
            self.slots.peek()[:] = 0
            empty = np.zeros(0, dtype=np.int64)
            for bv in (self.occupieds, self.runends, self.slot_used):
                bv.assign_positions(empty)
            self._n_distinct = 0
            self._total_count = 0
            self._decoded_cache = (
                empty,
                np.zeros(0, dtype=np.uint64),
                empty.copy(),
                empty.copy(),
                empty.copy(),
                empty.copy(),
            )
            return empty, empty.copy(), empty.copy()
        flat, enc_lens = counters.encode_flat(
            item_r, item_c, self.counting, self.slots.data.dtype
        )
        new_run = np.ones(item_q.size, dtype=bool)
        new_run[1:] = item_q[1:] != item_q[:-1]
        run_first = np.flatnonzero(new_run)
        run_q = item_q[run_first]
        run_lens = np.add.reduceat(enc_lens, run_first)
        cum = np.concatenate(([0], np.cumsum(run_lens)[:-1]))
        run_starts = cum + np.maximum.accumulate(run_q - cum)
        run_ends = run_starts + run_lens - 1
        if int(run_ends[-1]) >= self.total_slots:
            # How many leading runs fit tells the caller where the batch died.
            n_fitting = int(np.searchsorted(run_ends, self.total_slots))
            raise FilterFullError(
                "quotient filter has no free slots left",
                n_items=self.n_distinct_items,
                n_slots=self.total_slots,
                load_factor=self.load_factor,
                batch_offset=int(run_first[n_fitting]) if n_fitting < run_first.size else None,
            )
        pos = np.repeat(run_starts - cum, run_lens) + np.arange(flat.size)
        data = self.slots.peek()
        data[:] = 0
        data[pos] = flat
        self.occupieds.assign_positions(run_q)
        self.runends.assign_positions(run_ends)
        self.slot_used.assign_positions(pos)
        self._n_distinct = int(item_q.size)
        self._total_count = int(item_c.sum())
        # The merged item arrays *are* the decoded table: re-seed the memo so
        # probes following a batch mutation skip the whole-table decode.
        self._decoded_cache = (item_q, item_r, item_c, run_q, run_starts, run_lens)
        return run_q, run_starts, run_lens

    def insert_sorted_batch(
        self,
        quotients: np.ndarray,
        remainders: np.ndarray,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        """Insert a batch sorted by (quotient, remainder) in one merge.

        Functionally identical to calling :meth:`insert_fingerprint` per row
        (the canonical-layout argument above), but all slot and metadata
        traffic happens as whole-array operations.  Hardware events are
        charged per input row, mirroring what the sequential thread-per-
        region insertion would generate.
        """
        quotients = np.asarray(quotients, dtype=np.int64)
        remainders = np.asarray(remainders, dtype=np.uint64)
        m = int(quotients.size)
        if m == 0:
            return
        counts = (
            np.ones(m, dtype=np.int64)
            if counts is None
            else np.asarray(counts, dtype=np.int64)
        )
        if np.any(counts <= 0):
            raise ValueError("count must be positive")
        if np.any((quotients < 0) | (quotients >= self.n_canonical_slots)):
            raise ValueError("quotient out of range")
        if self.remainder_bits < 64 and np.any(
            remainders >= (np.uint64(1) << np.uint64(self.remainder_bits))
        ):
            raise ValueError("remainder wider than remainder_bits")

        item_q, item_r, item_c, run_q_old, starts_old, lens_old = self._decode_items()
        all_q = np.concatenate([item_q, quotients])
        all_r = np.concatenate([item_r, remainders])
        all_c = np.concatenate([item_c, counts])
        order = np.lexsort((all_r, all_q))
        all_q, all_r, all_c = all_q[order], all_r[order], all_c[order]
        fresh = np.ones(all_q.size, dtype=bool)
        fresh[1:] = (all_q[1:] != all_q[:-1]) | (all_r[1:] != all_r[:-1])
        first = np.flatnonzero(fresh)
        merged_c = np.add.reduceat(all_c, first)
        run_q, run_starts, run_lens = self._rebuild_from_items(
            all_q[first], all_r[first], merged_c
        )

        # Accounting: each input row reads its run as it stands *when that
        # row inserts* — the pre-batch run plus one slot per earlier batch
        # row with the same quotient (rank within the sorted quotient
        # group) — and writes it one slot longer, plus two metadata vectors,
        # exactly as the per-item path does.  That path charges run traffic
        # twice (an alignment-aware DeviceArray transaction plus an aligned
        # _account charge) and records each moved slot twice (once in
        # _shift_right_one, once in _account), folding the shift into the
        # write/instruction charge.  Mirroring all of it, with the growing
        # per-row lengths anchored at the run's settled start position,
        # makes both paths agree exactly — on every counter — for sorted
        # fills whose runs never move mid-batch (fills into an empty table,
        # the benchmark workload, with plain counts); merges into an
        # already-loaded table undercount the per-item path's per-move shift
        # transactions by ~10-15 %.
        row_starts = run_starts[np.searchsorted(run_q, quotients)]
        if run_q_old.size:
            idx = np.minimum(np.searchsorted(run_q_old, quotients), run_q_old.size - 1)
            hit = run_q_old[idx] == quotients
            old_start_rows = np.where(hit, starts_old[idx], row_starts)
            old_rows = np.where(hit, lens_old[idx], 0)
        else:
            old_start_rows = row_starts
            old_rows = np.zeros(m, dtype=np.int64)
        group_first = np.ones(m, dtype=bool)
        group_first[1:] = quotients[1:] != quotients[:-1]
        first_idx = np.flatnonzero(group_first)
        group_rank = np.arange(m) - first_idx[np.cumsum(group_first) - 1]
        eff_old = old_rows + group_rank
        eff_new = eff_old + 1
        old_lines = self._span_lines_vec(old_start_rows, eff_old) + self._slot_lines_vec(
            eff_old
        )
        new_lines = self._span_lines_vec(row_starts, eff_new) + self._slot_lines_vec(
            eff_new
        )
        shifted = 0
        if run_q_old.size:
            disp = run_starts[np.searchsorted(run_q, run_q_old)] - starts_old
            shifted = int(np.sum(disp * lens_old))
        self.recorder.add(
            cache_line_reads=int(old_lines.sum()) + 2 * m + self._slot_lines(shifted),
            cache_line_writes=int(new_lines.sum()) + 2 * m + self._slot_lines(shifted),
            slots_shifted=2 * shifted,
            instructions=int(4 * m + eff_old.sum() + eff_new.sum() + shifted),
        )

    def lookup_counts(self, quotients: np.ndarray, remainders: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`query_fingerprint` over a whole batch."""
        quotients = np.asarray(quotients, dtype=np.int64)
        remainders = np.asarray(remainders, dtype=np.uint64)
        m = int(quotients.size)
        out = np.zeros(m, dtype=np.int64)
        if m == 0:
            return out
        item_q, item_r, item_c, run_q, starts, lens = self._decode_items()
        # Per probe, the per-item path charges one read_range transaction
        # for the run plus _account's aligned charge and one metadata line;
        # mirror it so batch and per-item queries record the same traffic.
        q_lens, q_lines = self._run_traffic_of(quotients, run_q, starts, lens)
        self.recorder.add(
            cache_line_reads=int(q_lines.sum()) + m,
            instructions=int(4 * m + q_lens.sum()),
        )
        if item_q.size == 0:
            return out
        if self.quotient_bits + self.remainder_bits <= 64:
            shift = np.uint64(self.remainder_bits)
            item_keys = (item_q.astype(np.uint64) << shift) | item_r
            probe_keys = (quotients.astype(np.uint64) << shift) | remainders
            idx = np.minimum(np.searchsorted(item_keys, probe_keys), item_keys.size - 1)
            return np.where(item_keys[idx] == probe_keys, item_c[idx], 0)
        # Fingerprints wider than 64 bits cannot be packed into one sort key;
        # fall back to a host-side dictionary (unreachable for GQF configs).
        table = {
            (int(q), int(r)): int(c) for q, r, c in zip(item_q, item_r, item_c)
        }
        for i in range(m):
            out[i] = table.get((int(quotients[i]), int(remainders[i])), 0)
        return out

    def delete_sorted_batch(self, quotients: np.ndarray, remainders: np.ndarray) -> int:
        """Delete one occurrence per row; returns how many rows removed one.

        Functionally identical to per-row :meth:`delete_fingerprint` calls:
        requests against an absent fingerprint remove nothing, and several
        requests against the same fingerprint remove at most its stored
        count.
        """
        quotients = np.asarray(quotients, dtype=np.int64)
        remainders = np.asarray(remainders, dtype=np.uint64)
        m = int(quotients.size)
        if m == 0:
            return 0
        item_q, item_r, item_c, run_q_old, starts_old, lens_old = self._decode_items()

        # Cluster geometry for the accounting (a delete re-canonicalises the
        # whole cluster containing its run, as the per-item path does).
        if run_q_old.size:
            ends_old = starts_old + lens_old - 1
            breaks = np.ones(run_q_old.size, dtype=bool)
            breaks[1:] = starts_old[1:] > ends_old[:-1] + 1
            cluster_id = np.cumsum(breaks) - 1
            cluster_first = np.flatnonzero(breaks)
            cluster_last = np.concatenate([cluster_first[1:] - 1, [run_q_old.size - 1]])
            cluster_len = ends_old[cluster_last] - starts_old[cluster_first] + 1
            cluster_runs = cluster_last - cluster_first + 1
            idx = np.minimum(np.searchsorted(run_q_old, quotients), run_q_old.size - 1)
            occupied = run_q_old[idx] == quotients
            req_cluster = np.where(occupied, cluster_len[cluster_id[idx]], 0)
            req_runs = np.where(occupied, cluster_runs[cluster_id[idx]], 0)
        else:
            req_cluster = np.zeros(m, dtype=np.int64)
            req_runs = np.zeros(m, dtype=np.int64)

        removed = 0
        if item_q.size:
            order = np.lexsort((remainders, quotients))
            sq, sr = quotients[order], remainders[order]
            fresh = np.ones(m, dtype=bool)
            fresh[1:] = (sq[1:] != sq[:-1]) | (sr[1:] != sr[:-1])
            first = np.flatnonzero(fresh)
            n_req = np.diff(np.concatenate([first, [m]]))
            if self.quotient_bits + self.remainder_bits <= 64:
                shift = np.uint64(self.remainder_bits)
                item_keys = (item_q.astype(np.uint64) << shift) | item_r
                req_keys = (sq[first].astype(np.uint64) << shift) | sr[first]
                j = np.minimum(np.searchsorted(item_keys, req_keys), item_keys.size - 1)
                found = item_keys[j] == req_keys
            else:  # pragma: no cover - >64-bit fingerprints
                table = {
                    (int(q), int(r)): k
                    for k, (q, r) in enumerate(zip(item_q, item_r))
                }
                j = np.zeros(first.size, dtype=np.int64)
                found = np.zeros(first.size, dtype=bool)
                for k, (q, r) in enumerate(zip(sq[first], sr[first])):
                    hit = table.get((int(q), int(r)))
                    if hit is not None:
                        j[k], found[k] = hit, True
            removed_per_pair = np.where(
                found, np.minimum(n_req, item_c[j]), 0
            ).astype(np.int64)
            removed = int(removed_per_pair.sum())
            if removed:
                new_c = item_c.copy()
                np.subtract.at(new_c, j[found], removed_per_pair[found])
                keep = new_c > 0
                self._rebuild_from_items(item_q[keep], item_r[keep], new_c[keep])

        # Approximation, not exact parity: the per-item path decodes and
        # rewrites its cluster run by run (one line transaction per run on
        # top of the whole-cluster accounting) and verifies the removal
        # with a trailing query, but each request *here* sees the
        # length-biased pre-batch cluster, whereas sequential deletion
        # shrinks clusters as it proceeds.  Halving the per-cluster terms
        # calibrates the two paths at benchmark scale (q=12, ~30 % of the
        # table deleted: within ~10 % on every counter); smaller tables
        # land within ~2x, which keeps every Figure 6 ordering intact.
        cluster_traffic = int(((req_runs + self._slot_lines_vec(req_cluster)) // 2).sum())
        self.recorder.add(
            cache_line_reads=cluster_traffic + 3 * m,
            cache_line_writes=cluster_traffic + 2 * m,
            slots_shifted=int(req_cluster.sum()) // 2,
            instructions=int(4 * m + req_cluster.sum()),
        )
        return removed

    # --------------------------------------------------------------- iterate
    def iter_fingerprints(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(quotient, remainder, count)`` for every stored item.

        Host-side enumeration (used for resize / merge and by tests); does
        not count device traffic.
        """
        item_q, item_r, item_c, _uq, _starts, _lens = self._decode_items()
        for q, r, c in zip(item_q.tolist(), item_r.tolist(), item_c.tolist()):
            if self.counting:
                yield int(q), int(r), int(c)
            else:
                # Non-counting cores store duplicates in separate slots and
                # enumerate them one per slot.
                for _ in range(int(c)):
                    yield int(q), int(r), 1

    def check_invariants(self) -> None:
        """Raise AssertionError if the metadata invariants are violated.

        Used heavily by the test suite: every occupied quotient has exactly
        one runend, runs are within bounds, used slots are exactly the slots
        covered by runs, and every run decodes cleanly.
        """
        assert self.occupieds.count() == self.runends.count(), (
            "occupieds/runends count mismatch"
        )
        uq, starts, ends, lens = self._runs_layout()
        covered = np.zeros(self.total_slots, dtype=bool)
        if uq.size:
            assert np.all(starts >= uq), "run starts before its canonical slot"
            assert np.all(ends >= starts), "empty run interval"
            assert int(ends[-1]) < self.total_slots, "run past the end of the table"
            total = int(lens.sum())
            off = np.concatenate(([0], np.cumsum(lens)))
            pos = np.repeat(starts - off[:-1], lens) + np.arange(total)
            covered[pos] = True
            if self.counting:
                vals = self.slots.peek()[pos]
                for k in np.flatnonzero(~counters.plain_run_mask(vals, off)):
                    counters.decode_run(vals[off[k] : off[k + 1]].tolist())
        assert np.array_equal(covered, self.slot_used.bits), "slot_used does not match run coverage"

    # -------------------------------------------------------------- lifecycle
    def decoded_items(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(quotients, remainders, counts)`` sorted by fingerprint.

        Host-side enumeration (like :meth:`iter_fingerprints`, but as whole
        arrays for the lifecycle merge/resize paths); charges no device
        traffic.  The arrays are copies — callers may mutate them freely.
        """
        item_q, item_r, item_c, _uq, _starts, _lens = self._decode_items()
        return item_q.copy(), item_r.copy(), item_c.copy()

    def export_state(self) -> "Dict[str, np.ndarray]":
        """Snapshot the complete table state as named arrays."""
        return {
            "slots": self.slots.peek().copy(),
            "occupieds": self.occupieds.to_words(),
            "runends": self.runends.to_words(),
            "slot_used": self.slot_used.to_words(),
            "scalars": np.array(
                [self._n_distinct, self._total_count], dtype=np.int64
            ),
        }

    def import_state(self, state: "Mapping[str, np.ndarray]") -> None:
        """Restore the table from :meth:`export_state` output, bit for bit."""
        slots = np.asarray(state["slots"])
        data = self.slots.peek()
        if slots.size != data.size:
            raise SnapshotError(
                f"slot section holds {slots.size} slots, table has {data.size}"
            )
        data[:] = slots.astype(data.dtype, copy=False)
        if self._shared_scalars is None:
            self.occupieds = Bitvector.from_words(state["occupieds"], self.total_slots)
            self.runends = Bitvector.from_words(state["runends"], self.total_slots)
            self.slot_used = Bitvector.from_words(state["slot_used"], self.total_slots)
        else:
            # Adopted tables must keep writing through the shared-memory
            # buffers, so restore the metadata bits in place of the views
            # instead of rebinding fresh heap vectors.
            for bv, section in (
                (self.occupieds, "occupieds"),
                (self.runends, "runends"),
                (self.slot_used, "slot_used"),
            ):
                words = np.asarray(state[section], dtype=np.uint64)
                if words.size != bv.n_words:
                    raise SnapshotError(
                        f"snapshot section {section!r} holds {words.size} "
                        f"words, table has {bv.n_words}"
                    )
                bv.words[:] = words
        scalars = np.asarray(state["scalars"], dtype=np.int64)
        self._n_distinct = int(scalars[0])
        self._total_count = int(scalars[1])
        self._decoded_cache = None
        if self._shared_scalars is not None:
            self.flush_shared()

    # ----------------------------------------------------------- shared state
    def adopt_state(self, state: "Mapping[str, np.ndarray]") -> None:
        """Rebind the table onto externally allocated buffers, zero-copy.

        The shared-memory allocation path of :mod:`repro.sharding`: ``state``
        carries the same named sections as :meth:`export_state`, but backed
        by ``multiprocessing.shared_memory`` views.  After adoption every
        slot/metadata mutation writes straight through to the shared
        segment; only the two scalar counters live as Python ints and are
        synchronised explicitly with :meth:`refresh_shared` (at task start,
        after another process may have mutated the table) and
        :meth:`flush_shared` (at task end).
        """
        slots = np.asarray(state["slots"])
        if slots.size != self.total_slots or slots.dtype != self.slots.data.dtype:
            raise SnapshotError(
                f"cannot adopt a {slots.dtype} slot buffer of {slots.size} "
                f"slots; table needs {self.slots.data.dtype} x {self.total_slots}"
            )
        self.slots.data = slots
        self.occupieds = Bitvector.adopt_words(state["occupieds"], self.total_slots)
        self.runends = Bitvector.adopt_words(state["runends"], self.total_slots)
        self.slot_used = Bitvector.adopt_words(state["slot_used"], self.total_slots)
        scalars = np.asarray(state["scalars"])
        if scalars.dtype != np.int64 or scalars.size != 2:
            raise SnapshotError("scalar section must be int64[2]")
        self._shared_scalars = scalars
        self.refresh_shared()

    def refresh_shared(self) -> None:
        """Reload the scalar counters and drop caches after external writes."""
        if self._shared_scalars is None:
            raise SnapshotError("table is not adopted onto shared buffers")
        self._n_distinct = int(self._shared_scalars[0])
        self._total_count = int(self._shared_scalars[1])
        self._decoded_cache = None

    def flush_shared(self) -> None:
        """Write the scalar counters back into the shared buffer."""
        if self._shared_scalars is None:
            raise SnapshotError("table is not adopted onto shared buffers")
        self._shared_scalars[0] = self._n_distinct
        self._shared_scalars[1] = self._total_count

    def extended(
        self, extra_quotient_bits: int = 1, name: Optional[str] = None
    ) -> "QuotientFilterCore":
        """Return a core with ``extra_quotient_bits`` moved from remainder to
        quotient, holding the same fingerprint multiset.

        This is the quotient filter's resize primitive: the total fingerprint
        width ``p = q + r`` stays fixed, so every stored ``p``-bit
        fingerprint re-splits exactly under the wider quotient.  The stored
        items are enumerated host-side (no device traffic, like
        :meth:`iter_fingerprints`) and rebuilt into the new table through the
        canonical sorted merge, which charges the rebuild's calibrated
        events.
        """
        if extra_quotient_bits < 1:
            raise ValueError("resize must grow the filter")
        new_r = self.remainder_bits - extra_quotient_bits
        if new_r < 1:
            raise ValueError("not enough remainder bits to donate to the quotient")
        new_q = self.quotient_bits + extra_quotient_bits
        new_core = QuotientFilterCore(
            new_q,
            new_r,
            self.recorder,
            counting=self.counting,
            slot_metadata_packed=self.slot_metadata_packed,
            name=name if name is not None else self.slots.name,
        )
        item_q, item_r, item_c = self.decoded_items()
        if item_q.size:
            # Re-split under the new geometry; fingerprint order (and thus
            # the sorted-batch precondition) is preserved by construction.
            fingerprints = (
                item_q.astype(np.uint64) << np.uint64(self.remainder_bits)
            ) | item_r
            new_quotients = (fingerprints >> np.uint64(new_r)).astype(np.int64)
            new_remainders = fingerprints & np.uint64((1 << new_r) - 1)
            new_core.insert_sorted_batch(new_quotients, new_remainders, item_c)
        return new_core
