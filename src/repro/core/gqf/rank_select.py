"""Bit vectors with rank/select support for quotient-filter metadata.

Quotient filters store two metadata bits per slot (``occupieds`` and
``runends``) and navigate between canonical slots and run boundaries with
rank and select:

* ``rank(B, i)``   — number of set bits in ``B[0..i]`` (inclusive);
* ``select(B, k)`` — position of the ``k``-th set bit (1-indexed).

:class:`Bitvector` is the workhorse used by the GQF/SQF/CQF cores; it keeps
its bits in a NumPy boolean array so rank/select are vectorised, and can
import/export packed 64-bit words.  The module also provides the word-level
primitives (``popcount64``, ``select64``) that the RSQF baseline uses for its
block-local offsets, mirroring the x86 ``popcnt``/``pdep`` tricks of the CPU
implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def popcount64(words: np.ndarray | int) -> np.ndarray | int:
    """Population count of 64-bit words (vectorised)."""
    scalar = not isinstance(words, np.ndarray)
    w = np.atleast_1d(np.asarray(words, dtype=np.uint64))
    out = np.zeros(w.shape, dtype=np.int64)
    tmp = w.copy()
    while np.any(tmp):
        out += (tmp & np.uint64(1)).astype(np.int64)
        tmp >>= np.uint64(1)
    return int(out[0]) if scalar else out


def select64(word: int, k: int) -> int:
    """Position (0-based) of the ``k``-th (1-indexed) set bit of a 64-bit word.

    Returns 64 when the word has fewer than ``k`` set bits (CUDA/x86
    convention for "not found").
    """
    word = int(word) & 0xFFFFFFFFFFFFFFFF
    if k <= 0:
        raise ValueError("k must be >= 1")
    seen = 0
    for bit in range(64):
        if word & (1 << bit):
            seen += 1
            if seen == k:
                return bit
    return 64


class Bitvector:
    """A fixed-length bit vector with rank/select queries.

    Parameters
    ----------
    n_bits:
        Length of the vector; all bits start cleared.
    """

    def __init__(self, n_bits: int) -> None:
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        self.n_bits = int(n_bits)
        self.bits = np.zeros(self.n_bits, dtype=bool)

    # ----------------------------------------------------------- bit access
    def get(self, index: int) -> bool:
        """Return bit ``index``."""
        return bool(self.bits[index])

    def set(self, index: int, value: bool = True) -> None:
        """Set (or clear) bit ``index``."""
        self.bits[index] = bool(value)

    def clear(self, index: int) -> None:
        """Clear bit ``index``."""
        self.bits[index] = False

    def clear_range(self, start: int, stop: int) -> None:
        """Clear bits in ``[start, stop)``."""
        self.bits[start:stop] = False

    def count(self) -> int:
        """Total number of set bits."""
        return int(np.count_nonzero(self.bits))

    # ------------------------------------------------------------ rank/select
    def rank(self, index: int) -> int:
        """Number of set bits in ``[0, index]`` (inclusive).

        ``rank(-1)`` is 0 by convention.
        """
        if index < 0:
            return 0
        index = min(index, self.n_bits - 1)
        return int(np.count_nonzero(self.bits[: index + 1]))

    def select(self, k: int) -> Optional[int]:
        """Position of the ``k``-th set bit (1-indexed); None if fewer exist."""
        if k <= 0:
            raise ValueError("select is 1-indexed: k must be >= 1")
        positions = np.flatnonzero(self.bits)
        if k > positions.size:
            return None
        return int(positions[k - 1])

    def select_from(self, k: int, start: int) -> Optional[int]:
        """Position of the ``k``-th set bit at or after ``start``."""
        if k <= 0:
            raise ValueError("select is 1-indexed: k must be >= 1")
        positions = np.flatnonzero(self.bits[start:])
        if k > positions.size:
            return None
        return int(start + positions[k - 1])

    # ------------------------------------------------------------- navigation
    def next_set(self, start: int) -> Optional[int]:
        """First set bit at or after ``start`` (None if none)."""
        if start >= self.n_bits:
            return None
        offset = np.argmax(self.bits[start:]) if self.bits[start:].any() else -1
        if offset < 0:
            return None
        return int(start + offset)

    def next_unset(self, start: int) -> Optional[int]:
        """First cleared bit at or after ``start`` (None if none)."""
        if start >= self.n_bits:
            return None
        region = ~self.bits[start:]
        if not region.any():
            return None
        return int(start + np.argmax(region))

    def prev_unset(self, start: int) -> Optional[int]:
        """Last cleared bit at or before ``start`` (None if none)."""
        if start < 0:
            return None
        start = min(start, self.n_bits - 1)
        region = ~self.bits[: start + 1]
        if not region.any():
            return None
        return int(np.flatnonzero(region)[-1])

    def set_positions(self, start: int, stop: int) -> np.ndarray:
        """Positions of set bits within ``[start, stop)``."""
        return start + np.flatnonzero(self.bits[start:stop])

    # -------------------------------------------------------------- shifting
    def shift_right_one(self, start: int, stop: int) -> None:
        """Shift bits ``[start, stop)`` one position right (towards stop).

        Bit ``stop`` receives the old bit ``stop - 1``; bit ``start`` is
        cleared.  Used when Robin-Hood insertion shifts remainders: the
        ``runends`` bits move with their slots.
        """
        if stop <= start:
            return
        if stop >= self.n_bits:
            raise IndexError("shift would run past the end of the bit vector")
        self.bits[start + 1 : stop + 1] = self.bits[start:stop]
        self.bits[start] = False

    def shift_left_one(self, start: int, stop: int) -> None:
        """Shift bits ``[start, stop)`` one position left (towards start)."""
        if stop <= start:
            return
        self.bits[start - 1 : stop - 1] = self.bits[start:stop]
        self.bits[stop - 1] = False

    # ------------------------------------------------------------ packed view
    def to_words(self) -> np.ndarray:
        """Export the bits as packed little-endian uint64 words."""
        n_words = (self.n_bits + 63) // 64
        padded = np.zeros(n_words * 64, dtype=np.uint8)
        padded[: self.n_bits] = self.bits
        return np.packbits(padded, bitorder="little").view(np.uint64)

    @classmethod
    def from_words(cls, words: np.ndarray, n_bits: int) -> "Bitvector":
        """Build a bit vector from packed uint64 words."""
        words = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
        bv = cls(n_bits)
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        bv.bits[:] = bits[:n_bits].astype(bool)
        return bv

    @property
    def nbytes_packed(self) -> int:
        """Packed size in bytes (1 bit per position)."""
        return (self.n_bits + 7) // 8

    def __len__(self) -> int:
        return self.n_bits

    def __repr__(self) -> str:  # pragma: no cover
        return f"Bitvector(n_bits={self.n_bits}, set={self.count()})"
