"""Bit vectors with rank/select support for quotient-filter metadata.

Quotient filters store two metadata bits per slot (``occupieds`` and
``runends``) and navigate between canonical slots and run boundaries with
rank and select:

* ``rank(B, i)``   — number of set bits in ``B[0..i]`` (inclusive);
* ``select(B, k)`` — position of the ``k``-th set bit (1-indexed).

:class:`Bitvector` is the workhorse used by the GQF/SQF/CQF cores.  It keeps
its bits **packed into little-endian uint64 words** — the same layout the
GPU (and the reference CQF) uses — so rank is a popcount over whole words,
select is a cumulative popcount plus one in-word select, and the navigation
helpers scan 64 slots per word instead of one boolean per slot.  The module
also provides the word-level primitives (``popcount64``, ``select64``) that
the RSQF baseline uses for its block-local offsets, mirroring the x86
``popcnt``/``pdep`` tricks of the CPU implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

if hasattr(np, "bitwise_count"):
    _popcount_words = np.bitwise_count
else:  # pragma: no cover - NumPy < 2.0 fallback
    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        w = words - ((words >> np.uint64(1)) & _M1)
        w = (w & _M2) + ((w >> np.uint64(2)) & _M2)
        w = (w + (w >> np.uint64(4))) & _M4
        return (w * _H01) >> np.uint64(56)


def popcount64(words: np.ndarray | int) -> np.ndarray | int:
    """Population count of 64-bit words (vectorised, no per-bit loop)."""
    scalar = not isinstance(words, np.ndarray)
    w = np.atleast_1d(np.asarray(words, dtype=np.uint64))
    out = _popcount_words(w).astype(np.int64)
    return int(out[0]) if scalar else out


def select64(word: int, k: int) -> int:
    """Position (0-based) of the ``k``-th (1-indexed) set bit of a 64-bit word.

    Returns 64 when the word has fewer than ``k`` set bits (CUDA/x86
    convention for "not found").
    """
    word = int(word) & 0xFFFFFFFFFFFFFFFF
    if k <= 0:
        raise ValueError("k must be >= 1")
    bits = np.unpackbits(
        np.array([word], dtype=np.uint64).view(np.uint8), bitorder="little"
    )
    cum = np.cumsum(bits)
    pos = int(np.searchsorted(cum, k, side="left"))
    return pos if pos < _WORD_BITS else _WORD_BITS


def _low_bit(word: int) -> int:
    """Index of the lowest set bit of a nonzero word."""
    return (word & -word).bit_length() - 1


def _high_bit(word: int) -> int:
    """Index of the highest set bit of a nonzero word."""
    return word.bit_length() - 1


class Bitvector:
    """A fixed-length bit vector with rank/select queries.

    Bits are stored packed into little-endian uint64 words; the padding bits
    past ``n_bits`` in the final word are kept zero as a class invariant.

    Parameters
    ----------
    n_bits:
        Length of the vector; all bits start cleared.
    """

    __slots__ = ("n_bits", "n_words", "words")

    def __init__(self, n_bits: int) -> None:
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        self.n_bits = int(n_bits)
        self.n_words = (self.n_bits + _WORD_BITS - 1) // _WORD_BITS
        self.words = np.zeros(self.n_words, dtype=np.uint64)

    # ------------------------------------------------------------- internals
    @property
    def _pad_mask(self) -> np.uint64:
        """Mask of the valid bits within the final word."""
        tail = self.n_bits & 63
        if tail == 0:
            return _ALL_ONES
        return _ALL_ONES >> np.uint64(_WORD_BITS - tail)

    def _index(self, index: int) -> int:
        index = int(index)
        if index < 0:
            index += self.n_bits
        if not 0 <= index < self.n_bits:
            raise IndexError(f"bit index {index} out of range for {self.n_bits} bits")
        return index

    def _get_chunk(self, w0: int, w1: int) -> np.ndarray:
        """Unpack words ``[w0, w1)`` into a uint8 0/1 array (64 per word)."""
        return np.unpackbits(self.words[w0:w1].view(np.uint8), bitorder="little")

    def _put_chunk(self, w0: int, w1: int, chunk: np.ndarray) -> None:
        self.words[w0:w1] = np.packbits(chunk, bitorder="little").view(np.uint64)

    # ----------------------------------------------------------- bit access
    @property
    def bits(self) -> np.ndarray:
        """The bits as a read-only boolean array (host-side/debug view)."""
        out = np.unpackbits(
            self.words.view(np.uint8), count=self.n_bits, bitorder="little"
        ).view(np.bool_)
        out.flags.writeable = False
        return out

    def get(self, index: int) -> bool:
        """Return bit ``index``."""
        index = self._index(index)
        return bool((self.words[index >> 6] >> np.uint64(index & 63)) & np.uint64(1))

    def set(self, index: int, value: bool = True) -> None:
        """Set (or clear) bit ``index``."""
        index = self._index(index)
        mask = np.uint64(1) << np.uint64(index & 63)
        if value:
            self.words[index >> 6] |= mask
        else:
            self.words[index >> 6] &= ~mask

    def clear(self, index: int) -> None:
        """Clear bit ``index``."""
        self.set(index, False)

    def _apply_range(self, start: int, stop: int, value: bool) -> None:
        start = max(int(start), 0)
        stop = min(int(stop), self.n_bits)
        if stop <= start:
            return
        w0, w1 = start >> 6, (stop - 1) >> 6
        head = _ALL_ONES << np.uint64(start & 63)
        tail = _ALL_ONES >> np.uint64(63 - ((stop - 1) & 63))
        if w0 == w1:
            mask = head & tail
            if value:
                self.words[w0] |= mask
            else:
                self.words[w0] &= ~mask
            return
        if value:
            self.words[w0] |= head
            self.words[w0 + 1 : w1] = _ALL_ONES
            self.words[w1] |= tail
        else:
            self.words[w0] &= ~head
            self.words[w0 + 1 : w1] = 0
            self.words[w1] &= ~tail

    def set_range(self, start: int, stop: int) -> None:
        """Set bits in ``[start, stop)`` (word-masked, no per-bit loop)."""
        self._apply_range(start, stop, True)

    def clear_range(self, start: int, stop: int) -> None:
        """Clear bits in ``[start, stop)``."""
        self._apply_range(start, stop, False)

    def assign_positions(self, positions: np.ndarray) -> None:
        """Replace the whole vector with bits set exactly at ``positions``."""
        buf = np.zeros(self.n_words * _WORD_BITS, dtype=np.uint8)
        buf[np.asarray(positions, dtype=np.int64)] = 1
        self.words[:] = np.packbits(buf, bitorder="little").view(np.uint64)

    def count(self) -> int:
        """Total number of set bits."""
        return int(_popcount_words(self.words).astype(np.int64).sum())

    # ------------------------------------------------------------ rank/select
    def rank(self, index: int) -> int:
        """Number of set bits in ``[0, index]`` (inclusive).

        ``rank(-1)`` is 0 by convention.
        """
        if index < 0:
            return 0
        index = min(index, self.n_bits - 1)
        w = index >> 6
        partial = self.words[w] & (_ALL_ONES >> np.uint64(63 - (index & 63)))
        full = int(_popcount_words(self.words[:w]).astype(np.int64).sum())
        return full + int(_popcount_words(np.uint64(partial)))

    def _cum_popcounts(self) -> np.ndarray:
        return np.cumsum(_popcount_words(self.words).astype(np.int64))

    def select(self, k: int) -> Optional[int]:
        """Position of the ``k``-th set bit (1-indexed); None if fewer exist."""
        if k <= 0:
            raise ValueError("select is 1-indexed: k must be >= 1")
        cum = self._cum_popcounts()
        if k > int(cum[-1]):
            return None
        w = int(np.searchsorted(cum, k, side="left"))
        prior = int(cum[w - 1]) if w else 0
        return (w << 6) + select64(int(self.words[w]), k - prior)

    def select_from(self, k: int, start: int) -> Optional[int]:
        """Position of the ``k``-th set bit at or after ``start``."""
        if k <= 0:
            raise ValueError("select is 1-indexed: k must be >= 1")
        return self.select(k + self.rank(start - 1))

    # ------------------------------------------------------------- navigation
    def next_set(self, start: int) -> Optional[int]:
        """First set bit at or after ``start`` (None if none)."""
        start = max(int(start), 0)
        if start >= self.n_bits:
            return None
        w0 = start >> 6
        masked = int(self.words[w0] & (_ALL_ONES << np.uint64(start & 63)))
        if masked:
            return (w0 << 6) + _low_bit(masked)
        nz = np.flatnonzero(self.words[w0 + 1 :])
        if nz.size == 0:
            return None
        w = w0 + 1 + int(nz[0])
        return (w << 6) + _low_bit(int(self.words[w]))

    def next_unset(self, start: int) -> Optional[int]:
        """First cleared bit at or after ``start`` (None if none)."""
        start = max(int(start), 0)
        if start >= self.n_bits:
            return None
        w0 = start >> 6
        inv = (~self.words[w0]) & (_ALL_ONES << np.uint64(start & 63))
        if w0 == self.n_words - 1:
            inv &= self._pad_mask
        if int(inv):
            return (w0 << 6) + _low_bit(int(inv))
        nz = np.flatnonzero(self.words[w0 + 1 :] != _ALL_ONES)
        for offset in nz:
            w = w0 + 1 + int(offset)
            inv = ~self.words[w]
            if w == self.n_words - 1:
                inv &= self._pad_mask
            if int(inv):
                return (w << 6) + _low_bit(int(inv))
        return None

    def prev_unset(self, start: int) -> Optional[int]:
        """Last cleared bit at or before ``start`` (None if none)."""
        if start < 0:
            return None
        start = min(int(start), self.n_bits - 1)
        w0 = start >> 6
        inv = int((~self.words[w0]) & (_ALL_ONES >> np.uint64(63 - (start & 63))))
        if inv:
            return (w0 << 6) + _high_bit(inv)
        full = np.flatnonzero(self.words[:w0] != _ALL_ONES)
        if full.size == 0:
            return None
        w = int(full[-1])
        return (w << 6) + _high_bit(int(~self.words[w] & _ALL_ONES))

    def set_positions(self, start: int, stop: int) -> np.ndarray:
        """Positions of set bits within ``[start, stop)``."""
        start = max(int(start), 0)
        stop = min(int(stop), self.n_bits)
        if stop <= start:
            return np.zeros(0, dtype=np.int64)
        w0, w1 = start >> 6, (stop + 63) >> 6
        chunk = self._get_chunk(w0, w1)
        base = w0 << 6
        return (start + np.flatnonzero(chunk[start - base : stop - base])).astype(
            np.int64
        )

    # -------------------------------------------------------------- shifting
    def shift_right_one(self, start: int, stop: int) -> None:
        """Shift bits ``[start, stop)`` one position right (towards stop).

        Bit ``stop`` receives the old bit ``stop - 1``; bit ``start`` is
        cleared.  Used when Robin-Hood insertion shifts remainders: the
        ``runends`` bits move with their slots.
        """
        if stop <= start:
            return
        if stop >= self.n_bits:
            raise IndexError("shift would run past the end of the bit vector")
        w0, w1 = start >> 6, (stop >> 6) + 1
        chunk = self._get_chunk(w0, w1)
        base = w0 << 6
        s, e = start - base, stop - base
        chunk[s + 1 : e + 1] = chunk[s:e]
        chunk[s] = 0
        self._put_chunk(w0, w1, chunk)

    def shift_left_one(self, start: int, stop: int) -> None:
        """Shift bits ``[start, stop)`` one position left (towards start)."""
        if stop <= start:
            return
        if start <= 0:
            raise IndexError("shift would run past the start of the bit vector")
        w0, w1 = (start - 1) >> 6, ((stop - 1) >> 6) + 1
        chunk = self._get_chunk(w0, w1)
        base = w0 << 6
        s, e = start - base, stop - base
        chunk[s - 1 : e - 1] = chunk[s:e]
        chunk[e - 1] = 0
        self._put_chunk(w0, w1, chunk)

    # ------------------------------------------------------------ packed view
    def to_words(self) -> np.ndarray:
        """Export the bits as packed little-endian uint64 words."""
        return self.words.copy()

    @classmethod
    def from_words(cls, words: np.ndarray, n_bits: int) -> "Bitvector":
        """Build a bit vector from packed uint64 words."""
        words = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
        bv = cls(n_bits)
        bv.words[: words.size] = words[: bv.n_words]
        bv.words[-1] &= bv._pad_mask
        return bv

    @classmethod
    def adopt_words(cls, words: np.ndarray, n_bits: int) -> "Bitvector":
        """Wrap an existing packed-word buffer **without copying**.

        The shared-memory path of :mod:`repro.sharding`: the returned vector
        reads and mutates ``words`` in place, so two processes adopting the
        same buffer observe each other's updates.  ``words`` must be a
        C-contiguous uint64 array of exactly the word count ``n_bits``
        requires; the caller keeps the padding-bits-zero invariant (exported
        words always satisfy it).
        """
        if not isinstance(words, np.ndarray) or words.dtype != np.uint64:
            raise TypeError("adopt_words needs a uint64 ndarray")
        bv = cls(n_bits)
        if words.size != bv.n_words or not words.flags.c_contiguous:
            raise ValueError(
                f"adopt_words needs a contiguous buffer of {bv.n_words} words "
                f"for {n_bits} bits, got {words.size}"
            )
        bv.words = words
        return bv

    @property
    def nbytes_packed(self) -> int:
        """Packed size in bytes (1 bit per position)."""
        return (self.n_bits + 7) // 8

    def __len__(self) -> int:
        return self.n_bits

    def __repr__(self) -> str:  # pragma: no cover
        return f"Bitvector(n_bits={self.n_bits}, set={self.count()})"
