"""Map-reduce pre-aggregation for skewed (Zipfian) count distributions.

Skewed datasets make many threads contend on the *same* hot item: the point
API thrashes on its region locks and the bulk API suffers load imbalance
across regions.  Section 5.4 of the paper solves this for the bulk API by a
map-reduce step performed with Thrust: sort the batch, reduce consecutive
duplicates into ``(item, count)`` pairs, and perform a *single* counted
insert per distinct item.

The aggregation itself is embarrassingly parallel and cheap; the gain is that
the quotient filter sees each hot item once with an aggregate count rather
than thousands of times.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...gpusim.sorting import device_reduce_by_key, device_sort
from ...gpusim.stats import StatsRecorder


def aggregate_batch(
    keys: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate a batch into (unique keys, counts) via device sort + reduce.

    Returns arrays sorted by key, ready for a counted bulk insert.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size == 0:
        return keys.copy(), np.zeros(0, dtype=np.int64)
    sorted_keys = device_sort(keys, recorder)
    unique_keys, counts = device_reduce_by_key(sorted_keys, None, recorder)
    return unique_keys, counts.astype(np.int64)


def aggregation_ratio(keys: np.ndarray) -> float:
    """Fraction of inserts eliminated by aggregation (1 - unique/total).

    A uniform-random dataset aggregates to ~0 %, a Zipfian dataset to a large
    fraction; the benchmark harness reports this alongside Table 5 so the
    speed-up mechanism is visible.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size == 0:
        return 0.0
    unique = np.unique(keys).size
    return 1.0 - unique / keys.size
