"""Map-reduce pre-aggregation for skewed (Zipfian) count distributions.

Skewed datasets make many threads contend on the *same* hot item: the point
API thrashes on its region locks and the bulk API suffers load imbalance
across regions.  Section 5.4 of the paper solves this for the bulk API by a
map-reduce step performed with Thrust: sort the batch, reduce consecutive
duplicates into ``(item, count)`` pairs, and perform a *single* counted
insert per distinct item.

The aggregation itself is embarrassingly parallel and cheap; the gain is that
the quotient filter sees each hot item once with an aggregate count rather
than thousands of times.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ...gpusim.sorting import device_reduce_by_key, device_sort, device_sort_by_key
from ...gpusim.stats import StatsRecorder


def aggregate_batch(
    keys: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate a batch into (unique keys, counts) via device sort + reduce.

    Returns arrays sorted by key, ready for a counted bulk insert.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size == 0:
        return keys.copy(), np.zeros(0, dtype=np.int64)
    sorted_keys = device_sort(keys, recorder)
    unique_keys, counts = device_reduce_by_key(sorted_keys, None, recorder)
    return unique_keys, counts.astype(np.int64)


def merge_sorted_runs(
    runs: Sequence[np.ndarray],
    counts: Optional[Sequence[Optional[np.ndarray]]] = None,
    recorder: Optional[StatsRecorder] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """k-way merge of sorted fingerprint runs into ``(unique, summed counts)``.

    Each run is an ascending array of fingerprints (one per stored distinct
    item, as a quotient filter's decoded table yields them); ``counts`` gives
    the per-item multiplicities of each run (None means all-ones).  The merge
    is the same device sort + reduce-by-key pipeline the map-reduce insert
    path uses within a batch, applied *across* filters: it is exact, because
    a quotient filter's layout is a pure function of its stored fingerprint
    multiset.  :func:`repro.lifecycle.merge.merge` streams the result into a
    fresh table.
    """
    if counts is None:
        counts = [None] * len(runs)
    if len(counts) != len(runs):
        raise ValueError("runs and counts must have the same length")
    parts = [np.asarray(run, dtype=np.uint64) for run in runs]
    weights = [
        np.ones(part.size, dtype=np.int64)
        if count is None
        else np.asarray(count, dtype=np.int64)
        for part, count in zip(parts, counts)
    ]
    for part, weight in zip(parts, weights):
        if part.shape != weight.shape:
            raise ValueError("each run must align with its counts")
    if not parts:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
    all_fps = np.concatenate(parts)
    all_counts = np.concatenate(weights)
    if all_fps.size == 0:
        return all_fps, all_counts
    sorted_fps, sorted_counts = device_sort_by_key(all_fps, all_counts, recorder)
    unique, summed = device_reduce_by_key(sorted_fps, sorted_counts, recorder)
    return unique, summed.astype(np.int64)


def aggregation_ratio(keys: np.ndarray) -> float:
    """Fraction of inserts eliminated by aggregation (1 - unique/total).

    A uniform-random dataset aggregates to ~0 %, a Zipfian dataset to a large
    fraction; the benchmark harness reports this alongside Table 5 so the
    speed-up mechanism is visible.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size == 0:
        return 0.0
    unique = np.unique(keys).size
    return 1.0 - unique / keys.size
