"""GPU Counting Quotient Filter (GQF) and its building blocks."""

from . import counters
from .bulk_gqf import BulkGQF
from .layout import DEFAULT_SLACK_SLOTS, METADATA_BITS_PER_SLOT, QuotientFilterCore
from .mapreduce import aggregate_batch, aggregation_ratio
from .point_gqf import PointGQF
from .rank_select import Bitvector, popcount64, select64
from .regions import DEFAULT_REGION_SLOTS, RegionPartition

__all__ = [
    "counters",
    "BulkGQF",
    "DEFAULT_SLACK_SLOTS",
    "METADATA_BITS_PER_SLOT",
    "QuotientFilterCore",
    "aggregate_batch",
    "aggregation_ratio",
    "PointGQF",
    "Bitvector",
    "popcount64",
    "select64",
    "DEFAULT_REGION_SLOTS",
    "RegionPartition",
]
