"""Point (device-side, per-item) API of the Two-Choice Filter.

The point TCF composes three mechanisms:

* **Power-of-two-choice hashing** — every item gets two candidate blocks; the
  insert goes to the less-full one, keeping the maximum block load within
  :math:`O(\\log\\log n)` of the average.
* **Cooperative-group block operations** — Algorithm 1: the group strides
  over the (cache-line-sized) block, ballots, elects a leader, and the leader
  writes the fingerprint with a single ``atomicCAS``.
* **Backing table** — a tiny double-hashing table (1/100th of the main table)
  that absorbs the <<1 % of items whose candidate blocks are both full,
  raising the achievable load factor from ~79.6 % to 90 %.

Plus the *shortcut optimisation*: when the primary block is less than 75 %
full, the secondary block is not probed at all, saving one cache-line read on
most inserts while the filter is below ~0.75 load.

Supported operations (Table 1): point/bulk insert, query and delete, plus
small-value association.  Counting is intentionally not supported — that is
the TCF's trade-off against the GQF.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...gpusim.kernel import KernelContext, point_launch
from ...gpusim.stats import StatsRecorder
from ...hashing import potc
from ..base import AbstractFilter, FilterCapabilities
from ..exceptions import FilterFullError, UnsupportedOperationError
from .backing import BackingTable
from .block import BlockedTable
from .config import POINT_TCF_DEFAULT, TCFConfig


class PointTCF(AbstractFilter):
    """Two-choice filter with a device-side point API.

    Parameters
    ----------
    n_slots:
        Requested number of main-table slots; rounded up to whole blocks.
    config:
        TCF configuration (fingerprint bits, block size, CG size, ...).
    recorder:
        Optional stats recorder (a fresh one is created if omitted).
    """

    name = "TCF"

    def __init__(
        self,
        n_slots: int,
        config: TCFConfig = POINT_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.config = config
        n_blocks = max(2, (int(n_slots) + config.block_size - 1) // config.block_size)
        self.table = BlockedTable(n_blocks, config, self.recorder)
        n_backing_buckets = max(
            1,
            int(np.ceil(self.table.n_slots * config.backing_fraction / BackingTable.BUCKET_WIDTH)),
        )
        self.backing = BackingTable(n_backing_buckets, config, self.recorder)
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        config: TCFConfig = POINT_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
    ) -> "PointTCF":
        """Size a filter so that ``n_items`` fit at the recommended load factor."""
        n_slots = int(np.ceil(n_items / config.max_load_factor))
        return cls(n_slots, config, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=True,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, config: TCFConfig = POINT_TCF_DEFAULT) -> int:
        """Footprint of a filter with ``n_slots`` slots, without building it.

        Used by the benchmark harness to size the *nominal* structure for the
        performance model while the functional simulation runs on a smaller
        sample.
        """
        main = (n_slots * config.packed_slot_bits + 7) // 8
        backing_slots = int(np.ceil(n_slots * config.backing_fraction))
        backing = backing_slots * 8
        return main + backing

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.table.n_slots * self.config.max_load_factor)

    @property
    def n_slots(self) -> int:
        return self.table.n_slots + self.backing.n_slots

    @property
    def nbytes(self) -> int:
        return self.table.nbytes + self.backing.nbytes

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def n_occupied_slots(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.table.n_slots if self.table.n_slots else 0.0

    @property
    def recommended_load_factor(self) -> float:
        return self.config.max_load_factor

    @property
    def false_positive_rate(self) -> float:
        return self.config.false_positive_rate

    @property
    def backing_fraction_used(self) -> float:
        """Fraction of inserted items that landed in the backing table."""
        if self._n_items == 0:
            return 0.0
        return self.backing.n_items / self._n_items

    # --------------------------------------------------------------- internals
    def _derive(self, key: int) -> potc.PotcHash:
        return potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )

    # ------------------------------------------------------------------ insert
    def insert(self, key: int, value: int = 0) -> bool:
        """Insert a key (optionally with a value).

        Raises :class:`FilterFullError` if both candidate blocks and the
        backing table are full.
        """
        h = self._derive(key)
        primary_block = self.table.load_block(h.primary)
        primary_fill = self.table.block_fill(h.primary, primary_block)

        loaded = {h.primary: primary_block}
        target_order = [h.primary, h.secondary]
        if primary_fill / self.config.block_size < self.config.shortcut_fill:
            # Shortcut: don't even read the secondary block.
            pass
        else:
            secondary_block = self.table.load_block(h.secondary)
            secondary_fill = self.table.block_fill(h.secondary, secondary_block)
            loaded[h.secondary] = secondary_block
            if secondary_fill < primary_fill:
                target_order = [h.secondary, h.primary]

        for block_idx in target_order:
            if self.table.insert(
                block_idx, int(h.fingerprint), value, block=loaded.get(block_idx)
            ):
                self._n_items += 1
                return True

        if self.backing.insert(int(key), value):
            self._n_items += 1
            return True
        raise FilterFullError(
            f"TCF full at load factor {self.load_factor:.3f}: both blocks and "
            "the backing table rejected the insert"
        )

    # ------------------------------------------------------------------- query
    def query(self, key: int) -> bool:
        """Membership query: primary block, secondary block, then backing."""
        return self.get_value(key) is not None

    def get_value(self, key: int) -> Optional[int]:
        """Return the associated value (0 if values disabled) or None."""
        h = self._derive(key)
        value = self.table.query(h.primary, int(h.fingerprint))
        if value is not None:
            return value
        value = self.table.query(h.secondary, int(h.fingerprint))
        if value is not None:
            return value
        return self.backing.query(int(key))

    # ------------------------------------------------------------------ delete
    def delete(self, key: int) -> bool:
        """Delete one occurrence of ``key`` by tombstoning its slot."""
        h = self._derive(key)
        if self.table.delete(h.primary, int(h.fingerprint)):
            self._n_items -= 1
            return True
        if self.table.delete(h.secondary, int(h.fingerprint)):
            self._n_items -= 1
            return True
        if self.backing.delete(int(key)):
            self._n_items -= 1
            return True
        return False

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the TCF does not support counting")

    # ---------------------------------------------------------------- bulk API
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Point-style bulk insert: one cooperative group per item.

        (The genuinely different sorted bulk algorithm lives in
        :class:`~repro.core.tcf.bulk_tcf.BulkTCF`.)
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is None:
            values = np.zeros(len(keys), dtype=np.uint64)
        inserted = 0
        with self.kernels.launch(
            "tcf_point_bulk_insert", point_launch(len(keys), self.config.cg_size)
        ):
            for key, value in zip(keys, values):
                if self.insert(int(key), int(value)):
                    inserted += 1
        return inserted

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(len(keys), dtype=bool)
        with self.kernels.launch(
            "tcf_point_bulk_query", point_launch(len(keys), self.config.cg_size)
        ):
            for i, key in enumerate(keys):
                out[i] = self.query(int(key))
        return out

    def bulk_delete(self, keys: Sequence[int]) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        removed = 0
        with self.kernels.launch(
            "tcf_point_bulk_delete", point_launch(len(keys), self.config.cg_size)
        ):
            for key in keys:
                if self.delete(int(key)):
                    removed += 1
        return removed

    # ---------------------------------------------------------------- analysis
    def block_fills(self) -> np.ndarray:
        """Per-block live-slot counts (for load-variance analysis/tests)."""
        return self.table.fills()

    def active_threads_for(self, n_ops: int) -> int:
        """Threads exposed by a point kernel over ``n_ops`` items."""
        return n_ops * self.config.cg_size
