"""Point (device-side, per-item) API of the Two-Choice Filter.

The point TCF composes three mechanisms:

* **Power-of-two-choice hashing** — every item gets two candidate blocks; the
  insert goes to the less-full one, keeping the maximum block load within
  :math:`O(\\log\\log n)` of the average.
* **Cooperative-group block operations** — Algorithm 1: the group strides
  over the (cache-line-sized) block, ballots, elects a leader, and the leader
  writes the fingerprint with a single ``atomicCAS``.
* **Backing table** — a tiny double-hashing table (1/100th of the main table)
  that absorbs the <<1 % of items whose candidate blocks are both full,
  raising the achievable load factor from ~79.6 % to 90 %.

Plus the *shortcut optimisation*: when the primary block is less than 75 %
full, the secondary block is not probed at all, saving one cache-line read on
most inserts while the filter is below ~0.75 load.

Supported operations (Table 1): point/bulk insert, query and delete, plus
small-value association.  Counting is intentionally not supported — that is
the TCF's trade-off against the GQF.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...gpusim.kernel import KernelContext, point_launch
from ...gpusim.stats import StatsRecorder
from ...hashing import potc
from ..base import AbstractFilter, FilterCapabilities
from ..exceptions import FilterFullError, UnsupportedOperationError
from .backing import BackingTable
from .block import BlockedTable
from .config import EMPTY_SLOT, POINT_TCF_DEFAULT, TOMBSTONE_SLOT, TCFConfig
from .lifecycle import TCFLifecycle

#: Batches at or below this size route through the per-item loop — the same
#: crossover the bulk TCF (``TCF_SEQUENTIAL_BATCH_MAX``) and the baselines
#: (:mod:`repro.baselines._batching`) use.  The per-item route doubles as the
#: differential-testing reference for the batched replay.
POINT_SEQUENTIAL_BATCH_MAX = 32


class PointTCF(TCFLifecycle, AbstractFilter):
    """Two-choice filter with a device-side point API.

    Parameters
    ----------
    n_slots:
        Requested number of main-table slots; rounded up to whole blocks.
    config:
        TCF configuration (fingerprint bits, block size, CG size, ...).
    recorder:
        Optional stats recorder (a fresh one is created if omitted).
    auto_resize:
        Keep a host-side key journal and double-and-rehash the table instead
        of raising :class:`FilterFullError` (see
        :mod:`repro.core.tcf.lifecycle` for why the journal is needed).
    auto_resize_at:
        Load factor that triggers a pre-emptive grow (defaults to the
        config's ``max_load_factor``).
    """

    name = "TCF"

    def __init__(
        self,
        n_slots: int,
        config: TCFConfig = POINT_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
        auto_resize: bool = False,
        auto_resize_at: Optional[float] = None,
    ) -> None:
        super().__init__(recorder)
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.config = config
        n_blocks = max(2, (int(n_slots) + config.block_size - 1) // config.block_size)
        self.table = BlockedTable(n_blocks, config, self.recorder)
        n_backing_buckets = max(
            1,
            int(np.ceil(self.table.n_slots * config.backing_fraction / BackingTable.BUCKET_WIDTH)),
        )
        self.backing = BackingTable(n_backing_buckets, config, self.recorder)
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)
        self._block_lines_cache: Optional[np.ndarray] = None
        self._init_lifecycle(auto_resize, auto_resize_at)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        config: TCFConfig = POINT_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
    ) -> "PointTCF":
        """Size a filter so that ``n_items`` fit at the recommended load factor."""
        n_slots = int(np.ceil(n_items / config.max_load_factor))
        return cls(n_slots, config, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=True,
            resizable=True,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, config: TCFConfig = POINT_TCF_DEFAULT) -> int:
        """Footprint of a filter with ``n_slots`` slots, without building it.

        Used by the benchmark harness to size the *nominal* structure for the
        performance model while the functional simulation runs on a smaller
        sample.
        """
        main = (n_slots * config.packed_slot_bits + 7) // 8
        backing_slots = int(np.ceil(n_slots * config.backing_fraction))
        backing = backing_slots * 8
        return main + backing

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.table.n_slots * self.config.max_load_factor)

    @property
    def n_slots(self) -> int:
        return self.table.n_slots + self.backing.n_slots

    @property
    def nbytes(self) -> int:
        return self.table.nbytes + self.backing.nbytes

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def n_occupied_slots(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.table.n_slots if self.table.n_slots else 0.0

    @property
    def recommended_load_factor(self) -> float:
        return self.config.max_load_factor

    @property
    def false_positive_rate(self) -> float:
        return self.config.false_positive_rate

    @property
    def backing_fraction_used(self) -> float:
        """Fraction of inserted items that landed in the backing table."""
        if self._n_items == 0:
            return 0.0
        return self.backing.n_items / self._n_items

    # --------------------------------------------------------------- internals
    def _derive(self, key: int) -> potc.PotcHash:
        return potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )

    # ------------------------------------------------------------------ insert
    def insert(self, key: int, value: int = 0) -> bool:
        """Insert a key (optionally with a value).

        Raises :class:`FilterFullError` if both candidate blocks and the
        backing table are full; with ``auto_resize=True`` the filter grows
        instead and the insert always succeeds.
        """
        self._maybe_grow()
        while True:
            try:
                placed = self._insert_once(key, value)
            except FilterFullError:
                if not self._can_grow():
                    raise
                self._grow()
                continue
            if placed:
                self._journal_add(int(key), int(value))
            return placed

    def _insert_once(self, key: int, value: int) -> bool:
        """One two-choice insert attempt at the current table geometry."""
        h = self._derive(key)
        primary_block = self.table.load_block(h.primary)
        primary_fill = self.table.block_fill(h.primary, primary_block)

        loaded = {h.primary: primary_block}
        target_order = [h.primary, h.secondary]
        if primary_fill / self.config.block_size < self.config.shortcut_fill:
            # Shortcut: don't even read the secondary block.
            pass
        else:
            secondary_block = self.table.load_block(h.secondary)
            secondary_fill = self.table.block_fill(h.secondary, secondary_block)
            loaded[h.secondary] = secondary_block
            if secondary_fill < primary_fill:
                target_order = [h.secondary, h.primary]

        for block_idx in target_order:
            if self.table.insert(
                block_idx, int(h.fingerprint), value, block=loaded.get(block_idx)
            ):
                self._n_items += 1
                return True

        if self.backing.insert(int(key), value):
            self._n_items += 1
            return True
        raise FilterFullError(
            "TCF full: both blocks and the backing table rejected the insert",
            n_items=self._n_items,
            n_slots=self.table.n_slots,
            load_factor=self.load_factor,
        )

    # ------------------------------------------------------------------- query
    def query(self, key: int) -> bool:
        """Membership query: primary block, secondary block, then backing."""
        return self.get_value(key) is not None

    def get_value(self, key: int) -> Optional[int]:
        """Return the associated value (0 if values disabled) or None."""
        h = self._derive(key)
        value = self.table.query(h.primary, int(h.fingerprint))
        if value is not None:
            return value
        value = self.table.query(h.secondary, int(h.fingerprint))
        if value is not None:
            return value
        return self.backing.query(int(key))

    # ------------------------------------------------------------------ delete
    def delete(self, key: int) -> bool:
        """Delete one occurrence of ``key`` by tombstoning its slot."""
        h = self._derive(key)
        if (
            self.table.delete(h.primary, int(h.fingerprint))
            or self.table.delete(h.secondary, int(h.fingerprint))
            or self.backing.delete(int(key))
        ):
            self._n_items -= 1
            self._journal_remove(int(key))
            return True
        return False

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the TCF does not support counting")

    # ---------------------------------------------------------------- bulk API
    # The batched point paths below replay the per-item decision stream over
    # plain integer state (the pattern established for the CPU VQF baseline):
    # two-choice routing is inherently sequential — every insert changes the
    # fills the next decision reads — so a compressed Python loop walks the
    # batch over integer block fills and lazily materialised free-slot /
    # match-offset lists, while slot placement and all simulated hardware
    # events are applied as whole-array operations.  Placements and deletions
    # consume each block's candidate slots in scan order, exactly as the
    # cooperative group's stride-and-ballot walk does, so table state *and*
    # events match the per-item loop bit for bit (``tests/
    # test_point_vectorized.py`` pins this).  Spills and misses route through
    # the already-calibrated BackingTable bulk primitives, in batch order.

    def _prefers_sequential(self, batch_size: int) -> bool:
        return batch_size <= POINT_SEQUENTIAL_BATCH_MAX

    def _derive_batch(self, keys: np.ndarray) -> potc.PotcHash:
        return potc.derive(
            keys.astype(np.uint64),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )

    def _pack_words(self, fingerprints: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Pack (fingerprint, value) pairs into slot words (slot dtype)."""
        vb = self.config.value_bits
        words = (
            (fingerprints.astype(np.uint64) << np.uint64(vb))
            | (values & np.uint64((1 << vb) - 1))
            if vb
            else fingerprints.astype(np.uint64)
        )
        return words.astype(self.config.slot_dtype)

    def _block_lines(self) -> np.ndarray:
        """Cache lines spanned by each block's slot row (alignment-aware)."""
        if self._block_lines_cache is None:
            bs = self.config.block_size
            starts = np.arange(self.table.n_blocks, dtype=np.int64) * bs
            per_line = self.table.slots.slots_per_line
            self._block_lines_cache = (starts + bs - 1) // per_line - starts // per_line + 1
        return self._block_lines_cache

    def _scan_geometry(self) -> tuple:
        """``(block_size, cg_size, n_strides, tail_divergent)`` of a block scan."""
        bs, g = self.config.block_size, self.config.cg_size
        return bs, g, -(-bs // g), 1 if bs % g else 0

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Point-style bulk insert: one cooperative group per item.

        (The genuinely different sorted bulk algorithm lives in
        :class:`~repro.core.tcf.bulk_tcf.BulkTCF`.)  Raises
        :class:`FilterFullError` when any key cannot be placed; unlike the
        per-item loop — which stops at the first failing item — the batched
        path finishes placing every placeable key before raising, so the
        table is at least as full as the sequential loop would leave it.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is None:
            values = np.zeros(len(keys), dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        inserted = 0
        with self.kernels.launch(
            "tcf_point_bulk_insert", point_launch(len(keys), self.config.cg_size)
        ):
            if self._prefers_sequential(int(keys.size)):
                for key, value in zip(keys, values):
                    if self.insert(int(key), int(value)):
                        inserted += 1
            elif keys.size:
                self._maybe_grow()
                while True:
                    placed = self._bulk_insert_vectorised(keys, values)
                    self._journal_add_batch(keys[placed], values[placed])
                    inserted += int(placed.sum())
                    if placed.all():
                        break
                    if not self._can_grow():
                        raise FilterFullError(
                            "TCF full: both blocks and the backing table "
                            "rejected the insert",
                            n_items=self._n_items,
                            n_slots=self.table.n_slots,
                            load_factor=self.load_factor,
                            batch_offset=int(np.argmin(placed)),
                        )
                    self._grow()
                    keys, values = keys[~placed], values[~placed]
        return inserted

    def bulk_insert_mask(
        self, keys: Sequence[int], values: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Graceful batched insert: a per-key success mask instead of raising.

        The degrade-gracefully entry point applications such as the
        MetaHipMer k-mer phase use: keys that neither block nor the backing
        table can hold come back False and the filter stays consistent.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is None:
            values = np.zeros(len(keys), dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        placed = np.zeros(len(keys), dtype=bool)
        with self.kernels.launch(
            "tcf_point_bulk_insert", point_launch(len(keys), self.config.cg_size)
        ):
            if self._prefers_sequential(int(keys.size)):
                for i, (key, value) in enumerate(zip(keys, values)):
                    try:
                        placed[i] = self.insert(int(key), int(value))
                    except FilterFullError:
                        placed[i] = False
            elif keys.size:
                self._maybe_grow()
                placed = self._bulk_insert_vectorised(keys, values)
                self._journal_add_batch(keys[placed], values[placed])
                while not placed.all() and self._can_grow():
                    self._grow()
                    retry = np.flatnonzero(~placed)
                    sub = self._bulk_insert_vectorised(keys[retry], values[retry])
                    self._journal_add_batch(keys[retry[sub]], values[retry[sub]])
                    placed[retry[sub]] = True
        return placed

    def _bulk_insert_vectorised(self, keys: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Batched two-choice insert replaying the per-item decision stream.

        Returns the per-key placement mask (False only when the backing
        table also rejected the key).
        """
        h = self._derive_batch(keys)
        bs, g, n_strides, tail_div = self._scan_geometry()
        rows = self.table.rows()
        free_rows = (rows == EMPTY_SLOT) | (rows == TOMBSTONE_SLOT)
        live = (bs - free_rows.sum(axis=1)).astype(np.int64).tolist()
        lines = self._block_lines().tolist()
        words = self._pack_words(np.asarray(h.fingerprint), values)
        cas_extra = 1 if self.config.cas_spans_slots else 0
        shortcut_fill = self.config.shortcut_fill
        fill_instr = bs // max(1, g) + 1  # block_fill's strided count
        primaries = h.primary.tolist()
        secondaries = h.secondary.tolist()
        free_offsets: dict = {}
        next_free: dict = {}
        reads = instr = intr = div = atomics = n_cas = 0
        dest_flat = []
        dest_row = []
        spill_rows = []
        for i in range(len(primaries)):
            p, s = primaries[i], secondaries[i]
            lp = live[p]
            # load_block(primary) + block_fill.
            reads += lines[p]
            instr += fill_instr
            first, second = p, s
            if lp / bs >= shortcut_fill:
                ls = live[s]
                reads += lines[s]
                instr += fill_instr
                if ls < lp:
                    first, second = s, p
                candidates = (first, second)
            else:
                # Shortcut: the secondary block is never read, and the
                # primary has a free slot by definition of the threshold.
                candidates = (first,)
            placed = False
            for b in candidates:
                atomics += cas_extra
                if live[b] < bs:
                    offs = free_offsets.get(b)
                    if offs is None:
                        offs = np.flatnonzero(free_rows[b]).tolist()
                        free_offsets[b] = offs
                        next_free[b] = 0
                    o = offs[next_free[b]]
                    next_free[b] += 1
                    live[b] += 1
                    # Strides and ballots up to the free slot, leader
                    # election, the successful CAS, and the closing ballot.
                    strides = o // g + 1
                    instr += strides * g + 1
                    intr += strides + 2
                    if tail_div and strides == n_strides:
                        div += 1
                    atomics += 1
                    n_cas += 1
                    dest_flat.append(b * bs + o)
                    dest_row.append(i)
                    placed = True
                    break
                # Full block: the scan ballots every stride and gives up.
                instr += n_strides * g
                intr += n_strides
                div += tail_div
            if not placed:
                spill_rows.append(i)
        if dest_flat:
            self.table.slots.peek()[np.asarray(dest_flat, dtype=np.int64)] = words[dest_row]
        self.recorder.add(
            cache_line_reads=reads,
            instructions=instr,
            warp_intrinsics=intr,
            divergent_branches=div,
            atomic_ops=atomics,
            coalesced_bytes_read=32 * n_cas,
            coalesced_bytes_written=32 * n_cas,
        )
        self._n_items += len(dest_flat)
        placed_mask = np.ones(len(primaries), dtype=bool)
        if spill_rows:
            spill_idx = np.asarray(spill_rows, dtype=np.int64)
            spilled = self.backing.bulk_insert(keys[spill_idx], values[spill_idx])
            self._n_items += int(spilled.sum())
            placed_mask[spill_idx[~spilled]] = False
        return placed_mask

    def _scan_events(self, match: np.ndarray) -> tuple:
        """Per-key cooperative-scan events for a batch of block probes.

        ``match`` is the ``(n, block_size)`` vote mask of one scan each; the
        returned ``(found, instructions, intrinsics, divergences)`` mirror
        the stride-and-ballot walk: a hit stops at its stride (plus the
        leader election), a miss ballots every stride and pays the divergent
        tail stride when the block size is not a multiple of the group.
        """
        _bs, g, n_strides, tail_div = self._scan_geometry()
        found = match.any(axis=1)
        strides = np.argmax(match, axis=1) // g + 1
        instr = np.where(found, strides * g + 1, n_strides * g)
        intr = np.where(found, strides + 1, n_strides)
        if tail_div:
            divergent = np.count_nonzero(~found | (strides == n_strides))
        else:
            divergent = 0
        return found, int(instr.sum()), int(intr.sum()), int(divergent)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(len(keys), dtype=bool)
        with self.kernels.launch(
            "tcf_point_bulk_query", point_launch(len(keys), self.config.cg_size)
        ):
            if self._prefers_sequential(int(keys.size)):
                for i, key in enumerate(keys):
                    out[i] = self.query(int(key))
            elif keys.size:
                out = self._bulk_query_vectorised(keys)
        return out

    def _bulk_query_vectorised(self, keys: np.ndarray) -> np.ndarray:
        """Whole-batch two-block probe with per-item-calibrated events.

        Fingerprints never collide with the empty/tombstone sentinels (the
        hash reserves and displaces them), so a word-level fingerprint match
        is always a live match — the liveness votes of the per-item scan are
        implied.  Keys missing both blocks fall through to the backing
        table's batched lookup, in batch order.
        """
        h = self._derive_batch(keys)
        rows = self.table.rows()
        lines = self._block_lines()
        vb = self.config.value_bits
        fps = np.asarray(h.fingerprint).astype(rows.dtype)

        def match_rows(blocks: np.ndarray, fp: np.ndarray) -> np.ndarray:
            gathered = rows[blocks]
            words = (gathered >> vb) if vb else gathered
            return words == fp[:, None]

        found, instr, intr, div = self._scan_events(match_rows(h.primary, fps))
        reads = int(lines[h.primary].sum())
        out = found.copy()
        miss = np.flatnonzero(~found)
        if miss.size:
            found2, i2, t2, d2 = self._scan_events(
                match_rows(h.secondary[miss], fps[miss])
            )
            reads += int(lines[h.secondary[miss]].sum())
            instr += i2
            intr += t2
            div += d2
            out[miss[found2]] = True
        self.recorder.add(
            cache_line_reads=reads,
            instructions=instr,
            warp_intrinsics=intr,
            divergent_branches=div,
        )
        still = np.flatnonzero(~out)
        if still.size:
            backing_found, _values = self.backing.bulk_query_values(keys[still])
            out[still] = backing_found
        return out

    def bulk_delete(self, keys: Sequence[int]) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        removed = 0
        with self.kernels.launch(
            "tcf_point_bulk_delete", point_launch(len(keys), self.config.cg_size)
        ):
            if self._prefers_sequential(int(keys.size)):
                for key in keys:
                    if self.delete(int(key)):
                        removed += 1
            elif keys.size:
                removed = self._bulk_delete_vectorised(keys)
        return removed

    def _bulk_delete_vectorised(self, keys: np.ndarray) -> int:
        """Batched tombstoning replaying the per-item claim order.

        Requests against the same ``(block, fingerprint)`` — duplicate keys,
        or distinct keys aliasing to one fingerprint — consume the stored
        copies positionally in slot-scan order, exactly as sequential
        deletes do; a request that exhausts the primary block's copies falls
        through to the secondary, then to the backing table.
        """
        h = self._derive_batch(keys)
        bs, g, n_strides, tail_div = self._scan_geometry()
        rows = self.table.rows()
        lines = self._block_lines().tolist()
        vb = self.config.value_bits
        fps = np.asarray(h.fingerprint).astype(rows.dtype)
        # Per-request live-match bitmask of each candidate block (bit k set
        # when slot k holds the fingerprint); blocks fit a cache line, so at
        # most 64 slots and the mask fits one uint64.  Fingerprints never
        # equal the empty/tombstone sentinels, so a word match is live.
        weights = np.uint64(1) << np.arange(bs, dtype=np.uint64)

        def match_bits(blocks: np.ndarray) -> list:
            gathered = rows[blocks]
            words = (gathered >> vb) if vb else gathered
            return ((words == fps[:, None]) * weights).sum(axis=1).tolist()

        bits_primary = match_bits(h.primary)
        bits_secondary = match_bits(h.secondary)
        primaries = h.primary.tolist()
        secondaries = h.secondary.tolist()
        fp_list = fps.tolist()
        claim_bits: dict = {}
        removed = np.zeros(len(primaries), dtype=bool)
        tomb_flat = []
        backing_rows = []
        reads = instr = intr = div = atomics = n_cas = 0
        for i in range(len(primaries)):
            fp = fp_list[i]
            found = False
            for b, fresh in ((primaries[i], bits_primary), (secondaries[i], bits_secondary)):
                reads += lines[b]
                key = (b, fp)
                bits = claim_bits.get(key)
                if bits is None:
                    bits = fresh[i]
                if bits:
                    low = bits & -bits
                    claim_bits[key] = bits ^ low
                    o = low.bit_length() - 1
                    strides = o // g + 1
                    instr += strides * g + 1
                    intr += strides + 1
                    if tail_div and strides == n_strides:
                        div += 1
                    atomics += 1
                    n_cas += 1
                    tomb_flat.append(b * bs + o)
                    removed[i] = True
                    found = True
                    break
                claim_bits[key] = 0
                instr += n_strides * g
                intr += n_strides
                div += tail_div
            if not found:
                backing_rows.append(i)
        if tomb_flat:
            self.table.slots.peek()[np.asarray(tomb_flat, dtype=np.int64)] = (
                self.config.slot_dtype.type(TOMBSTONE_SLOT)
            )
        self.recorder.add(
            cache_line_reads=reads,
            instructions=instr,
            warp_intrinsics=intr,
            divergent_branches=div,
            atomic_ops=atomics,
            coalesced_bytes_read=32 * n_cas,
            coalesced_bytes_written=32 * n_cas,
        )
        self._n_items -= len(tomb_flat)
        if backing_rows:
            backing_idx = np.asarray(backing_rows, dtype=np.int64)
            backing_removed = self.backing.bulk_delete(keys[backing_idx])
            removed[backing_idx] = backing_removed
            self._n_items -= int(backing_removed.sum())
        self._journal_remove_batch(keys[removed])
        return int(removed.sum())

    # ---------------------------------------------------------------- analysis
    def block_fills(self) -> np.ndarray:
        """Per-block live-slot counts (for load-variance analysis/tests)."""
        return self.table.fills()

    def active_threads_for(self, n_ops: int) -> int:
        """Threads exposed by a point kernel over ``n_ops`` items."""
        return n_ops * self.config.cg_size
