"""Two-Choice Filter (TCF): the paper's fast set-membership GPU filter."""

from .backing import BackingTable
from .block import BlockedTable
from .bulk_tcf import TCF_SEQUENTIAL_BATCH_MAX, BulkTCF
from .config import (
    BULK_TCF_DEFAULT,
    EMPTY_SLOT,
    FIGURE5_CG_SIZES,
    FIGURE5_VARIANTS,
    GPU_CACHE_LINE_BYTES,
    POINT_TCF_DEFAULT,
    TOMBSTONE_SLOT,
    TCFConfig,
)
from .point_tcf import PointTCF

__all__ = [
    "BackingTable",
    "BlockedTable",
    "BulkTCF",
    "BULK_TCF_DEFAULT",
    "EMPTY_SLOT",
    "FIGURE5_CG_SIZES",
    "FIGURE5_VARIANTS",
    "GPU_CACHE_LINE_BYTES",
    "POINT_TCF_DEFAULT",
    "TOMBSTONE_SLOT",
    "TCFConfig",
    "TCF_SEQUENTIAL_BATCH_MAX",
    "PointTCF",
]
