"""Bulk (host-side, batched) API of the Two-Choice Filter.

The bulk TCF trades per-item latency for aggregate throughput (Section 4.2):

1. the incoming batch is **sorted** by destination block so that all keys for
   one block arrive together;
2. each block is staged in **shared memory**, merged with its existing
   (sorted) contents using a parallel zip, and written back to global memory
   as one **coalesced** cache-wide store;
3. blocks maintain their fingerprints in **sorted order**, so queries are a
   binary search (logarithmic per item, or linear for a batch).

Items whose primary block is full spill to their secondary block in a second
pass; the remaining handful go to the backing table, exactly as in the point
filter.  The default configuration uses 128-byte blocks of 64 16-bit slots,
which is why the bulk TCF needs ~33 % more space than the point filter for
the same false-positive rate (ε = 2B/2^f grows with the block size).

The hot paths are whole-batch NumPy operations over the table reshaped to
``(n_blocks, block_size)``: one sort + ``searchsorted`` routes the entire
batch, per-block free capacity comes from a vectorised fill count, spills are
split off *positionally* (so duplicate fingerprint words can never be
mis-attributed to the wrong key), and every touched block is rewritten with
one batched per-row sort and a single write-back.  Batches at or below
:data:`TCF_SEQUENTIAL_BATCH_MAX` keep the per-item code path, which is
cheaper than staging whole-table views for a handful of keys.  Simulated
hardware events are charged per touched block / per probe exactly as the
per-item path charges them, so throughput figures keep their meaning.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.kernel import (
    KernelContext,
    bulk_block_launch,
    bulk_tile_launch,
    point_launch,
)
from ...gpusim.sharedmem import SharedMemoryTile, account_batched_tiles
from ...gpusim.sorting import (
    device_lower_bound,
    device_sort_by_key,
    group_ranks,
    run_first_mask,
)
from ...gpusim.stats import StatsRecorder
from ...hashing import potc
from ..base import AbstractFilter, FilterCapabilities
from ..exceptions import FilterFullError, UnsupportedOperationError
from .backing import BackingTable
from .block import BlockedTable
from .config import BULK_TCF_DEFAULT, EMPTY_SLOT, TOMBSTONE_SLOT, TCFConfig
from .lifecycle import TCFLifecycle

#: Batches at or below this size route through the per-item code path; the
#: whole-table staging of the vectorised path only pays off beyond it (same
#: role as the bulk GQF's ``SEQUENTIAL_BATCH_MAX``).
TCF_SEQUENTIAL_BATCH_MAX = 32


class BulkTCF(TCFLifecycle, AbstractFilter):
    """Two-choice filter optimised for batched (bulk) operation.

    Parameters
    ----------
    n_slots:
        Requested number of main-table slots; rounded up to whole blocks.
    config:
        TCF configuration; defaults to the 16-bit / 64-slot bulk layout.
    recorder:
        Optional stats recorder.
    auto_resize:
        Keep a host-side key journal and double-and-rehash instead of
        raising :class:`FilterFullError` (see
        :mod:`repro.core.tcf.lifecycle`).
    auto_resize_at:
        Load factor triggering a pre-emptive grow (defaults to the config's
        ``max_load_factor``).
    """

    name = "Bulk TCF"

    def __init__(
        self,
        n_slots: int,
        config: TCFConfig = BULK_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
        auto_resize: bool = False,
        auto_resize_at: Optional[float] = None,
    ) -> None:
        super().__init__(recorder)
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.config = config
        n_blocks = max(2, (int(n_slots) + config.block_size - 1) // config.block_size)
        self.table = BlockedTable(n_blocks, config, self.recorder, name="bulk-tcf-table")
        n_backing_buckets = max(
            1,
            int(np.ceil(self.table.n_slots * config.backing_fraction / BackingTable.BUCKET_WIDTH)),
        )
        self.backing = BackingTable(
            n_backing_buckets, config, self.recorder, name="bulk-tcf-backing"
        )
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)
        self._init_lifecycle(auto_resize, auto_resize_at)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        config: TCFConfig = BULK_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
    ) -> "BulkTCF":
        n_slots = int(np.ceil(n_items / config.max_load_factor))
        return cls(n_slots, config, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=True,
            resizable=True,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, config: TCFConfig = BULK_TCF_DEFAULT) -> int:
        """Footprint for ``n_slots`` slots without building the filter."""
        main = (n_slots * config.packed_slot_bits + 7) // 8
        backing = int(np.ceil(n_slots * config.backing_fraction)) * 8
        return main + backing

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.table.n_slots * self.config.max_load_factor)

    @property
    def n_slots(self) -> int:
        return self.table.n_slots + self.backing.n_slots

    @property
    def nbytes(self) -> int:
        return self.table.nbytes + self.backing.nbytes

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.table.n_slots if self.table.n_slots else 0.0

    @property
    def recommended_load_factor(self) -> float:
        return self.config.max_load_factor

    @property
    def false_positive_rate(self) -> float:
        return self.config.false_positive_rate

    # --------------------------------------------------------------- internals
    def _derive_batch(self, keys: np.ndarray) -> potc.PotcHash:
        return potc.derive(
            keys.astype(np.uint64),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )

    def _pack_words(self, fingerprints: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Pack (fingerprint, value) pairs into slot words (slot dtype)."""
        vb = self.config.value_bits
        words = (
            (fingerprints.astype(np.uint64) << np.uint64(vb))
            | (values & np.uint64((1 << vb) - 1))
            if vb
            else fingerprints.astype(np.uint64)
        )
        return words.astype(self.config.slot_dtype)

    def _fingerprint_word_bounds(
        self, fingerprints: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Slot-word interval ``[lo, hi)`` covering a fingerprint's values."""
        vb = np.uint64(self.config.value_bits)
        fp = fingerprints.astype(np.uint64)
        return fp << vb, (fp + np.uint64(1)) << vb

    def _block_slice(self, block_idx: int) -> Tuple[int, int]:
        return self.table.block_bounds(block_idx)

    def _vectorisable(self, batch_size: int) -> bool:
        """Whether a batch takes the whole-batch path.

        Tiny batches keep the per-item code (staging whole-table views costs
        more than it saves), and tables whose (block, word) pairs cannot be
        packed into a 64-bit sort key fall back as well.
        """
        return (
            batch_size > TCF_SEQUENTIAL_BATCH_MAX
            and self.table.flat_key_shift is not None
        )

    def _sorted_block_merge(
        self, block_idx: int, new_words: np.ndarray
    ) -> np.ndarray:
        """Merge new slot words into a block, keeping it sorted.

        Returns the words that did **not** fit (overflow).  The merge happens
        in a shared-memory staging tile and is written back as one coalesced
        store, which is the key optimisation of the bulk TCF.
        """
        start, stop = self._block_slice(block_idx)
        with SharedMemoryTile(self.table.slots, start, stop, self.recorder) as tile:
            current = tile.view()
            live_mask = (current != EMPTY_SLOT) & (current != TOMBSTONE_SLOT)
            live = current[live_mask]
            free_slots = self.config.block_size - live.size
            accepted = new_words[:free_slots]
            overflow = new_words[free_slots:]
            merged = np.sort(np.concatenate([live, accepted]))
            padded = np.full(self.config.block_size, EMPTY_SLOT, dtype=current.dtype)
            padded[: merged.size] = merged
            tile.replace(np.sort(padded))
            self.recorder.add(instructions=self.config.block_size)
        return overflow

    # --------------------------------------------------------------- bulk insert
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Sorted, two-pass bulk insert.

        Pass 1 routes every item to its primary block; overflow from full
        blocks is re-routed in pass 2 to the secondary block; anything still
        left goes to the backing table.  Every placeable key is placed before
        anything is raised; a :class:`FilterFullError` fires only if the
        backing table also overflows — unless ``auto_resize=True``, in which
        case the filter grows and retries the unplaced remainder.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        if values is None:
            values = np.zeros(keys.size, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        self._maybe_grow()
        inserted = 0
        while True:
            placed = self._bulk_insert_masked(keys, values)
            self._journal_add_batch(keys[placed], values[placed])
            inserted += int(np.count_nonzero(placed))
            if placed.all():
                return inserted
            if not self._can_grow():
                raise FilterFullError(
                    "bulk TCF full: backing table overflowed during bulk insert",
                    n_items=self._n_items,
                    n_slots=self.table.n_slots,
                    load_factor=self.load_factor,
                    batch_offset=int(np.argmin(placed)),
                )
            self._grow()
            keys, values = keys[~placed], values[~placed]

    def bulk_insert_mask(
        self, keys: Sequence[int], values: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Graceful bulk insert: a per-key success mask instead of raising.

        Same placement passes as :meth:`bulk_insert` (including the
        ``auto_resize`` growth loop), but keys that do not fit once growth is
        exhausted come back False rather than surfacing a
        :class:`FilterFullError` — the partial-success entry point the
        bulk-job service builds its per-item reports on.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        if values is None:
            values = np.zeros(keys.size, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        self._maybe_grow()
        mask = np.zeros(keys.size, dtype=bool)
        todo = np.arange(keys.size)
        while todo.size:
            placed = self._bulk_insert_masked(keys[todo], values[todo])
            self._journal_add_batch(keys[todo][placed], values[todo][placed])
            mask[todo[placed]] = True
            todo = todo[~placed]
            if not todo.size or not self._can_grow():
                break
            self._grow()
        return mask

    def _bulk_insert_masked(self, keys: np.ndarray, values: np.ndarray) -> np.ndarray:
        """One whole-batch insert attempt at the current table geometry."""
        h = self._derive_batch(keys)
        words = self._pack_words(h.fingerprint, values)
        if not self._vectorisable(int(keys.size)):
            return self._bulk_insert_sequential(keys, values, h, words)
        return self._bulk_insert_vectorised(keys, values, h, words)

    def _merge_pass(
        self,
        words: np.ndarray,
        blocks: np.ndarray,
        positions: np.ndarray,
        kernel_name: str,
        scan_all_blocks: bool,
    ) -> np.ndarray:
        """One whole-batch merge pass; returns the spilled batch positions.

        ``blocks``/``positions`` are aligned subsets of the batch (candidate
        block and original batch index per item).  The batch is sorted by a
        combined ``(block, word)`` key, so items arrive at each block in
        ascending word order with ties in batch order — the same acceptance
        set as per-item sorted merges, with spills tracked *positionally*
        (never by word value, so duplicate words cannot be mis-attributed).
        """
        shift = np.uint64(self.table.flat_key_shift)
        sort_keys = (blocks.astype(np.uint64) << shift) + words.astype(np.uint64)
        _sorted_keys, perm = device_sort_by_key(
            sort_keys, np.arange(blocks.size), self.recorder
        )
        sorted_blocks = blocks[perm]
        if scan_all_blocks:
            # Successor search over every table block (one group per block).
            block_starts = device_lower_bound(
                _sorted_keys,
                np.arange(self.table.n_blocks, dtype=np.uint64) << shift,
                self.recorder,
            )
            counts_all = np.diff(np.append(block_starts, sorted_blocks.size))
            touched = np.flatnonzero(counts_all)
            starts = block_starts[touched]
            counts = counts_all[touched]
            launch = bulk_block_launch(self.table.n_blocks, self.config.cg_size)
        else:
            # sorted_blocks is sorted, so group boundaries are plain diffs
            # (np.unique would re-sort and lazily import numpy.ma).
            starts = np.flatnonzero(run_first_mask(sorted_blocks))
            touched = sorted_blocks[starts]
            counts = np.diff(np.append(starts, sorted_blocks.size))
            launch = bulk_tile_launch(int(touched.size), self.config.cg_size)

        with self.kernels.launch(kernel_name, launch):
            free = self.table.free_counts()[touched]
            rank = np.arange(sorted_blocks.size) - np.repeat(starts, counts)
            accept = rank < np.repeat(free, counts)
            n_accepted = np.minimum(counts, free)
            if accept.any():
                # Accepted words land in the leading free slots of their row
                # (rows are sorted ascending, so empties/tombstones lead) and
                # one batched per-row sort restores the block invariant.
                dest_blocks = np.repeat(touched, n_accepted)
                flat = dest_blocks * self.config.block_size + rank[accept]
                self.table.slots.peek()[flat] = words[perm[accept]]
            # Every touched block is staged, merged and written back, whether
            # or not any of its items fit (mirrors the per-item tile cycle).
            account_batched_tiles(
                self.table.slots,
                int(touched.size),
                self.config.block_size,
                self.recorder,
                rewritten=True,
                instructions_per_tile=self.config.block_size,
            )
            self.table.resort_rows(touched[n_accepted > 0])
        return positions[perm[~accept]]

    def _bulk_insert_vectorised(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        h: potc.PotcHash,
        words: np.ndarray,
    ) -> np.ndarray:
        positions = np.arange(keys.size)
        placed_mask = np.ones(keys.size, dtype=bool)
        spilled = self._merge_pass(
            words, h.primary, positions, "bulk_tcf_insert_pass1", scan_all_blocks=True
        )
        inserted = keys.size - spilled.size
        if spilled.size:
            leftovers = self._merge_pass(
                words[spilled],
                h.secondary[spilled],
                spilled,
                "bulk_tcf_insert_pass2",
                scan_all_blocks=False,
            )
            inserted += spilled.size - leftovers.size
            spilled = leftovers
        if spilled.size:
            placed = self.backing.bulk_insert(keys[spilled], values[spilled])
            inserted += int(np.count_nonzero(placed))
            placed_mask[spilled[~placed]] = False
        self._n_items += inserted
        return placed_mask

    def _bulk_insert_sequential(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        h: potc.PotcHash,
        words: np.ndarray,
    ) -> np.ndarray:
        """Per-item two-pass insert (small batches and point wrappers)."""
        inserted = 0
        placed_mask = np.ones(keys.size, dtype=bool)
        # ---- pass 1: primary blocks --------------------------------------
        order_keys, order_idx = device_sort_by_key(
            h.primary.astype(np.int64), np.arange(keys.size), self.recorder
        )
        overflow_positions: List[np.ndarray] = []
        block_starts = device_lower_bound(
            order_keys, np.arange(self.table.n_blocks), self.recorder
        )
        with self.kernels.launch(
            "bulk_tcf_insert_pass1",
            bulk_block_launch(self.table.n_blocks, self.config.cg_size),
        ):
            for block_idx in range(self.table.n_blocks):
                lo = int(block_starts[block_idx])
                if block_idx + 1 < self.table.n_blocks:
                    hi = int(block_starts[block_idx + 1])
                else:
                    hi = order_keys.size
                if lo >= hi:
                    continue
                idx = order_idx[lo:hi]
                # Stable word sort keeps batch order among equal words, so the
                # spilled tail maps back to the right original items even when
                # the batch contains duplicate fingerprint words.
                idx_sorted = idx[np.argsort(words[idx], kind="stable")]
                new_words = words[idx_sorted]
                spill = self._sorted_block_merge(block_idx, new_words)
                n_in = new_words.size - spill.size
                inserted += n_in
                if spill.size:
                    overflow_positions.append(idx_sorted[n_in:])

        # ---- pass 2: secondary blocks -------------------------------------
        leftovers = np.array([], dtype=np.int64)
        if overflow_positions:
            o_positions = np.concatenate(overflow_positions)
            sort_sec, sort_idx = device_sort_by_key(
                h.secondary[o_positions].astype(np.int64),
                np.arange(o_positions.size),
                self.recorder,
            )
            still: List[np.ndarray] = []
            sec_blocks = sort_sec[run_first_mask(sort_sec)]
            with self.kernels.launch(
                "bulk_tcf_insert_pass2",
                bulk_tile_launch(len(sec_blocks), self.config.cg_size),
            ):
                for block_idx in sec_blocks:
                    sel = o_positions[sort_idx[sort_sec == block_idx]]
                    sel_sorted = sel[np.argsort(words[sel], kind="stable")]
                    new_words = words[sel_sorted]
                    spill = self._sorted_block_merge(int(block_idx), new_words)
                    n_in = new_words.size - spill.size
                    inserted += n_in
                    if spill.size:
                        still.append(sel_sorted[n_in:])
            if still:
                leftovers = np.concatenate(still)

        # ---- pass 3: backing table ------------------------------------------
        for pos in leftovers:
            if self.backing.insert(int(keys[pos]), int(values[pos])):
                inserted += 1
            else:
                placed_mask[int(pos)] = False

        self._n_items += inserted
        return placed_mask

    # ---------------------------------------------------------------- bulk query
    def _search_block(self, block_idx: int, fingerprint: int) -> Optional[int]:
        """Binary-search a sorted block for a fingerprint; return value or None."""
        block = self.table.load_block(block_idx)
        vb = self.config.value_bits
        self.recorder.add(instructions=int(np.log2(max(2, self.config.block_size))))
        if vb:
            lo = np.searchsorted(block, np.uint64(fingerprint) << np.uint64(vb), side="left")
            hi = np.searchsorted(
                block, (np.uint64(fingerprint) + np.uint64(1)) << np.uint64(vb), side="left"
            )
            if hi > lo:
                return int(block[lo]) & ((1 << vb) - 1)
            return None
        pos = np.searchsorted(block, fingerprint, side="left")
        if pos < block.size and int(block[pos]) == int(fingerprint):
            return 0
        return None

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        """Query a batch of keys (binary search in up to two blocks + backing)."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return out
        h = self._derive_batch(keys)
        with self.kernels.launch(
            "bulk_tcf_query", point_launch(keys.size, self.config.cg_size)
        ):
            if not self._vectorisable(int(keys.size)):
                for i in range(keys.size):
                    fp = int(h.fingerprint[i])
                    if self._search_block(int(h.primary[i]), fp) is not None:
                        out[i] = True
                    elif self._search_block(int(h.secondary[i]), fp) is not None:
                        out[i] = True
                    else:
                        out[i] = self.backing.contains(int(keys[i]))
                return out

            search_instr = int(np.log2(max(2, self.config.block_size)))
            lo_w, hi_w = self._fingerprint_word_bounds(h.fingerprint)
            data = self.table.slots.peek()
            block_size = self.config.block_size

            def probe(blocks: np.ndarray, sel: np.ndarray) -> np.ndarray:
                # Batched in-row binary search: a fingerprint is present iff
                # the successor of its word range's lower bound falls inside
                # the range (one staged line + log2(B) steps per probe).
                pos = self.table.row_lower_bound(blocks, lo_w[sel])
                successor_idx = np.minimum(
                    blocks.astype(np.int64) * block_size + pos, data.size - 1
                )
                found = (pos < block_size) & (
                    data[successor_idx].astype(np.uint64) < hi_w[sel]
                )
                self.recorder.add(
                    cache_line_reads=int(sel.size),
                    instructions=search_instr * int(sel.size),
                )
                return found

            every = np.arange(keys.size)
            hit = probe(h.primary, every)
            out[hit] = True
            miss = np.flatnonzero(~hit)
            if miss.size:
                hit2 = probe(h.secondary[miss], miss)
                out[miss[hit2]] = True
                still = miss[~hit2]
                if still.size:
                    out[still] = self.backing.bulk_contains(keys[still])
        return out

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        """Point insert (single-item bulk merge)."""
        return (
            self.bulk_insert(np.array([key], dtype=np.uint64), np.array([value], dtype=np.uint64))
            == 1
        )

    def query(self, key: int) -> bool:
        return bool(self.bulk_query(np.array([key], dtype=np.uint64))[0])

    def get_value(self, key: int) -> Optional[int]:
        h = self._derive_batch(np.array([key], dtype=np.uint64))
        fp = int(h.fingerprint[0])
        for block_idx in (int(h.primary[0]), int(h.secondary[0])):
            value = self._search_block(block_idx, fp)
            if value is not None:
                return value
        return self.backing.query(int(key))

    def delete(self, key: int) -> bool:
        """Delete one occurrence of ``key`` and recompact the block."""
        h = self._derive_batch(np.array([key], dtype=np.uint64))
        fp = int(h.fingerprint[0])
        vb = self.config.value_bits
        for block_idx in (int(h.primary[0]), int(h.secondary[0])):
            start, stop = self._block_slice(block_idx)
            with SharedMemoryTile(self.table.slots, start, stop, self.recorder) as tile:
                block = tile.view()
                fps = (block >> vb) if vb else block
                matches = np.flatnonzero(
                    (fps == fp) & (block != EMPTY_SLOT) & (block != TOMBSTONE_SLOT)
                )
                if matches.size:
                    kept = np.delete(block, matches[0])
                    new_block = np.concatenate(
                        [kept, np.array([EMPTY_SLOT], dtype=block.dtype)]
                    )
                    tile.replace(np.sort(new_block))
                    self._n_items -= 1
                    self._journal_remove(int(key))
                    return True
        if self.backing.delete(int(key)):
            self._n_items -= 1
            self._journal_remove(int(key))
            return True
        return False

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the TCF does not support counting")

    def bulk_delete(self, keys: Sequence[int]) -> int:
        """Delete one stored occurrence per requested key (batched).

        The vectorised path resolves the whole batch against the primary
        blocks (batched binary search + positional ranking, so duplicate
        requests consume distinct stored copies), retries the misses against
        the secondary blocks, and hands what is left to the backing table.

        Like the real GPU kernel, the batch is *unordered*: requests resolve
        pass by pass (all primaries, then all secondaries, then backing), not
        in strict batch order.  When distinct keys collide on a fingerprint
        *and* one key's primary block is another's secondary, which stored
        copy gets consumed can therefore differ from per-item deletion order
        — the same which-copy ambiguity fingerprint filters already have for
        colliding deletes, not a new hazard.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        if not self._vectorisable(int(keys.size)):
            removed = 0
            with self.kernels.launch(
                "bulk_tcf_delete", point_launch(keys.size, self.config.cg_size)
            ):
                for key in keys:
                    if self.delete(int(key)):
                        removed += 1
            return removed

        h = self._derive_batch(keys)
        shift = np.uint64(self.table.flat_key_shift)
        lo_w, hi_w = self._fingerprint_word_bounds(h.fingerprint)
        block_size = self.config.block_size
        data = self.table.slots.peek()
        removed = 0
        with self.kernels.launch(
            "bulk_tcf_delete", point_launch(keys.size, self.config.cg_size)
        ):
            pending = np.arange(keys.size)
            for candidates in (h.primary, h.secondary):
                if pending.size == 0:
                    break
                flat = self.table.flat_sorted_keys()
                base = candidates[pending].astype(np.uint64) << shift
                probe_lo = base + lo_w[pending]
                lo = np.searchsorted(flat, probe_lo)
                hi = np.searchsorted(flat, base + hi_w[pending])
                n_avail = hi - lo
                # Rank duplicate (block, fingerprint) requests in batch order
                # so each consumes a distinct stored slot.
                order = np.argsort(probe_lo, kind="stable")
                rank = group_ranks(probe_lo[order])
                take = rank < n_avail[order]
                # Each request stages its candidate block (read + one pass).
                account_batched_tiles(
                    self.table.slots,
                    int(pending.size),
                    block_size,
                    self.recorder,
                    rewritten=False,
                )
                hits = order[take]
                if hits.size:
                    slot_flat = lo[hits] + rank[take]
                    data[slot_flat] = EMPTY_SLOT
                    # slot_flat ascends (probes were rank-ordered), so the
                    # touched blocks dedupe with a plain first-occurrence flag.
                    blocks_mod = slot_flat // block_size
                    self.table.resort_rows(blocks_mod[run_first_mask(blocks_mod)])
                    # Hits recompact and write their block back (per request,
                    # as the per-item path re-stages the block every time).
                    self.recorder.add(
                        shared_memory_accesses=block_size * int(hits.size),
                        cache_line_writes=int(hits.size),
                    )
                    removed += int(hits.size)
                    self._journal_remove_batch(keys[pending[hits]])
                pending = pending[order[~take]]
            if pending.size:
                backing_removed = self.backing.bulk_delete(keys[pending])
                removed += int(np.count_nonzero(backing_removed))
                self._journal_remove_batch(keys[pending[backing_removed]])
        self._n_items -= removed
        return removed

    # ---------------------------------------------------------------- analysis
    def block_fills(self) -> np.ndarray:
        return self.table.fills()

    def active_threads_for(self, n_ops: int) -> int:
        """Bulk kernels map one cooperative group per block."""
        return self.table.n_blocks * self.config.cg_size
