"""Bulk (host-side, batched) API of the Two-Choice Filter.

The bulk TCF trades per-item latency for aggregate throughput (Section 4.2):

1. the incoming batch is **sorted** by destination block so that all keys for
   one block arrive together;
2. each block is staged in **shared memory**, merged with its existing
   (sorted) contents using a parallel zip, and written back to global memory
   as one **coalesced** cache-wide store;
3. blocks maintain their fingerprints in **sorted order**, so queries are a
   binary search (logarithmic per item, or linear for a batch).

Items whose primary block is full spill to their secondary block in a second
pass; the remaining handful go to the backing table, exactly as in the point
filter.  The default configuration uses 128-byte blocks of 64 16-bit slots,
which is why the bulk TCF needs ~33 % more space than the point filter for
the same false-positive rate (ε = 2B/2^f grows with the block size).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.kernel import KernelContext, bulk_block_launch, point_launch
from ...gpusim.sharedmem import SharedMemoryTile
from ...gpusim.sorting import device_lower_bound, device_sort_by_key
from ...gpusim.stats import StatsRecorder
from ...hashing import potc
from ..base import AbstractFilter, FilterCapabilities
from ..exceptions import FilterFullError, UnsupportedOperationError
from .backing import BackingTable
from .block import BlockedTable
from .config import BULK_TCF_DEFAULT, EMPTY_SLOT, TOMBSTONE_SLOT, TCFConfig


class BulkTCF(AbstractFilter):
    """Two-choice filter optimised for batched (bulk) operation.

    Parameters
    ----------
    n_slots:
        Requested number of main-table slots; rounded up to whole blocks.
    config:
        TCF configuration; defaults to the 16-bit / 64-slot bulk layout.
    recorder:
        Optional stats recorder.
    """

    name = "Bulk TCF"

    def __init__(
        self,
        n_slots: int,
        config: TCFConfig = BULK_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        self.config = config
        n_blocks = max(2, (int(n_slots) + config.block_size - 1) // config.block_size)
        self.table = BlockedTable(n_blocks, config, self.recorder, name="bulk-tcf-table")
        n_backing_buckets = max(
            1,
            int(np.ceil(self.table.n_slots * config.backing_fraction / BackingTable.BUCKET_WIDTH)),
        )
        self.backing = BackingTable(n_backing_buckets, config, self.recorder, name="bulk-tcf-backing")
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        config: TCFConfig = BULK_TCF_DEFAULT,
        recorder: Optional[StatsRecorder] = None,
    ) -> "BulkTCF":
        n_slots = int(np.ceil(n_items / config.max_load_factor))
        return cls(n_slots, config, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=True,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, config: TCFConfig = BULK_TCF_DEFAULT) -> int:
        """Footprint for ``n_slots`` slots without building the filter."""
        main = (n_slots * config.packed_slot_bits + 7) // 8
        backing = int(np.ceil(n_slots * config.backing_fraction)) * 8
        return main + backing

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.table.n_slots * self.config.max_load_factor)

    @property
    def n_slots(self) -> int:
        return self.table.n_slots + self.backing.n_slots

    @property
    def nbytes(self) -> int:
        return self.table.nbytes + self.backing.nbytes

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.table.n_slots if self.table.n_slots else 0.0

    @property
    def recommended_load_factor(self) -> float:
        return self.config.max_load_factor

    @property
    def false_positive_rate(self) -> float:
        return self.config.false_positive_rate

    # --------------------------------------------------------------- internals
    def _derive_batch(self, keys: np.ndarray) -> potc.PotcHash:
        return potc.derive(
            keys.astype(np.uint64),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )

    def _block_slice(self, block_idx: int) -> Tuple[int, int]:
        return self.table.block_bounds(block_idx)

    def _sorted_block_merge(
        self, block_idx: int, new_words: np.ndarray
    ) -> np.ndarray:
        """Merge new slot words into a block, keeping it sorted.

        Returns the words that did **not** fit (overflow).  The merge happens
        in a shared-memory staging tile and is written back as one coalesced
        store, which is the key optimisation of the bulk TCF.
        """
        start, stop = self._block_slice(block_idx)
        with SharedMemoryTile(self.table.slots, start, stop, self.recorder) as tile:
            current = tile.view()
            live_mask = (current != EMPTY_SLOT) & (current != TOMBSTONE_SLOT)
            live = current[live_mask]
            free_slots = self.config.block_size - live.size
            accepted = new_words[:free_slots]
            overflow = new_words[free_slots:]
            merged = np.sort(np.concatenate([live, accepted]))
            padded = np.full(self.config.block_size, EMPTY_SLOT, dtype=current.dtype)
            # Keep sorted fingerprints at the front, empties at the back; the
            # whole block remains ascending because EMPTY sorts below any
            # valid fingerprint only if placed first, so store fingerprints
            # first and rely on the query path to ignore empties.
            padded[: merged.size] = merged
            tile.replace(np.sort(padded))
            self.recorder.add(instructions=self.config.block_size)
        return overflow

    # --------------------------------------------------------------- bulk insert
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Sorted, two-pass bulk insert.

        Pass 1 routes every item to its primary block; overflow from full
        blocks is re-routed in pass 2 to the secondary block; anything still
        left goes to the backing table.  Raises :class:`FilterFullError` only
        if the backing table also overflows.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        if values is None:
            values = np.zeros(keys.size, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        h = self._derive_batch(keys)
        vb = self.config.value_bits
        words = (
            (h.fingerprint.astype(np.uint64) << np.uint64(vb)) | (values & np.uint64((1 << vb) - 1))
            if vb
            else h.fingerprint.astype(np.uint64)
        ).astype(self.config.slot_dtype)

        inserted = 0
        # ---- pass 1: primary blocks --------------------------------------
        order_keys, order_idx = device_sort_by_key(
            h.primary.astype(np.int64), np.arange(keys.size), self.recorder
        )
        overflow_words: List[np.ndarray] = []
        overflow_secondary: List[np.ndarray] = []
        overflow_keys: List[np.ndarray] = []
        overflow_values: List[np.ndarray] = []
        block_starts = device_lower_bound(
            order_keys, np.arange(self.table.n_blocks), self.recorder
        )
        with self.kernels.launch(
            "bulk_tcf_insert_pass1",
            bulk_block_launch(self.table.n_blocks, self.config.cg_size),
        ):
            for block_idx in range(self.table.n_blocks):
                lo = int(block_starts[block_idx])
                hi = int(block_starts[block_idx + 1]) if block_idx + 1 < self.table.n_blocks else order_keys.size
                if lo >= hi:
                    continue
                idx = order_idx[lo:hi]
                new_words = np.sort(words[idx])
                spill = self._sorted_block_merge(block_idx, new_words)
                n_in = new_words.size - spill.size
                inserted += n_in
                if spill.size:
                    # Recover which original items spilled (by word value) so
                    # the second pass can route them to their secondary block.
                    spilled_mask = np.isin(words[idx], spill)
                    # isin may over-select duplicates; trim to the spill count.
                    spilled_positions = idx[spilled_mask][: spill.size]
                    overflow_words.append(words[spilled_positions])
                    overflow_secondary.append(h.secondary[spilled_positions])
                    overflow_keys.append(keys[spilled_positions])
                    overflow_values.append(values[spilled_positions])

        # ---- pass 2: secondary blocks -------------------------------------
        leftovers_keys = np.array([], dtype=np.uint64)
        leftovers_values = np.array([], dtype=np.uint64)
        if overflow_words:
            o_words = np.concatenate(overflow_words)
            o_secondary = np.concatenate(overflow_secondary).astype(np.int64)
            o_keys = np.concatenate(overflow_keys)
            o_values = np.concatenate(overflow_values)
            sort_sec, sort_idx = device_sort_by_key(
                o_secondary, np.arange(o_words.size), self.recorder
            )
            still_keys: List[np.ndarray] = []
            still_values: List[np.ndarray] = []
            with self.kernels.launch(
                "bulk_tcf_insert_pass2",
                bulk_block_launch(max(1, len(np.unique(sort_sec))), self.config.cg_size),
            ):
                for block_idx in np.unique(sort_sec):
                    sel = sort_idx[sort_sec == block_idx]
                    new_words = np.sort(o_words[sel])
                    spill = self._sorted_block_merge(int(block_idx), new_words)
                    n_in = new_words.size - spill.size
                    inserted += n_in
                    if spill.size:
                        spilled_mask = np.isin(o_words[sel], spill)
                        spilled_positions = sel[spilled_mask][: spill.size]
                        still_keys.append(o_keys[spilled_positions])
                        still_values.append(o_values[spilled_positions])
            if still_keys:
                leftovers_keys = np.concatenate(still_keys)
                leftovers_values = np.concatenate(still_values)

        # ---- pass 3: backing table ------------------------------------------
        for key, value in zip(leftovers_keys, leftovers_values):
            if not self.backing.insert(int(key), int(value)):
                self._n_items += inserted
                raise FilterFullError(
                    "bulk TCF full: backing table overflowed during bulk insert"
                )
            inserted += 1

        self._n_items += inserted
        return inserted

    # ---------------------------------------------------------------- bulk query
    def _search_block(self, block_idx: int, fingerprint: int) -> Optional[int]:
        """Binary-search a sorted block for a fingerprint; return value or None."""
        block = self.table.load_block(block_idx)
        vb = self.config.value_bits
        self.recorder.add(instructions=int(np.log2(max(2, self.config.block_size))))
        if vb:
            lo = np.searchsorted(block, np.uint64(fingerprint) << np.uint64(vb), side="left")
            hi = np.searchsorted(block, (np.uint64(fingerprint) + np.uint64(1)) << np.uint64(vb), side="left")
            if hi > lo:
                return int(block[lo]) & ((1 << vb) - 1)
            return None
        pos = np.searchsorted(block, fingerprint, side="left")
        if pos < block.size and int(block[pos]) == int(fingerprint):
            return 0
        return None

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        """Query a batch of keys (binary search in up to two blocks + backing)."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return out
        h = self._derive_batch(keys)
        with self.kernels.launch(
            "bulk_tcf_query", point_launch(keys.size, self.config.cg_size)
        ):
            for i in range(keys.size):
                fp = int(h.fingerprint[i])
                if self._search_block(int(h.primary[i]), fp) is not None:
                    out[i] = True
                elif self._search_block(int(h.secondary[i]), fp) is not None:
                    out[i] = True
                else:
                    out[i] = self.backing.contains(int(keys[i]))
        return out

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        """Point insert (single-item bulk merge)."""
        return self.bulk_insert(np.array([key], dtype=np.uint64), np.array([value], dtype=np.uint64)) == 1

    def query(self, key: int) -> bool:
        return bool(self.bulk_query(np.array([key], dtype=np.uint64))[0])

    def get_value(self, key: int) -> Optional[int]:
        h = self._derive_batch(np.array([key], dtype=np.uint64))
        fp = int(h.fingerprint[0])
        for block_idx in (int(h.primary[0]), int(h.secondary[0])):
            value = self._search_block(block_idx, fp)
            if value is not None:
                return value
        return self.backing.query(int(key))

    def delete(self, key: int) -> bool:
        """Delete one occurrence of ``key`` and recompact the block."""
        h = self._derive_batch(np.array([key], dtype=np.uint64))
        fp = int(h.fingerprint[0])
        vb = self.config.value_bits
        for block_idx in (int(h.primary[0]), int(h.secondary[0])):
            start, stop = self._block_slice(block_idx)
            with SharedMemoryTile(self.table.slots, start, stop, self.recorder) as tile:
                block = tile.view()
                fps = (block >> vb) if vb else block
                matches = np.flatnonzero(
                    (fps == fp) & (block != EMPTY_SLOT) & (block != TOMBSTONE_SLOT)
                )
                if matches.size:
                    kept = np.delete(block, matches[0])
                    new_block = np.concatenate(
                        [kept, np.array([EMPTY_SLOT], dtype=block.dtype)]
                    )
                    tile.replace(np.sort(new_block))
                    self._n_items -= 1
                    return True
        if self.backing.delete(int(key)):
            self._n_items -= 1
            return True
        return False

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the TCF does not support counting")

    def bulk_delete(self, keys: Sequence[int]) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        removed = 0
        with self.kernels.launch(
            "bulk_tcf_delete", point_launch(keys.size, self.config.cg_size)
        ):
            for key in keys:
                if self.delete(int(key)):
                    removed += 1
        return removed

    # ---------------------------------------------------------------- analysis
    def block_fills(self) -> np.ndarray:
        return self.table.fills()

    def active_threads_for(self, n_ops: int) -> int:
        """Bulk kernels map one cooperative group per block."""
        return self.table.n_blocks * self.config.cg_size
