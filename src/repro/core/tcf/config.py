"""TCF configuration: fingerprint width, block size, cooperative-group size.

The paper's Section 4.1 identifies three factors dominating TCF performance:
the block size (cache-line accesses per operation), the bits per item
(fingerprint width, which also sets the false-positive rate
:math:`\\varepsilon = 2B / 2^f`), and the cooperative-group size (the
compute/memory balance swept in Figure 5).

Figure 5 labels variants ``f-B`` where ``f`` is the fingerprint size in bits
and ``B`` the block size in slots; :data:`FIGURE5_VARIANTS` lists them all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

#: Slot value reserved for an empty slot.
EMPTY_SLOT = 0
#: Slot value reserved for a deleted (tombstoned) slot.
TOMBSTONE_SLOT = 1

#: GPU cache line in bytes; a TCF block must not exceed one line.
GPU_CACHE_LINE_BYTES = 128

#: Minimum width of an atomicCAS transaction in bits (2 bytes on NVIDIA GPUs).
MIN_CAS_BITS = 16


@dataclass(frozen=True)
class TCFConfig:
    """Static configuration of a two-choice filter.

    Attributes
    ----------
    fingerprint_bits:
        Width of the stored fingerprint (8, 12 or 16 in the paper's sweep).
    block_size:
        Slots per block.  Blocks are sized to fit within one 128-byte cache
        line; the point filter defaults to 16 slots, the bulk filter to 64.
    cg_size:
        Cooperative-group size used for block operations (1..32; the paper
        finds 4 optimal for most variants).
    value_bits:
        Optional small value stored alongside the fingerprint (packed into
        the same slot word).  0 disables value association.
    shortcut_fill:
        Primary-block fill ratio below which the secondary block is not even
        probed (the "shortcut optimisation"; 0.75 in the paper).
    backing_fraction:
        Size of the backing table relative to the main table (1/100 in the
        paper).
    max_load_factor:
        Recommended maximum load factor (0.9 with the backing table).
    """

    fingerprint_bits: int = 16
    block_size: int = 16
    cg_size: int = 4
    value_bits: int = 0
    shortcut_fill: float = 0.75
    backing_fraction: float = 0.01
    max_load_factor: float = 0.9

    def __post_init__(self) -> None:
        if not 4 <= self.fingerprint_bits <= 32:
            raise ValueError("fingerprint_bits must be in [4, 32]")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.cg_size not in (1, 2, 4, 8, 16, 32):
            raise ValueError("cg_size must be a power of two in [1, 32]")
        if self.value_bits < 0 or self.fingerprint_bits + self.value_bits > 64:
            raise ValueError("value_bits out of range")
        if not 0.0 <= self.shortcut_fill <= 1.0:
            raise ValueError("shortcut_fill must be in [0, 1]")
        if not 0.0 < self.backing_fraction < 1.0:
            raise ValueError("backing_fraction must be in (0, 1)")
        if not 0.0 < self.max_load_factor <= 1.0:
            raise ValueError("max_load_factor must be in (0, 1]")
        if self.block_bytes > GPU_CACHE_LINE_BYTES:
            raise ValueError(
                f"block of {self.block_size} x {self.slot_bits}-bit slots "
                f"({self.block_bytes} B) exceeds the {GPU_CACHE_LINE_BYTES}-byte cache line"
            )

    # ----------------------------------------------------------------- sizes
    @property
    def slot_bits(self) -> int:
        """Width of the stored slot word (fingerprint + value), in bits.

        Slots are rounded up to the minimum atomicCAS transaction width
        (16 bits); 12-bit fingerprints therefore share a CAS word with bits
        of the neighbouring slot, which is the source of the extra CAS
        retries the paper describes (and Figure 5 measures).
        """
        return max(MIN_CAS_BITS, self.fingerprint_bits + self.value_bits)

    @property
    def packed_slot_bits(self) -> int:
        """Width of the slot as actually packed in memory (space accounting)."""
        return self.fingerprint_bits + self.value_bits

    @property
    def slot_dtype(self) -> np.dtype:
        """NumPy dtype wide enough to hold one slot word."""
        bits = self.slot_bits
        if bits <= 16:
            return np.dtype(np.uint16)
        if bits <= 32:
            return np.dtype(np.uint32)
        return np.dtype(np.uint64)

    @property
    def block_bytes(self) -> int:
        """Bytes of one block as packed in memory."""
        return (self.block_size * self.packed_slot_bits + 7) // 8

    @property
    def cas_spans_slots(self) -> bool:
        """True when a CAS word covers bits of more than one packed slot.

        This is the 12-bit-fingerprint situation: ~50 % of inserts need two
        atomic operations and a CAS can fail due to changes outside the slot
        being written.
        """
        return self.packed_slot_bits < MIN_CAS_BITS or self.packed_slot_bits % MIN_CAS_BITS != 0

    # ------------------------------------------------------------- accuracy
    @property
    def false_positive_rate(self) -> float:
        """Analytical FP rate: 2B / 2^f (two blocks of B slots probed)."""
        return 2.0 * self.block_size / float(1 << self.fingerprint_bits)

    @property
    def label(self) -> str:
        """Figure-5-style label ``"<fingerprint_bits>-<block_size>"``."""
        return f"{self.fingerprint_bits}-{self.block_size}"

    def with_cg_size(self, cg_size: int) -> "TCFConfig":
        """Return a copy with a different cooperative-group size."""
        return replace(self, cg_size=cg_size)


#: The point-TCF configuration used in the main comparison (16-bit slots,
#: 16-slot blocks): the smallest word-aligned variant near the 0.1 % target.
POINT_TCF_DEFAULT = TCFConfig(fingerprint_bits=16, block_size=16, cg_size=4)

#: The bulk-TCF configuration: 128-byte blocks of 64 x 16-bit slots.
BULK_TCF_DEFAULT = TCFConfig(
    fingerprint_bits=16, block_size=64, cg_size=32, max_load_factor=0.9
)

#: The variants swept in Figure 5 ("fingerprint_bits-block_size").
FIGURE5_VARIANTS: Dict[str, TCFConfig] = {
    "8-8": TCFConfig(fingerprint_bits=8, block_size=8),
    "12-8": TCFConfig(fingerprint_bits=12, block_size=8),
    "12-12": TCFConfig(fingerprint_bits=12, block_size=12),
    "12-16": TCFConfig(fingerprint_bits=12, block_size=16),
    "12-32": TCFConfig(fingerprint_bits=12, block_size=32),
    "16-16": TCFConfig(fingerprint_bits=16, block_size=16),
    "16-32": TCFConfig(fingerprint_bits=16, block_size=32),
}

#: Cooperative-group sizes swept in Figure 5.
FIGURE5_CG_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
