"""Cooperative-group block operations for the TCF (paper Algorithm 1).

A TCF table is an array of fixed-size blocks, each sized to fit within one
GPU cache line.  All point operations are performed by a cooperative group
that strides over the block, ballots on which lanes found a match / empty
slot, elects a leader with ``__ffs`` and lets the leader attempt an
``atomicCAS``.  On CAS failure the group re-ballots among the remaining
candidates, exactly as Algorithm 1 describes.

:class:`BlockedTable` owns the slot array (a
:class:`~repro.gpusim.memory.DeviceArray`, so every access is accounted as
cache-line traffic) and implements the block-level insert / query / delete /
fill primitives that :class:`~repro.core.tcf.point_tcf.PointTCF` composes
with power-of-two-choice hashing.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ...gpusim.atomics import atomic_cas
from ...gpusim.memory import DeviceArray
from ...gpusim.stats import StatsRecorder
from ...gpusim.warp import CooperativeGroup
from .config import EMPTY_SLOT, TOMBSTONE_SLOT, TCFConfig


class BlockedTable:
    """A table of cache-line-sized blocks of fingerprint slots.

    Parameters
    ----------
    n_blocks:
        Number of blocks.
    config:
        The TCF configuration (block size, fingerprint width, CG size).
    recorder:
        Stats recorder shared with the owning filter.
    name:
        Label used for the underlying device allocation.
    """

    def __init__(
        self,
        n_blocks: int,
        config: TCFConfig,
        recorder: StatsRecorder,
        name: str = "tcf-table",
    ) -> None:
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        self.n_blocks = int(n_blocks)
        self.config = config
        self.recorder = recorder
        self.slots = DeviceArray(
            self.n_blocks * config.block_size,
            config.slot_dtype,
            recorder,
            fill=EMPTY_SLOT,
            name=name,
        )
        self._cg = CooperativeGroup(config.cg_size, recorder)
        self._flat_base: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ sizes
    @property
    def n_slots(self) -> int:
        return self.n_blocks * self.config.block_size

    @property
    def nbytes(self) -> int:
        """Packed size of the table in bytes (space-accounting view)."""
        return (self.n_slots * self.config.packed_slot_bits + 7) // 8

    def block_bounds(self, block_idx: int) -> Tuple[int, int]:
        """Return the ``[start, stop)`` slot range of a block."""
        if not 0 <= block_idx < self.n_blocks:
            raise IndexError(f"block {block_idx} out of range")
        start = block_idx * self.config.block_size
        return start, start + self.config.block_size

    # --------------------------------------------------------------- slot pack
    def pack(self, fingerprint: int, value: int = 0) -> int:
        """Pack a fingerprint and value into one slot word."""
        vb = self.config.value_bits
        word = (int(fingerprint) << vb) | (int(value) & ((1 << vb) - 1) if vb else 0)
        return word

    def unpack(self, word: int) -> Tuple[int, int]:
        """Split a slot word into (fingerprint, value)."""
        vb = self.config.value_bits
        word = int(word)
        if vb == 0:
            return word, 0
        return word >> vb, word & ((1 << vb) - 1)

    # ------------------------------------------------------------------- fill
    def load_block(self, block_idx: int) -> np.ndarray:
        """Cooperatively load a block (one coalesced cache-line read)."""
        start, stop = self.block_bounds(block_idx)
        return self.slots.read_range(start, stop)

    def block_fill(self, block_idx: int, block: Optional[np.ndarray] = None) -> int:
        """Number of live (non-empty, non-tombstone) slots in a block."""
        if block is None:
            block = self.load_block(block_idx)
        self.recorder.add(instructions=self.config.block_size // max(1, self.config.cg_size) + 1)
        return int(np.count_nonzero((block != EMPTY_SLOT) & (block != TOMBSTONE_SLOT)))

    def block_free(self, block_idx: int, block: Optional[np.ndarray] = None) -> int:
        """Number of insertable (empty or tombstoned) slots in a block."""
        if block is None:
            block = self.load_block(block_idx)
        return int(np.count_nonzero((block == EMPTY_SLOT) | (block == TOMBSTONE_SLOT)))

    # ------------------------------------------------------------------ insert
    def insert(
        self,
        block_idx: int,
        fingerprint: int,
        value: int = 0,
        block: Optional[np.ndarray] = None,
    ) -> bool:
        """Algorithm 1: cooperative-group insert of a fingerprint into a block.

        Returns True on success, False when the block has no free slot.
        The group strides over the block, ballots for lanes that saw an
        empty/tombstone slot, elects a leader and CASes the packed word in;
        on CAS failure the group retries with the next candidate slot.

        ``block`` may carry an already-loaded copy of the block (the caller
        read it to check the fill), in which case no additional cache-line
        read is charged — mirroring the real kernel, which keeps the block in
        registers/shared memory between the fill check and the insert.
        """
        cg = self._cg
        start, stop = self.block_bounds(block_idx)
        word = self.pack(fingerprint, value)
        if block is None:
            block = self.load_block(block_idx)
        else:
            block = np.array(block, copy=True)
        if self.config.cas_spans_slots:
            # A 12-bit slot does not fill the 16-bit CAS word; roughly half
            # the inserts need a second atomic and may retry due to
            # neighbouring-slot writes. Model that extra atomic here.
            self.recorder.add(atomic_ops=1)
        for lane_indices in cg.strided_indices(0, self.config.block_size):
            lane_values = block[lane_indices]
            votes = (lane_values == EMPTY_SLOT) | (lane_values == TOMBSTONE_SLOT)
            ballot = cg.ballot(votes)
            while ballot:
                leader = cg.elect_leader(ballot)
                slot_offset = int(lane_indices[leader])
                slot_index = start + slot_offset
                expected = block[slot_offset]
                swapped, _old = atomic_cas(self.slots, slot_index, expected, word)
                if swapped:
                    cg.ballot(np.ones(1, dtype=bool))
                    return True
                # The leader lost the race (value changed under it); clear its
                # bit and re-ballot among the remaining candidates.
                block[slot_offset] = self.slots.peek(slot_index)
                ballot &= ~(1 << leader)
                self.recorder.add(divergent_branches=1)
        return False

    # ------------------------------------------------------------------- query
    def query(self, block_idx: int, fingerprint: int) -> Optional[int]:
        """Cooperative search for a fingerprint; returns the value or None."""
        cg = self._cg
        block = self.load_block(block_idx)
        vb = self.config.value_bits
        for lane_indices in cg.strided_indices(0, self.config.block_size):
            lane_values = block[lane_indices]
            if vb:
                shift = np.uint64(vb) if lane_values.dtype == np.uint64 else vb
                lane_fps = lane_values >> shift
            else:
                lane_fps = lane_values
            votes = (
                (lane_fps == fingerprint)
                & (lane_values != EMPTY_SLOT)
                & (lane_values != TOMBSTONE_SLOT)
            )
            ballot = cg.ballot(votes)
            if ballot:
                leader = cg.elect_leader(ballot)
                _fp, value = self.unpack(int(block[int(lane_indices[leader])]))
                return value
        return None

    def contains(self, block_idx: int, fingerprint: int) -> bool:
        """Membership check in one block."""
        return self.query(block_idx, fingerprint) is not None

    # ------------------------------------------------------------------ delete
    def delete(self, block_idx: int, fingerprint: int) -> bool:
        """Tombstone one matching fingerprint with a single atomicCAS."""
        cg = self._cg
        start, _stop = self.block_bounds(block_idx)
        block = self.load_block(block_idx)
        vb = self.config.value_bits
        for lane_indices in cg.strided_indices(0, self.config.block_size):
            lane_values = block[lane_indices]
            lane_fps = lane_values >> vb if vb else lane_values
            votes = (
                (lane_fps == fingerprint)
                & (lane_values != EMPTY_SLOT)
                & (lane_values != TOMBSTONE_SLOT)
            )
            ballot = cg.ballot(votes)
            while ballot:
                leader = cg.elect_leader(ballot)
                slot_offset = int(lane_indices[leader])
                expected = block[slot_offset]
                swapped, _old = atomic_cas(
                    self.slots, start + slot_offset, expected, TOMBSTONE_SLOT
                )
                if swapped:
                    return True
                ballot &= ~(1 << leader)
        return False

    # ------------------------------------------------------- batched (bulk) view
    def rows(self) -> np.ndarray:
        """Host-side ``(n_blocks, block_size)`` view of the slot array.

        Writes through; callers charge the appropriate staged-tile traffic
        via :func:`repro.gpusim.sharedmem.account_batched_tiles`.
        """
        return self.slots.peek().reshape(self.n_blocks, self.config.block_size)

    def resort_rows(self, block_indices: np.ndarray) -> None:
        """Re-sort the given blocks ascending (host-side, writes through).

        The bulk TCF's row invariant — every block ascending, so empties (0)
        and tombstones (1) sit in front of the live fingerprint words — is
        what makes whole-batch ``searchsorted`` probing possible.
        """
        if block_indices.size == 0:
            return
        rows = self.rows()
        staged = rows[block_indices]
        staged.sort(axis=1)
        rows[block_indices] = staged

    @property
    def flat_key_shift(self) -> Optional[int]:
        """Bit shift packing ``(block, slot word)`` into one uint64 sort key.

        ``None`` when a slot word plus the block index cannot fit 64 bits
        (only reachable with 64-bit slot words), in which case the bulk paths
        fall back to per-item probing.
        """
        shift = 8 * self.config.slot_dtype.itemsize
        if self.n_blocks > (1 << (64 - shift)):
            return None
        return shift

    def flat_sorted_keys(self) -> Optional[np.ndarray]:
        """Globally sorted ``(block << shift) | word`` keys, one per slot.

        Because every block row is kept ascending and rows are laid out in
        block order, this flattened key array is globally sorted: position
        ``i`` corresponds to flat slot ``i`` of the table, so one batched
        ``searchsorted`` resolves an arbitrary set of (block, fingerprint)
        probes.  Host-side helper; the caller accounts per-probe traffic.
        """
        shift = self.flat_key_shift
        if shift is None:
            return None
        if self._flat_base is None:
            self._flat_base = np.repeat(
                np.arange(self.n_blocks, dtype=np.uint64), self.config.block_size
            ) << np.uint64(shift)
        # Slot words never reach the block bits, so + is equivalent to |.
        return self._flat_base + self.slots.peek()

    def free_counts(self) -> np.ndarray:
        """Per-block insertable-slot counts (host-side, vectorised)."""
        return self.config.block_size - self.fills()

    def row_lower_bound(self, blocks: np.ndarray, words: np.ndarray) -> np.ndarray:
        """Batched in-row binary search: per probe, the first slot offset of
        ``blocks[i]``'s row whose word is >= ``words[i]``.

        A branchless lower bound over the sorted rows — log2(B) strided
        gathers for the whole batch, the vectorised equivalent of the
        cooperative group's in-tile binary search.  Host-side helper; callers
        charge one staged line and log2(B) instructions per probe.
        """
        data = self.slots.peek()
        bs = self.config.block_size
        row_start = blocks.astype(np.int64) * bs
        targets = words.astype(np.int64)
        pos = np.zeros(blocks.size, dtype=np.int64)
        step = 1 << (bs - 1).bit_length() if bs > 1 else 1
        while step:
            cand = pos + step
            gather = np.minimum(row_start + cand - 1, data.size - 1)
            advance = (cand <= bs) & (data[gather].astype(np.int64) < targets)
            pos = np.where(advance, cand, pos)
            step >>= 1
        return pos

    # --------------------------------------------------------------- iterate
    def iter_live_slots(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(block_idx, fingerprint, value)`` for every live slot.

        Host-side enumeration helper (used for resize / merge / testing);
        does not count device traffic.
        """
        data = self.slots.peek()
        for flat_index in np.flatnonzero((data != EMPTY_SLOT) & (data != TOMBSTONE_SLOT)):
            block_idx = int(flat_index) // self.config.block_size
            fp, value = self.unpack(int(data[flat_index]))
            yield block_idx, fp, value

    def live_count(self) -> int:
        """Total number of live slots (host-side, unaccounted)."""
        data = self.slots.peek()
        return int(np.count_nonzero((data != EMPTY_SLOT) & (data != TOMBSTONE_SLOT)))

    def fills(self) -> np.ndarray:
        """Per-block live-slot counts (host-side, for load-variance tests)."""
        data = self.slots.peek().reshape(self.n_blocks, self.config.block_size)
        live = (data != EMPTY_SLOT) & (data != TOMBSTONE_SLOT)
        return live.sum(axis=1)
