"""Double-hashing backing table for the TCF.

The TCF's cache-line-sized blocks are much smaller than the CPU vector
quotient filter's blocks, so the load variance across blocks is higher and,
without help, the filter can only reach ~79.6 % load factor before an insert
finds both candidate blocks full.  The paper's solution — to our knowledge
the first filter to use one — is a small *backing store*: a double-hashing
hash table sized to 1/100th of the main table that absorbs the <<1 % of items
whose blocks are full, raising the achievable load factor to 90 %.

Positive queries rarely touch the backing table, but negative queries must
always probe at least one backing bucket (and up to ``max_probes`` in the
worst case), which is exactly the asymmetry the paper reports for
false-positive query performance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...gpusim.atomics import atomic_cas
from ...gpusim.memory import DeviceArray
from ...gpusim.stats import StatsRecorder
from ...hashing.mixers import murmur64_mix, splitmix64
from .config import EMPTY_SLOT, TOMBSTONE_SLOT, TCFConfig


class BackingTable:
    """A small double-hashing table storing (fingerprint, value) overflow items.

    Keys are stored as full 64-bit hashed keys (not truncated fingerprints),
    so the backing table contributes no additional false positives beyond the
    main table's — its job is purely to absorb overflow.

    Parameters
    ----------
    n_buckets:
        Number of bucket groups; each bucket holds ``bucket_width`` slots.
    config:
        The owning TCF's configuration (for value packing).
    recorder:
        Stats recorder shared with the owning filter.
    max_probes:
        Maximum number of buckets probed before giving up (20 in the paper's
        worst-case negative-query description).
    """

    #: Slots per backing bucket (one cache line of 64-bit entries).
    BUCKET_WIDTH = 8

    def __init__(
        self,
        n_buckets: int,
        config: TCFConfig,
        recorder: StatsRecorder,
        max_probes: int = 20,
        name: str = "tcf-backing",
    ) -> None:
        self.n_buckets = max(1, int(n_buckets))
        self.config = config
        self.recorder = recorder
        self.max_probes = int(max_probes)
        self.keys = DeviceArray(
            self.n_buckets * self.BUCKET_WIDTH,
            np.uint64,
            recorder,
            fill=EMPTY_SLOT,
            name=f"{name}-keys",
        )
        self.values = DeviceArray(
            self.n_buckets * self.BUCKET_WIDTH,
            np.uint64,
            recorder,
            fill=0,
            name=f"{name}-values",
        )
        self._n_items = 0

    # ------------------------------------------------------------------ sizes
    @property
    def n_slots(self) -> int:
        return self.n_buckets * self.BUCKET_WIDTH

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + (self.values.nbytes if self.config.value_bits else 0)

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.n_slots if self.n_slots else 0.0

    # ----------------------------------------------------------------- probing
    def _probe_sequence(self, key: int) -> np.ndarray:
        """Bucket indices visited for ``key`` (double hashing, odd stride)."""
        key = int(key) & 0xFFFFFFFFFFFFFFFF
        h1 = int(murmur64_mix(np.uint64(key)))
        h2 = int(splitmix64(np.uint64(key))) | 1
        steps = np.arange(self.max_probes, dtype=object)
        probes = np.array(
            [(h1 + int(i) * h2) % self.n_buckets for i in steps], dtype=np.int64
        )
        return probes

    def _encode_key(self, key: int) -> int:
        """Stored key encoding; the reserved sentinels are displaced."""
        key = int(key) & 0xFFFFFFFFFFFFFFFF
        if key in (EMPTY_SLOT, TOMBSTONE_SLOT):
            key += 2
        return key

    # ------------------------------------------------------------------ insert
    def insert(self, key: int, value: int = 0) -> bool:
        """Insert an overflow item; returns False when the table is full."""
        stored = self._encode_key(key)
        for bucket in self._probe_sequence(key):
            start = int(bucket) * self.BUCKET_WIDTH
            slots = self.keys.read_range(start, start + self.BUCKET_WIDTH)
            free = np.flatnonzero((slots == EMPTY_SLOT) | (slots == TOMBSTONE_SLOT))
            for offset in free:
                expected = slots[int(offset)]
                swapped, _old = atomic_cas(self.keys, start + int(offset), expected, stored)
                if swapped:
                    if self.config.value_bits:
                        self.values.write(start + int(offset), value)
                    self._n_items += 1
                    return True
        return False

    # ------------------------------------------------------------------- query
    def query(self, key: int) -> Optional[int]:
        """Return the stored value for ``key`` (0 when values are disabled).

        Probing stops early at a bucket containing an empty slot, because an
        insert would have used that slot: the item cannot be further along
        the probe sequence.
        """
        stored = self._encode_key(key)
        for bucket in self._probe_sequence(key):
            start = int(bucket) * self.BUCKET_WIDTH
            slots = self.keys.read_range(start, start + self.BUCKET_WIDTH)
            matches = np.flatnonzero(slots == stored)
            if matches.size:
                offset = int(matches[0])
                if self.config.value_bits:
                    return int(self.values.read(start + offset))
                return 0
            if np.any(slots == EMPTY_SLOT):
                return None
        return None

    def contains(self, key: int) -> bool:
        return self.query(key) is not None

    # ------------------------------------------------------------------ delete
    def delete(self, key: int) -> bool:
        """Tombstone one occurrence of ``key``; returns True if found."""
        stored = self._encode_key(key)
        for bucket in self._probe_sequence(key):
            start = int(bucket) * self.BUCKET_WIDTH
            slots = self.keys.read_range(start, start + self.BUCKET_WIDTH)
            matches = np.flatnonzero(slots == stored)
            if matches.size:
                offset = int(matches[0])
                swapped, _old = atomic_cas(
                    self.keys, start + offset, stored, TOMBSTONE_SLOT
                )
                if swapped:
                    self._n_items -= 1
                    return True
            if np.any(slots == EMPTY_SLOT):
                return False
        return False

    # ----------------------------------------------------------------- iterate
    def iter_items(self):
        """Yield (stored_key, value) for every live entry (host-side)."""
        keys = self.keys.peek()
        values = self.values.peek()
        for index in np.flatnonzero((keys != EMPTY_SLOT) & (keys != TOMBSTONE_SLOT)):
            yield int(keys[index]), int(values[index])
