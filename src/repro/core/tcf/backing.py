"""Double-hashing backing table for the TCF.

The TCF's cache-line-sized blocks are much smaller than the CPU vector
quotient filter's blocks, so the load variance across blocks is higher and,
without help, the filter can only reach ~79.6 % load factor before an insert
finds both candidate blocks full.  The paper's solution — to our knowledge
the first filter to use one — is a small *backing store*: a double-hashing
hash table sized to 1/100th of the main table that absorbs the <<1 % of items
whose blocks are full, raising the achievable load factor to 90 %.

Positive queries rarely touch the backing table, but negative queries must
always probe at least one backing bucket (and up to ``max_probes`` in the
worst case), which is exactly the asymmetry the paper reports for
false-positive query performance.

The point API probes lazily — one bucket at a time, stopping at the first
match or the first bucket with an empty slot.  The bulk API processes a whole
batch per probe round: all still-unresolved keys gather their round-``i``
bucket at once, so a batch of *n* keys costs a handful of vectorised passes
instead of *n* Python loops.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.atomics import atomic_cas
from ...gpusim.memory import DeviceArray
from ...gpusim.sorting import group_ranks, run_first_mask
from ...gpusim.stats import StatsRecorder
from ...hashing.mixers import murmur64_mix, splitmix64
from .config import EMPTY_SLOT, TOMBSTONE_SLOT, TCFConfig

_MASK64 = 0xFFFFFFFFFFFFFFFF


class BackingTable:
    """A small double-hashing table storing (fingerprint, value) overflow items.

    Keys are stored as full 64-bit hashed keys (not truncated fingerprints),
    so the backing table contributes no additional false positives beyond the
    main table's — its job is purely to absorb overflow.

    Parameters
    ----------
    n_buckets:
        Number of bucket groups; each bucket holds ``bucket_width`` slots.
    config:
        The owning TCF's configuration (for value packing).
    recorder:
        Stats recorder shared with the owning filter.
    max_probes:
        Maximum number of buckets probed before giving up (20 in the paper's
        worst-case negative-query description).
    """

    #: Slots per backing bucket (one cache line of 64-bit entries).
    BUCKET_WIDTH = 8

    def __init__(
        self,
        n_buckets: int,
        config: TCFConfig,
        recorder: StatsRecorder,
        max_probes: int = 20,
        name: str = "tcf-backing",
    ) -> None:
        self.n_buckets = max(1, int(n_buckets))
        self.config = config
        self.recorder = recorder
        self.max_probes = int(max_probes)
        self.keys = DeviceArray(
            self.n_buckets * self.BUCKET_WIDTH,
            np.uint64,
            recorder,
            fill=EMPTY_SLOT,
            name=f"{name}-keys",
        )
        self.values = DeviceArray(
            self.n_buckets * self.BUCKET_WIDTH,
            np.uint64,
            recorder,
            fill=0,
            name=f"{name}-values",
        )
        self._n_items = 0

    # ------------------------------------------------------------------ sizes
    @property
    def n_slots(self) -> int:
        return self.n_buckets * self.BUCKET_WIDTH

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + (self.values.nbytes if self.config.value_bits else 0)

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.n_slots if self.n_slots else 0.0

    # ----------------------------------------------------------------- probing
    def _probe_sequence(self, key: int) -> Iterator[int]:
        """Bucket indices visited for ``key`` (double hashing, odd stride).

        Lazily yields one bucket at a time so callers that stop at the first
        match or empty bucket (the common case) never pay for the full
        ``max_probes`` sequence.  Arithmetic wraps at 64 bits, matching the
        vectorised batch probing exactly.
        """
        key = int(key) & _MASK64
        h1 = int(murmur64_mix(np.uint64(key)))
        h2 = int(splitmix64(np.uint64(key))) | 1
        cursor = h1
        for _ in range(self.max_probes):
            yield cursor % self.n_buckets
            cursor = (cursor + h2) & _MASK64

    def _hash_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-key (start, stride) of the double-hashing probe sequence."""
        keys = np.asarray(keys, dtype=np.uint64)
        h1 = np.asarray(murmur64_mix(keys), dtype=np.uint64)
        h2 = np.asarray(splitmix64(keys), dtype=np.uint64) | np.uint64(1)
        return h1, h2

    def _probe_round(self, h1: np.ndarray, h2: np.ndarray, round_idx: int) -> np.ndarray:
        """Round-``i`` bucket per key (uint64 wraparound, then modulo)."""
        cursor = h1 + np.uint64(round_idx) * h2  # wraps at 2^64, as the point path
        return (cursor % np.uint64(self.n_buckets)).astype(np.int64)

    def _encode_key(self, key: int) -> int:
        """Stored key encoding; the reserved sentinels are displaced."""
        key = int(key) & _MASK64
        if key in (EMPTY_SLOT, TOMBSTONE_SLOT):
            key += 2
        return key

    def _encode_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_encode_key`."""
        stored = np.asarray(keys, dtype=np.uint64).copy()
        reserved = (stored == np.uint64(EMPTY_SLOT)) | (stored == np.uint64(TOMBSTONE_SLOT))
        stored[reserved] += np.uint64(2)
        return stored

    def _bucket_windows(self, buckets: np.ndarray) -> np.ndarray:
        """Host-side view of the ``(n, BUCKET_WIDTH)`` key windows probed.

        The per-bucket cache-line read is charged by the caller (one line per
        probing key, as the point path's ``read_range`` does).
        """
        offsets = buckets[:, None] * self.BUCKET_WIDTH + np.arange(self.BUCKET_WIDTH)
        return self.keys.peek()[offsets]

    # ------------------------------------------------------------------ insert
    def insert(self, key: int, value: int = 0) -> bool:
        """Insert an overflow item; returns False when the table is full."""
        stored = self._encode_key(key)
        for bucket in self._probe_sequence(key):
            start = int(bucket) * self.BUCKET_WIDTH
            slots = self.keys.read_range(start, start + self.BUCKET_WIDTH)
            free = np.flatnonzero((slots == EMPTY_SLOT) | (slots == TOMBSTONE_SLOT))
            for offset in free:
                expected = slots[int(offset)]
                swapped, _old = atomic_cas(self.keys, start + int(offset), expected, stored)
                if swapped:
                    if self.config.value_bits:
                        self.values.write(start + int(offset), value)
                    self._n_items += 1
                    return True
        return False

    def bulk_insert(
        self, keys: Sequence[int], values: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Vectorised insert of a batch; returns a per-key success mask.

        Each probe round resolves every still-unplaced key at once: the
        round's buckets are gathered, free slots are assigned *positionally*
        by each key's rank inside its bucket group (so duplicate keys and
        bucket collisions never race for one slot), and the leftovers carry
        to the next round.  Hardware events mirror the point path: one
        cache-line read per (key, bucket probed), one atomic CAS (32-byte
        read + write) per placement, one line write per value stored.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        placed = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return placed
        if values is None:
            values = np.zeros(keys.size, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        stored = self._encode_batch(keys)
        h1, h2 = self._hash_batch(keys)
        data = self.keys.peek()
        pending = np.arange(keys.size)
        for round_idx in range(self.max_probes):
            if pending.size == 0:
                break
            buckets = self._probe_round(h1[pending], h2[pending], round_idx)
            self.recorder.add(cache_line_reads=int(pending.size))
            windows = self._bucket_windows(buckets)
            free_mask = (windows == np.uint64(EMPTY_SLOT)) | (
                windows == np.uint64(TOMBSTONE_SLOT)
            )
            n_free = free_mask.sum(axis=1)
            # Rank each key inside its bucket group (batch order preserved).
            order = np.argsort(buckets, kind="stable")
            rank = group_ranks(buckets[order])
            take = rank < n_free[order]
            if take.any():
                rows = order[take]
                # The rank-th free slot of each window, free slots first.
                free_order = np.argsort(~free_mask, axis=1, kind="stable")
                slot_offsets = free_order[rows, rank[take]]
                flat = buckets[rows] * self.BUCKET_WIDTH + slot_offsets
                winners = pending[rows]
                data[flat] = stored[winners]
                self.recorder.add(
                    atomic_ops=int(rows.size),
                    coalesced_bytes_read=32 * int(rows.size),
                    coalesced_bytes_written=32 * int(rows.size),
                )
                if self.config.value_bits:
                    self.values.peek()[flat] = values[winners]
                    self.recorder.add(cache_line_writes=int(rows.size))
                placed[winners] = True
                self._n_items += int(rows.size)
            pending = pending[order[~take]] if (~take).any() else pending[:0]
        return placed

    # ------------------------------------------------------------------- query
    def query(self, key: int) -> Optional[int]:
        """Return the stored value for ``key`` (0 when values are disabled).

        Probing stops early at a bucket containing an empty slot, because an
        insert would have used that slot: the item cannot be further along
        the probe sequence.
        """
        stored = self._encode_key(key)
        for bucket in self._probe_sequence(key):
            start = int(bucket) * self.BUCKET_WIDTH
            slots = self.keys.read_range(start, start + self.BUCKET_WIDTH)
            matches = np.flatnonzero(slots == stored)
            if matches.size:
                offset = int(matches[0])
                if self.config.value_bits:
                    return int(self.values.read(start + offset))
                return 0
            if np.any(slots == EMPTY_SLOT):
                return None
        return None

    def contains(self, key: int) -> bool:
        return self.query(key) is not None

    def bulk_contains(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorised membership for a batch; returns a boolean array.

        Keys resolve as soon as their probe round either matches (present)
        or lands in a bucket with an empty slot (definitely absent); only
        unresolved keys continue, so the typical negative query costs one
        round, exactly like the point path.
        """
        found, _values = self.bulk_query_values(keys)
        return found

    def bulk_query_values(self, keys: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised lookup: ``(found mask, stored values)`` per key."""
        keys = np.asarray(keys, dtype=np.uint64)
        found = np.zeros(keys.size, dtype=bool)
        out_values = np.zeros(keys.size, dtype=np.uint64)
        if keys.size == 0:
            return found, out_values
        stored = self._encode_batch(keys)
        h1, h2 = self._hash_batch(keys)
        pending = np.arange(keys.size)
        for round_idx in range(self.max_probes):
            if pending.size == 0:
                break
            buckets = self._probe_round(h1[pending], h2[pending], round_idx)
            self.recorder.add(cache_line_reads=int(pending.size))
            windows = self._bucket_windows(buckets)
            match_mask = windows == stored[pending, None]
            hit = match_mask.any(axis=1)
            if hit.any():
                hit_rows = np.flatnonzero(hit)
                found[pending[hit_rows]] = True
                if self.config.value_bits:
                    slot_offsets = np.argmax(match_mask[hit_rows], axis=1)
                    flat = buckets[hit_rows] * self.BUCKET_WIDTH + slot_offsets
                    out_values[pending[hit_rows]] = self.values.peek()[flat]
                    self.recorder.add(cache_line_reads=int(hit_rows.size))
            has_empty = (windows == np.uint64(EMPTY_SLOT)).any(axis=1)
            pending = pending[~hit & ~has_empty]
        return found, out_values

    # ------------------------------------------------------------------ delete
    def delete(self, key: int) -> bool:
        """Tombstone one occurrence of ``key``; returns True if found."""
        stored = self._encode_key(key)
        for bucket in self._probe_sequence(key):
            start = int(bucket) * self.BUCKET_WIDTH
            slots = self.keys.read_range(start, start + self.BUCKET_WIDTH)
            matches = np.flatnonzero(slots == stored)
            if matches.size:
                offset = int(matches[0])
                swapped, _old = atomic_cas(
                    self.keys, start + offset, stored, TOMBSTONE_SLOT
                )
                if swapped:
                    self._n_items -= 1
                    return True
            if np.any(slots == EMPTY_SLOT):
                return False
        return False

    def bulk_delete(self, keys: Sequence[int]) -> np.ndarray:
        """Tombstone one occurrence per requested key; returns a removal mask.

        Duplicate requests for one key are ranked so each consumes a distinct
        stored copy; a request whose rank exceeds the copies in the round's
        bucket falls through to the next probe round, mirroring sequential
        point deletes.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        removed = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return removed
        stored = self._encode_batch(keys)
        h1, h2 = self._hash_batch(keys)
        data = self.keys.peek()
        pending = np.arange(keys.size)
        for round_idx in range(self.max_probes):
            if pending.size == 0:
                break
            buckets = self._probe_round(h1[pending], h2[pending], round_idx)
            self.recorder.add(cache_line_reads=int(pending.size))
            windows = self._bucket_windows(buckets)
            match_mask = windows == stored[pending, None]
            n_match = match_mask.sum(axis=1)
            # Rank requests contending for the same stored slots: the round's
            # contention group is (bucket, stored word) — duplicate keys
            # always share it, and sentinel-aliased distinct keys (0/2, 1/3
            # encode to one word) share it exactly when they land in the same
            # bucket and really do fight over the same matches.
            order = np.lexsort((stored[pending], buckets))
            b_ord, s_ord = buckets[order], stored[pending][order]
            first = run_first_mask(b_ord) | run_first_mask(s_ord)
            first_idx = np.flatnonzero(first)
            rank = np.arange(order.size) - first_idx[np.cumsum(first) - 1]
            take = rank < n_match[order]
            if take.any():
                rows = order[take]
                match_order = np.argsort(~match_mask, axis=1, kind="stable")
                slot_offsets = match_order[rows, rank[take]]
                flat = buckets[rows] * self.BUCKET_WIDTH + slot_offsets
                data[flat] = np.uint64(TOMBSTONE_SLOT)
                self.recorder.add(
                    atomic_ops=int(rows.size),
                    coalesced_bytes_read=32 * int(rows.size),
                    coalesced_bytes_written=32 * int(rows.size),
                )
                removed[pending[rows]] = True
                self._n_items -= int(rows.size)
            # Unmatched requests stop at a bucket holding an empty slot.
            has_empty = (windows == np.uint64(EMPTY_SLOT)).any(axis=1)
            leftover = order[~take]
            pending = pending[leftover[~has_empty[leftover]]]
        return removed

    # ----------------------------------------------------------------- iterate
    def iter_items(self):
        """Yield (stored_key, value) for every live entry (host-side)."""
        keys = self.keys.peek()
        values = self.values.peek()
        for index in np.flatnonzero((keys != EMPTY_SLOT) & (keys != TOMBSTONE_SLOT)):
            yield int(keys[index]), int(values[index])
