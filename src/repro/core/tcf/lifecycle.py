"""Shared lifecycle machinery (resize + snapshots) for the TCF family.

The TCF's power-of-two-choice addressing is *not* invertible: the stored
fingerprint ``((h1 >> 17) ^ (h2 << 3)) & mask`` cannot be mapped back to the
key, so — unlike the quotient filters, whose tables can be rehashed from the
stored fingerprints alone — a TCF cannot rebuild itself at a new geometry
from its own slots.  When resizing is requested (``auto_resize=True``) the
filter therefore keeps a host-side *journal*: a plain dict mapping each
inserted key to its stored values.  Growing the filter builds a fresh table
at twice the slot count and bulk-inserts the journal through the normal
(event-charged) insert path, so resize cost shows up honestly in the
simulated hardware counters.

The journal is exact for true deletes; deleting a *false positive* removes a
stored slot but no journal entry, so after such a delete a resize can
resurrect at most that one phantom item — the same one the false positive
already claimed was present.  This mirrors the fundamental limit the paper
notes for fingerprint filters rather than hiding it.

:class:`TCFLifecycle` is mixed into both :class:`~repro.core.tcf.point_tcf.
PointTCF` and :class:`~repro.core.tcf.bulk_tcf.BulkTCF`; it relies on the
attributes they share (``table``, ``backing``, ``config``, ``_n_items``,
``recorder``) plus the journal state initialised by :meth:`_init_lifecycle`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..base import restore_array
from ..exceptions import FilterFullError
from .config import TCFConfig

_MASK64 = 0xFFFFFFFFFFFFFFFF


class TCFLifecycle:
    """Journal-backed resize and snapshot support for the TCF family."""

    # ----------------------------------------------------------------- journal
    def _init_lifecycle(
        self, auto_resize: bool, auto_resize_at: Optional[float]
    ) -> None:
        self.auto_resize = bool(auto_resize)
        self.auto_resize_at = float(
            self.config.max_load_factor if auto_resize_at is None else auto_resize_at
        )
        if not 0.0 < self.auto_resize_at <= 1.0:
            raise ValueError("auto_resize_at must be in (0, 1]")
        self.n_resizes = 0
        #: key -> list of stored values; exists only when resizing is on.
        self._journal: Optional[Dict[int, List[int]]] = {} if self.auto_resize else None
        #: int64[3] shared-memory view of the scalar counters once the
        #: tables are adopted (:meth:`adopt_state`); None on the heap.
        self._shared_scalars: Optional[np.ndarray] = None

    def _journal_add(self, key: int, value: int) -> None:
        if self._journal is not None:
            self._journal.setdefault(int(key) & _MASK64, []).append(int(value))

    def _journal_add_batch(self, keys: np.ndarray, values: np.ndarray) -> None:
        if self._journal is not None:
            journal = self._journal
            for key, value in zip(keys.tolist(), values.tolist()):
                journal.setdefault(key & _MASK64, []).append(value)

    def _journal_remove(self, key: int) -> None:
        if self._journal is not None:
            values = self._journal.get(int(key) & _MASK64)
            if values:
                values.pop()
                if not values:
                    del self._journal[int(key) & _MASK64]

    def _journal_remove_batch(self, keys: np.ndarray) -> None:
        if self._journal is not None:
            for key in keys.tolist():
                self._journal_remove(key)

    def _journal_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The journal flattened to aligned (keys, values) uint64 arrays."""
        total = sum(len(values) for values in self._journal.values())
        keys = np.empty(total, dtype=np.uint64)
        values = np.empty(total, dtype=np.uint64)
        cursor = 0
        for key, stored in self._journal.items():
            for value in stored:
                keys[cursor] = key
                values[cursor] = value
                cursor += 1
        return keys, values

    # ------------------------------------------------------------------ resize
    def _can_grow(self) -> bool:
        return self._journal is not None

    def _maybe_grow(self) -> None:
        """Grow ahead of an insert once the configured load factor is hit."""
        if self._journal is None:
            return
        while self.load_factor >= self.auto_resize_at:
            self._grow()

    def _grow(self) -> None:
        """Double-and-rehash: rebuild into a fresh table at 2x the slots.

        The rebuild charges its inserts to the shared recorder — resize cost
        is real work, not an accounting blind spot.  If the doubled table
        still cannot hold the journal (pathological block skew), the factor
        doubles again.
        """
        keys, values = self._journal_arrays()
        factor = 2
        while True:
            bigger = type(self)(
                self.table.n_slots * factor, self.config, recorder=self.recorder
            )
            try:
                if keys.size:
                    bigger.bulk_insert(keys, values)
            except FilterFullError:
                factor *= 2
                continue
            break
        self.table = bigger.table
        self.backing = bigger.backing
        self._n_items = bigger._n_items
        if hasattr(self, "_block_lines_cache"):
            self._block_lines_cache = None
        self.n_resizes += 1

    # --------------------------------------------------------------- snapshots
    def snapshot_config(self) -> dict:
        return {
            "n_slots": self.table.n_slots,
            "config": dataclasses.asdict(self.config),
            "auto_resize": self.auto_resize,
            "auto_resize_at": self.auto_resize_at,
        }

    @classmethod
    def _from_snapshot_config(cls, config: Mapping, recorder=None):
        return cls(
            config["n_slots"],
            TCFConfig(**config["config"]),
            recorder=recorder,
            auto_resize=config.get("auto_resize", False),
            auto_resize_at=config.get("auto_resize_at"),
        )

    def snapshot_state(self) -> Dict[str, np.ndarray]:
        state = {
            "table": self.table.slots.peek().copy(),
            "backing_keys": self.backing.keys.peek().copy(),
            "backing_values": self.backing.values.peek().copy(),
            "scalars": np.array(
                [self._n_items, self.backing._n_items, self.n_resizes],
                dtype=np.int64,
            ),
        }
        if self._journal is not None:
            journal_keys, journal_values = self._journal_arrays()
            state["journal_keys"] = journal_keys
            state["journal_values"] = journal_values
        return state

    # ------------------------------------------------------------ shared state
    def adopt_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Rebind the tables onto shared-memory views, zero-copy.

        The shared-memory allocation path of :mod:`repro.sharding`: the
        named sections (same layout as :meth:`snapshot_state`) become the
        live backing store, so every slot write goes straight to the shared
        segment.  The scalar counters are synchronised explicitly with
        :meth:`refresh_shared` / :meth:`flush_shared`.  Journaled filters
        cannot adopt: the journal is a variable-size host dict that no fixed
        segment can hold — the sharding layer keeps journals in the parent
        process instead.
        """
        if self._journal is not None:
            raise ValueError(
                "journaled (auto_resize=True) TCFs cannot adopt shared "
                "buffers; construct the shard with auto_resize=False"
            )
        table = np.asarray(state["table"])
        if table.shape != self.table.slots.data.shape or table.dtype != self.table.slots.data.dtype:
            raise ValueError(
                f"cannot adopt a {table.dtype}{table.shape} table buffer; "
                f"need {self.table.slots.data.dtype}{self.table.slots.data.shape}"
            )
        keys = np.asarray(state["backing_keys"])
        values = np.asarray(state["backing_values"])
        if (
            keys.shape != self.backing.keys.data.shape
            or values.shape != self.backing.values.data.shape
        ):
            raise ValueError("backing-table buffer shapes do not match the filter")
        scalars = np.asarray(state["scalars"])
        if scalars.dtype != np.int64 or scalars.size != 3:
            raise ValueError("scalar section must be int64[3]")
        self.table.slots.data = table
        self.backing.keys.data = keys.astype(self.backing.keys.data.dtype, copy=False)
        self.backing.values.data = values.astype(self.backing.values.data.dtype, copy=False)
        self._shared_scalars = scalars
        self.refresh_shared()

    def refresh_shared(self) -> None:
        """Reload the scalar counters and drop caches after external writes."""
        scalars = getattr(self, "_shared_scalars", None)
        if scalars is None:
            raise ValueError("filter is not adopted onto shared buffers")
        self._n_items = int(scalars[0])
        self.backing._n_items = int(scalars[1])
        self.n_resizes = int(scalars[2])
        if hasattr(self, "_block_lines_cache"):
            self._block_lines_cache = None

    def flush_shared(self) -> None:
        """Write the scalar counters back into the shared buffer."""
        scalars = getattr(self, "_shared_scalars", None)
        if scalars is None:
            raise ValueError("filter is not adopted onto shared buffers")
        scalars[0] = self._n_items
        scalars[1] = self.backing._n_items
        scalars[2] = self.n_resizes

    def restore_state(self, state: Mapping[str, np.ndarray]) -> None:
        restore_array(self.table.slots.peek(), state["table"], "table")
        restore_array(self.backing.keys.peek(), state["backing_keys"], "backing_keys")
        restore_array(
            self.backing.values.peek(), state["backing_values"], "backing_values"
        )
        scalars = np.asarray(state["scalars"])
        self._n_items = int(scalars[0])
        self.backing._n_items = int(scalars[1])
        self.n_resizes = int(scalars[2]) if scalars.size > 2 else 0
        if self._journal is not None:
            self._journal.clear()
            if "journal_keys" in state:
                self._journal_add_batch(
                    np.asarray(state["journal_keys"], dtype=np.uint64),
                    np.asarray(state["journal_values"], dtype=np.uint64),
                )
        if hasattr(self, "_block_lines_cache"):
            self._block_lines_cache = None
        if getattr(self, "_shared_scalars", None) is not None:
            self.flush_shared()
