"""Exceptions raised by the filters in this reproduction."""

from __future__ import annotations


class FilterError(Exception):
    """Base class for every filter-specific error."""


class FilterFullError(FilterError):
    """Raised when an insert cannot find space.

    For the TCF this means both candidate blocks *and* the backing table are
    full; for quotient-filter variants it means the structure exceeded its
    maximum recommended load factor and ran out of slots (including the
    overflow slack at the end of the table).
    """


class CapacityLimitError(FilterError):
    """Raised when a filter is configured beyond an implementation limit.

    Geil et al.'s SQF/RSQF can only be sized up to 2^26 slots because they
    pack quotient+remainder into 32 bits; we reproduce those limits and raise
    this error when they are exceeded.
    """


class UnsupportedOperationError(FilterError):
    """Raised when an operation is not supported by a filter design.

    Examples: deleting from a Bloom filter, counting with a cuckoo-style
    filter, point-inserting into a bulk-only filter (SQF/RSQF).
    """


class DeletionError(FilterError):
    """Raised when a delete targets an item the filter cannot find.

    Deleting a never-inserted item from a filter that stores fingerprints is
    unsafe (it can remove another item's fingerprint); the filters surface
    this instead of corrupting state silently.
    """


class ConcurrencyError(FilterError):
    """Raised when the simulated locking protocol is violated.

    For example, acquiring a GQF region lock that the same simulated thread
    already holds, or releasing a lock that is not held.
    """
