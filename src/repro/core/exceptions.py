"""Exceptions raised by the filters in this reproduction."""

from __future__ import annotations

from typing import Optional


class FilterError(Exception):
    """Base class for every filter-specific error."""


class FilterFullError(FilterError):
    """Raised when an insert cannot find space.

    For the TCF this means both candidate blocks *and* the backing table are
    full; for quotient-filter variants it means the structure exceeded its
    maximum recommended load factor and ran out of slots (including the
    overflow slack at the end of the table).

    Beyond the message, the error carries the occupancy snapshot at failure
    time so callers (retry loops, the auto-resize trigger, the future service
    layer) can react programmatically:

    ``n_items``
        Items stored when the insert failed.
    ``n_slots``
        Total slots of the failing structure.
    ``load_factor``
        Fill fraction at failure (``n_items / n_slots`` unless the filter
        reports a more precise figure).
    ``batch_offset``
        For bulk inserts: how many keys of the failing batch were placed
        before the filter ran out of space (``None`` for point inserts).
    """

    def __init__(
        self,
        message: str,
        *,
        n_items: Optional[int] = None,
        n_slots: Optional[int] = None,
        load_factor: Optional[float] = None,
        batch_offset: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.n_items = n_items
        self.n_slots = n_slots
        self.load_factor = load_factor
        self.batch_offset = batch_offset

    def __str__(self) -> str:
        parts = [self.message]
        context = []
        if self.n_items is not None:
            context.append(f"n_items={self.n_items}")
        if self.n_slots is not None:
            context.append(f"n_slots={self.n_slots}")
        if self.load_factor is not None:
            context.append(f"load_factor={self.load_factor:.3f}")
        if self.batch_offset is not None:
            context.append(f"batch_offset={self.batch_offset}")
        if context:
            parts.append(f"[{', '.join(context)}]")
        return " ".join(parts)


class CapacityLimitError(FilterError):
    """Raised when a filter is configured beyond an implementation limit.

    Geil et al.'s SQF/RSQF can only be sized up to 2^26 slots because they
    pack quotient+remainder into 32 bits; we reproduce those limits and raise
    this error when they are exceeded.

    ``requested`` and ``limit`` describe the violated bound (in whatever unit
    the message names — bits, slots, or items) when the raise site knows it.
    """

    def __init__(
        self,
        message: str,
        *,
        requested: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.requested = requested
        self.limit = limit

    def __str__(self) -> str:
        parts = [self.message]
        context = []
        if self.requested is not None:
            context.append(f"requested={self.requested}")
        if self.limit is not None:
            context.append(f"limit={self.limit}")
        if context:
            parts.append(f"[{', '.join(context)}]")
        return " ".join(parts)


class SnapshotError(FilterError):
    """Raised when a filter snapshot cannot be written or restored.

    Covers the whole lifecycle surface: unknown magic/version at load,
    checksum mismatches from truncated or corrupted files, and state
    sections whose shape disagrees with the header.
    """


class UnsupportedOperationError(FilterError):
    """Raised when an operation is not supported by a filter design.

    Examples: deleting from a Bloom filter, counting with a cuckoo-style
    filter, point-inserting into a bulk-only filter (SQF/RSQF).
    """


class DeletionError(FilterError):
    """Raised when a delete targets an item the filter cannot find.

    Deleting a never-inserted item from a filter that stores fingerprints is
    unsafe (it can remove another item's fingerprint); the filters surface
    this instead of corrupting state silently.
    """


class ConcurrencyError(FilterError):
    """Raised when the simulated locking protocol is violated.

    For example, acquiring a GQF region lock that the same simulated thread
    already holds, or releasing a lock that is not held.
    """
