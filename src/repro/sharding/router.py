"""Deterministic key-to-shard routing.

A sharded filter must send every key to the same shard on every call, in
every process, forever — the routing function is part of the structure's
durable identity (it is recorded in snapshots).  The router therefore uses
a fixed, seedable **splitmix64** finalizer over the key, reduced modulo the
shard count.  Two properties matter:

* the mix is *independent* of the fingerprint hash the filters apply
  inside each shard (different constants, different construction), so
  routing cannot correlate with in-shard placement and skew a shard's
  fingerprint distribution;
* the whole batch routes as one vectorised pass — routing is on the bulk
  hot path and must not reintroduce a per-key loop.

``partition`` additionally produces the stable gather order that groups a
batch by shard while preserving the original intra-shard key order; the
order array doubles as the scatter index for returning per-shard results
to the caller's layout.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Default router seed, mixed into every key before the finalizer.
DEFAULT_ROUTER_SEED = 0x5368617264464C74  # ascii "ShardFLt"

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def shard_ids(
    keys: np.ndarray, n_shards: int, seed: int = DEFAULT_ROUTER_SEED
) -> np.ndarray:
    """Return the shard index of every key (vectorised splitmix64 mix)."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_shards == 1:
        return np.zeros(np.asarray(keys).shape, dtype=np.int64)
    z = np.asarray(keys, dtype=np.uint64) ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z ^= z >> np.uint64(31)
    return (z % np.uint64(n_shards)).astype(np.int64)


def partition(
    keys: np.ndarray, n_shards: int, seed: int = DEFAULT_ROUTER_SEED
) -> Tuple[np.ndarray, np.ndarray]:
    """Group a batch by shard: returns ``(order, offsets)``.

    ``order`` is a stable permutation such that ``keys[order]`` lists shard
    0's keys first, then shard 1's, and so on; *stable* means each shard
    sees its keys in the caller's original order, which is what makes a
    one-shard sharded filter bit-exact against the unsharded filter (same
    keys, same order, same merge decisions).  ``offsets`` has length
    ``n_shards + 1``; shard ``i`` owns ``order[offsets[i]:offsets[i + 1]]``.

    Scatter-back idiom for a per-shard result ``parts[i]`` aligned with
    shard ``i``'s keys::

        out = np.empty(keys.size, dtype)
        out[order] = np.concatenate(parts)
    """
    keys = np.asarray(keys, dtype=np.uint64)
    ids = shard_ids(keys, n_shards, seed)
    if n_shards == 1:
        order = np.arange(keys.size, dtype=np.int64)
        offsets = np.array([0, keys.size], dtype=np.int64)
        return order, offsets
    order = np.argsort(ids, kind="stable").astype(np.int64)
    counts = np.bincount(ids, minlength=n_shards)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return order, offsets
