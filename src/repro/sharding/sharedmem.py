"""Shared-memory backing for shard tables.

Every shard of a :class:`~repro.sharding.sharded.ShardedFilter` keeps its
complete table state — the same named numpy sections its snapshot format
persists — inside one ``multiprocessing.shared_memory`` segment.  Worker
processes attach the segment by name and *adopt* the views as their live
tables (:meth:`QuotientFilterCore.adopt_state` and friends), so bulk
operations move **zero table bytes** between processes: only the key
batches and the event deltas cross the pipe.

The layout mirrors :mod:`repro.lifecycle.snapshot`: sections are laid out
back to back at 64-byte alignment, described by small picklable
:class:`SectionSpec` records.  The parent process *owns* every segment
(creates and eventually unlinks it); workers attach read-write but never
unlink.

Leak guards
-----------
POSIX shared memory outlives the process unless explicitly unlinked, so a
crashed run would otherwise litter ``/dev/shm``.  Two layers defend this:

* every owning :class:`ShardStore` registers a ``weakref.finalize`` hook —
  the segment is unlinked when the store is garbage-collected or the
  interpreter exits, even if nobody called :meth:`ShardStore.close`;
* :meth:`ShardStore.close` unlinks eagerly (service shutdown, registry
  eviction, worker-crash recovery call it explicitly).

Attaching processes on Python < 3.13 must also *untrack* the segment: the
stdlib registers every attach with the per-process ``resource_tracker``,
whose exit-time cleanup would unlink a segment the owner still uses
(python/cpython#82300).  :func:`_untrack` undoes that registration.
"""

from __future__ import annotations

import multiprocessing
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Mapping, Tuple

import numpy as np

#: Section alignment, matching the snapshot format (cache-line friendly).
ALIGNMENT = 64


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class SectionSpec:
    """One named array section inside a shard segment (picklable)."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


def layout_sections(
    state: Mapping[str, np.ndarray],
) -> Tuple[List[SectionSpec], int]:
    """Compute the aligned segment layout for a ``snapshot_state`` dict."""
    sections: List[SectionSpec] = []
    offset = 0
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        sections.append(
            SectionSpec(
                name=name,
                dtype=array.dtype.str,
                shape=tuple(int(d) for d in array.shape),
                offset=offset,
                nbytes=int(array.nbytes),
            )
        )
        offset += _align(int(array.nbytes))
    return sections, max(offset, ALIGNMENT)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Undo the attach-side resource-tracker registration (see module doc).

    Only needed when the attaching process runs its *own* tracker (spawn /
    forkserver children): that tracker would unlink the segment when the
    child exits.  Under ``fork`` — the Linux default these pools use — the
    tracker process is shared with the owner, the attach-side registration
    is a set no-op, and unregistering here would cancel the owner's crash
    protection (and make the owner's ``unlink`` double-unregister).
    """
    if multiprocessing.get_start_method(allow_none=True) in (None, "fork"):
        return
    name = getattr(shm, "_name", None)
    if name is None:  # pragma: no cover - future stdlib layout change
        return
    try:
        resource_tracker.unregister(name, "shared_memory")
    except (KeyError, ValueError):  # pragma: no cover - already untracked
        pass


def _cleanup_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Finalizer body: unlink (owner) / detach (worker), idempotently.

    Closing the local mapping can fail with ``BufferError`` while adopted
    numpy views are still alive; the name is unlinked regardless (POSIX
    keeps the memory until the last mapping dies, so live views stay
    valid) and the mapping itself is released at process exit.
    """
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    try:
        shm.close()
    except BufferError:
        pass


class ShardStore:
    """One shard's table state in a shared-memory segment.

    Build with :meth:`allocate` in the owning (parent) process or
    :meth:`attach` in a worker, then hand :meth:`views` to the shard
    filter's ``adopt_state``.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        sections: List[SectionSpec],
        owner: bool,
    ) -> None:
        self._shm = shm
        self.sections = sections
        self.owner = owner
        self._finalizer = weakref.finalize(self, _cleanup_segment, shm, owner)

    # ------------------------------------------------------------ constructors
    @classmethod
    def allocate(cls, state: Mapping[str, np.ndarray]) -> "ShardStore":
        """Create an owning segment holding a copy of ``state``."""
        sections, total = layout_sections(state)
        shm = shared_memory.SharedMemory(
            create=True, size=total, name=f"repro-shard-{secrets.token_hex(8)}"
        )
        store = cls(shm, sections, owner=True)
        views = store.views()
        for name, array in state.items():
            views[name][...] = np.ascontiguousarray(array)
        return store

    @classmethod
    def attach(cls, handle: Dict[str, object]) -> "ShardStore":
        """Attach a worker-side (non-owning) view of an existing segment."""
        shm = shared_memory.SharedMemory(name=str(handle["shm_name"]))
        _untrack(shm)
        sections = [SectionSpec(**spec) for spec in handle["sections"]]  # type: ignore[arg-type]
        return cls(shm, sections, owner=False)

    # ----------------------------------------------------------------- access
    @property
    def shm_name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def handle(self) -> Dict[str, object]:
        """A picklable description workers use to :meth:`attach`."""
        return {
            "shm_name": self._shm.name,
            "sections": [vars(spec) for spec in self.sections],
        }

    def views(self) -> Dict[str, np.ndarray]:
        """Live numpy views over the segment, one per section."""
        out: Dict[str, np.ndarray] = {}
        for spec in self.sections:
            out[spec.name] = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
        return out

    # ---------------------------------------------------------------- teardown
    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Release the segment now (unlink if owner); safe to call twice.

        Callers should drop every adopted view (and the filters holding
        them) first, so the local mapping can be fully released rather
        than lingering until process exit.
        """
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        role = "owner" if self.owner else "worker"
        return (
            f"ShardStore({self._shm.name}, {len(self.sections)} sections, "
            f"{self._shm.size} bytes, {role})"
        )
