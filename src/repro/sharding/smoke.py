"""CI scaling smoke: assert sharded bulk insert actually scales.

``python -m repro.sharding.smoke --shards 2 --min-speedup 1.3`` builds one
unsharded bulk GQF and one N-shard :class:`ShardedFilter` at the same
logical capacity, feeds both the same key batch, and fails (exit 1) unless
the sharded insert beats the unsharded one by the requested factor.  CI
runs it on a known-core-count runner, where the threshold is meaningful;
locally it is a quick sanity probe (``--min-speedup 0`` never fails).

The full 1/2/4/8 scaling curve with balance and parity expectations lives
in the ``sharding`` pipeline stage; this module is deliberately tiny so a
CI step can gate on one number without dragging the whole pipeline in.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

import numpy as np

from ..core.gqf.bulk_gqf import BulkGQF
from ..gpusim.stats import StatsRecorder
from .sharded import ShardedFilter


def _best_insert_seconds(build, keys: np.ndarray, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        filt = build()
        if isinstance(filt, ShardedFilter):
            filt.warm_up()
        start = time.perf_counter()
        filt.bulk_insert(keys)
        best = min(best, time.perf_counter() - start)
        if isinstance(filt, ShardedFilter):
            filt.close()
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--min-speedup", type=float, default=0.0)
    parser.add_argument("--keys", type=int, default=400_000)
    parser.add_argument("--lg", type=int, default=20, help="log2 of the logical slot count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20230225)
    args = parser.parse_args(argv)
    if args.shards < 1 or (args.shards & (args.shards - 1)) != 0:
        parser.error("--shards must be a power of two")
    shard_lg = args.lg - int(math.log2(args.shards))
    keys = np.random.default_rng(args.seed).integers(
        0, 2**63, size=args.keys, dtype=np.uint64
    )

    base_seconds = _best_insert_seconds(
        lambda: BulkGQF(
            quotient_bits=args.lg, remainder_bits=8, recorder=StatsRecorder()
        ),
        keys,
        args.repeats,
    )
    sharded_seconds = _best_insert_seconds(
        lambda: ShardedFilter(
            args.shards,
            BulkGQF,
            {"quotient_bits": shard_lg, "remainder_bits": 8},
            max_workers=args.shards,
        ),
        keys,
        args.repeats,
    )
    speedup = base_seconds / sharded_seconds if sharded_seconds > 0 else math.inf
    report = {
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "n_keys": args.keys,
        "unsharded_seconds": round(base_seconds, 6),
        "sharded_seconds": round(sharded_seconds, 6),
        "speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
        "ok": speedup >= args.min_speedup,
    }
    json.dump(report, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
