"""The per-process shard executor.

:func:`run_shard_task` is the only function a
:class:`~repro.sharding.sharded.ShardedFilter` submits to its
``ProcessPoolExecutor``.  Each worker process keeps one *twin* filter per
shard index: an empty filter built from the shard's snapshot config whose
tables are then **adopted** onto the shard's shared-memory segment — so
the twin is a zero-copy window onto the same table bytes the parent and
every sibling worker see.  Only the key batch travels to the worker and
only the operation result plus a hardware-event delta travel back.

Synchronisation contract (the parent never runs two tasks on one shard
concurrently):

1. ``refresh_shared()`` at task start — reload the scalar counters and
   drop memoised decodes, because another process may have mutated the
   tables since this worker's last task on the shard;
2. run the bulk operation (mutations write straight through to the
   segment);
3. ``flush_shared()`` at task end — publish the scalar counters, even
   when the operation failed mid-batch (partial inserts must stay
   accounted).

A capacity failure is returned as data (not raised): the parent re-raises
it as a :class:`~repro.core.exceptions.FilterFullError` enriched with the
shard's occupancy snapshot, or rebalances when auto-resize is on.  The
deterministic ``shard_worker_kill`` fault arrives pre-decided by the
parent's injector as ``spec["kill"]`` and terminates the worker process
before any mutation — exercising the pool-recovery and segment-leak-guard
paths without touching table state.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.base import AbstractFilter
from ..core.exceptions import FilterFullError
from ..gpusim.stats import StatsRecorder
from ..lifecycle.snapshot import _resolve_class
from .sharedmem import ShardStore

#: Exit status of an injected shard-worker kill (visible in pool diagnostics).
KILL_EXIT_CODE = 73

#: Per-process twin cache: shard index -> (segment name, store, twin).  One
#: pool serves one ShardedFilter, so the shard index is a stable key; a
#: changed segment name means the shard was rebalanced into a new segment
#: and the stale twin + mapping must be dropped.
_TWINS: Dict[int, Tuple[str, ShardStore, AbstractFilter]] = {}


def _twin_for(spec: Dict[str, object]) -> AbstractFilter:
    shard = int(spec["shard"])  # type: ignore[arg-type]
    handle = spec["handle"]
    shm_name = str(handle["shm_name"])  # type: ignore[index]
    cached = _TWINS.get(shard)
    if cached is not None and cached[0] == shm_name:
        return cached[2]
    if cached is not None:
        # Rebalanced shard: release the old twin before the old mapping so
        # the (already unlinked) segment can actually be reclaimed.
        _TWINS.pop(shard)
        del cached
    store = ShardStore.attach(handle)  # type: ignore[arg-type]
    cls = _resolve_class(str(spec["module"]), str(spec["name"]))
    config = dict(spec["config"])  # type: ignore[arg-type]
    twin = cls._from_snapshot_config(config, recorder=StatsRecorder())
    twin.adopt_state(store.views())
    _TWINS[shard] = (shm_name, store, twin)
    return twin


def _events_since(recorder: StatsRecorder, before: Dict[str, int]) -> Dict[str, int]:
    after = recorder.total.as_dict()
    return {name: after[name] - before[name] for name in after if after[name] != before[name]}


def run_shard_task(
    spec: Dict[str, object],
    op: str,
    keys: Optional[np.ndarray],
    values: Optional[np.ndarray],
) -> Dict[str, object]:
    """Execute one bulk operation against one shard (see module doc)."""
    if spec.get("kill"):
        # Injected worker death: before attach/mutation, so a retry of the
        # same batch cannot duplicate effects.  os._exit skips all cleanup,
        # like a real SIGKILL would.
        os._exit(KILL_EXIT_CODE)
    twin = _twin_for(spec)
    twin.refresh_shared()
    before = twin.recorder.total.as_dict()
    result: object = None
    error: Optional[Dict[str, object]] = None
    try:
        if op == "noop":
            result = True
        elif op == "insert":
            result = twin.bulk_insert(keys, values)
        elif op == "insert_mask":
            result = twin.bulk_insert_mask(keys, values)
        elif op == "query":
            result = twin.bulk_query(keys)
        elif op == "count":
            result = twin.bulk_count(keys)
        elif op == "delete":
            result = twin.bulk_delete(keys)
        else:
            raise ValueError(f"unknown shard operation {op!r}")
    except FilterFullError as exc:
        error = {"type": "filter_full", "message": exc.message}
    finally:
        twin.flush_shared()
    return {
        "shard": spec["shard"],
        "result": result,
        "events": _events_since(twin.recorder, before),
        "error": error,
    }
