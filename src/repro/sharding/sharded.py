"""A hash-partitioned filter running its shards across processes.

:class:`ShardedFilter` wraps N instances of one bulk filter class (the
bulk GQF or bulk TCF), routes every key to a shard with the deterministic
:mod:`~repro.sharding.router`, and executes bulk operations shard-parallel
on a ``ProcessPoolExecutor``.  Shard tables live in
``multiprocessing.shared_memory`` segments (:mod:`~repro.sharding.
sharedmem`) that worker processes adopt zero-copy, so **no table state is
ever pickled** — per operation, only the routed key batches travel to the
workers and only results plus hardware-event deltas travel back.  The
paper's MetaHipMer use case is exactly this shape: one logical k-mer set
too big for one table, spread over hash-disjoint partitions that never
need to coordinate per item.

Differential parity is the design's backbone, exactly as for every bulk
path before it (PRs 1-4): with one shard, the routed batch preserves the
caller's key order bit for bit, so a 1-shard :class:`ShardedFilter` must
produce the identical table state *and* the identical hardware-event
counts as the unsharded filter; with N shards, each shard must equal an
unsharded filter fed that shard's keys.  ``tests/test_sharding.py`` pins
both.

Execution and failure model
---------------------------
* At most one task per shard is ever in flight (bulk calls dispatch one
  task per shard and wait), so shard tables need no cross-process locks.
* A worker that dies (e.g. the deterministic ``shard_worker_kill`` fault)
  breaks the pool; the filter rebuilds the pool and retries each
  unfinished shard once.  The injected kill fires *before* any mutation,
  making the retry exact; a real mid-batch crash makes the retry
  at-least-once (counts may inflate, membership is preserved) — the same
  contract as the service's journal replay.
* ``close()`` shuts the pool down and unlinks every segment; a finalizer
  on each segment is the backstop when ``close()`` is never called.

Resizing (``auto_resize=True``) *rebalances in place*: before an insert
batch is dispatched, any shard whose projected occupancy crosses the
threshold is expanded through :func:`repro.lifecycle.resize.expand` —
quotient extension for the GQF family, journal replay for the TCF (the
journal lives in the parent, since a variable-size dict cannot inhabit a
fixed shared segment) — and rebound to a fresh, larger segment.  Shard
*count* is fixed for life: the TCF's fingerprints are not invertible, so
keys can never be re-routed between shards; this matches the paper's
observation that fingerprint filters cannot re-partition themselves.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type, Union

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities
from ..core.exceptions import FilterFullError, UnsupportedOperationError
from ..core.tcf.lifecycle import TCFLifecycle
from ..gpusim.stats import StatsRecorder
from ..lifecycle.merge import merge
from ..lifecycle.resize import expand
from ..lifecycle.snapshot import _resolve_class
from .router import DEFAULT_ROUTER_SEED, partition, shard_ids
from .sharedmem import ShardStore
from .worker import run_shard_task

_MASK64 = 0xFFFFFFFFFFFFFFFF


# ------------------------------------------------------------------ journals
# Parent-side key journals for sharded TCFs (mirrors TCFLifecycle's journal
# semantics; plain helpers so the dict can live outside the filter object).
def _journal_add(journal: Dict[int, List[int]], keys: np.ndarray, values: np.ndarray) -> None:
    for key, value in zip(keys.tolist(), values.tolist()):
        journal.setdefault(key & _MASK64, []).append(value)


def _journal_remove(journal: Dict[int, List[int]], keys: np.ndarray) -> None:
    for key in keys.tolist():
        stored = journal.get(key & _MASK64)
        if stored:
            stored.pop()
            if not stored:
                del journal[key & _MASK64]


def _journal_arrays(journal: Dict[int, List[int]]) -> Tuple[np.ndarray, np.ndarray]:
    total = sum(len(values) for values in journal.values())
    keys = np.empty(total, dtype=np.uint64)
    values = np.empty(total, dtype=np.uint64)
    cursor = 0
    for key, stored in journal.items():
        for value in stored:
            keys[cursor] = key
            values[cursor] = value
            cursor += 1
    return keys, values


def _execute_op(
    filt: AbstractFilter,
    op: str,
    keys: Optional[np.ndarray],
    values: Optional[np.ndarray],
) -> object:
    """The shared op switch (used verbatim by workers and inline mode)."""
    if op == "noop":
        return True
    if op == "insert":
        return filt.bulk_insert(keys, values)
    if op == "insert_mask":
        return filt.bulk_insert_mask(keys, values)
    if op == "query":
        return filt.bulk_query(keys)
    if op == "count":
        return filt.bulk_count(keys)
    if op == "delete":
        return filt.bulk_delete(keys)
    raise ValueError(f"unknown shard operation {op!r}")


class ShardedFilter(AbstractFilter):
    """N hash-disjoint shards of one bulk filter class, run shard-parallel.

    Parameters
    ----------
    n_shards:
        Number of partitions (fixed for the filter's lifetime).
    inner:
        The shard filter class (e.g. ``BulkGQF``/``BulkTCF``) or its
        ``"module:ClassName"`` spelling; must support shared-state adoption
        (``adopt_state``/``refresh_shared``/``flush_shared``).
    inner_config:
        ``snapshot_config``-shaped constructor kwargs for **one shard** —
        size shards at ``1/n_shards`` of the logical capacity.
    recorder:
        Parent stats recorder; worker event deltas merge into it, so the
        sharded event accounting matches the unsharded accounting.
    auto_resize / auto_resize_at:
        Enable in-place per-shard rebalancing past the load threshold
        (defaults to the shard design's recommended load factor).
    router_seed:
        Routing-hash seed (recorded in snapshots; change it and a restored
        filter would route keys to the wrong shards).
    max_workers:
        Pool width; ``None`` means ``min(n_shards, cpu_count)``; ``0``
        runs shard tasks inline in the parent process (no pool — useful
        for debugging and for the differential tests' tight loops).
    faults:
        Optional fault injector providing ``on_shard_task(token) -> bool``
        (the service's ``shard_worker_kill`` site).
    shard_configs:
        Per-shard config overrides (used by snapshot restore, where
        rebalanced shards may have diverged geometries).
    """

    name = "Sharded"
    bulk_insert_atomic = False

    def __init__(
        self,
        n_shards: int,
        inner: Union[str, Type[AbstractFilter]],
        inner_config: Dict[str, object],
        recorder: Optional[StatsRecorder] = None,
        auto_resize: bool = False,
        auto_resize_at: Optional[float] = None,
        router_seed: int = DEFAULT_ROUTER_SEED,
        max_workers: Optional[int] = None,
        faults: Optional[object] = None,
        shard_configs: Optional[Sequence[Dict[str, object]]] = None,
    ) -> None:
        super().__init__(recorder)
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if isinstance(inner, str):
            module, _, cls_name = inner.partition(":")
            inner = _resolve_class(module, cls_name)
        for hook in ("adopt_state", "refresh_shared", "flush_shared"):
            if not hasattr(inner, hook):
                raise TypeError(
                    f"{inner.__name__} has no {hook}() and cannot back a "
                    f"shared-memory shard"
                )
        if not inner.capabilities().supports("insert", "bulk"):
            raise TypeError(f"{inner.__name__} has no bulk insert path to shard")
        self.n_shards = int(n_shards)
        self._inner_class = inner
        self.router_seed = int(router_seed)
        self.auto_resize = bool(auto_resize)
        self.faults = faults
        if shard_configs is not None and len(shard_configs) != self.n_shards:
            raise ValueError(
                f"{len(shard_configs)} shard configs for {self.n_shards} shards"
            )
        base = dict(inner_config)
        # Shards must never grow *inside* a worker: in-place growth would
        # reallocate the table off its shared segment.  Rebalancing is the
        # parent's job (see _expand_shard).
        base["auto_resize"] = False
        self.inner_config = base
        configs = (
            [dict(cfg) for cfg in shard_configs]
            if shard_configs is not None
            else [dict(base) for _ in range(self.n_shards)]
        )
        self._twins: List[AbstractFilter] = []
        self._stores: List[ShardStore] = []
        self._configs: List[Dict[str, object]] = []
        for cfg in configs:
            cfg = dict(cfg)
            cfg["auto_resize"] = False
            twin = inner._from_snapshot_config(cfg, recorder=self.recorder)
            store = ShardStore.allocate(twin.snapshot_state())
            twin.adopt_state(store.views())
            self._twins.append(twin)
            self._stores.append(store)
            self._configs.append(cfg)
        self.auto_resize_at = float(
            self._twins[0].recommended_load_factor
            if auto_resize_at is None
            else auto_resize_at
        )
        if not 0.0 < self.auto_resize_at <= 1.0:
            raise ValueError("auto_resize_at must be in (0, 1]")
        #: Parent-side key journals (TCF shards only): a TCF cannot re-derive
        #: its keys from its slots, so rebalancing needs them journaled here.
        self._journals: Optional[List[Dict[int, List[int]]]] = (
            [{} for _ in range(self.n_shards)]
            if self.auto_resize and isinstance(self._twins[0], TCFLifecycle)
            else None
        )
        self._max_workers = (
            min(self.n_shards, os.cpu_count() or 1)
            if max_workers is None
            else int(max_workers)
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False
        self._op_seq = 0
        self.n_rebalances = 0
        self.worker_restarts = 0

    # ------------------------------------------------------------------ meta
    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        # The wrapper's own surface; per-instance support additionally
        # requires the shard class to support the operation (see
        # inner_capabilities).
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=True,
            bulk_count=True,
            values=True,
            resizable=True,
        )

    @property
    def inner_capabilities(self) -> FilterCapabilities:
        return self._inner_class.capabilities()

    # ----------------------------------------------------------------- sizes
    def _refresh_all(self) -> None:
        for twin in self._twins:
            twin.refresh_shared()

    @property
    def capacity(self) -> int:
        self._refresh_all()
        return sum(t.capacity for t in self._twins)

    @property
    def n_slots(self) -> int:
        self._refresh_all()
        return sum(t.n_slots for t in self._twins)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._twins)

    @property
    def n_items(self) -> int:
        self._refresh_all()
        return sum(t.n_items for t in self._twins)

    @property
    def n_occupied_slots(self) -> int:
        self._refresh_all()
        return sum(t.n_occupied_slots for t in self._twins)

    @property
    def recommended_load_factor(self) -> float:
        return self._twins[0].recommended_load_factor

    @property
    def false_positive_rate(self) -> float:
        return max(t.false_positive_rate for t in self._twins)

    def shard_items(self) -> List[int]:
        """Per-shard logical item counts (the balance diagnostic)."""
        self._refresh_all()
        return [t.n_items for t in self._twins]

    # ------------------------------------------------------------- dispatch
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the sharded filter is closed")

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=max(1, self._max_workers))
        return self._pool

    def _recycle_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.worker_restarts += 1

    def _task_spec(self, i: int, kill: bool) -> Dict[str, object]:
        return {
            "shard": i,
            "handle": self._stores[i].handle(),
            "module": self._inner_class.__module__,
            "name": self._inner_class.__qualname__,
            "config": self._configs[i],
            "kill": kill,
        }

    def _run_inline(
        self,
        op: str,
        i: int,
        keys: Optional[np.ndarray],
        values: Optional[np.ndarray],
    ) -> Dict[str, object]:
        twin = self._twins[i]
        twin.refresh_shared()
        result: object = None
        error: Optional[Dict[str, object]] = None
        try:
            result = _execute_op(twin, op, keys, values)
        except FilterFullError as exc:
            error = {"type": "filter_full", "message": exc.message}
        finally:
            twin.flush_shared()
        return {"shard": i, "result": result, "error": error, "events": {}}

    def _dispatch(
        self,
        op: str,
        batches: Dict[int, Tuple[Optional[np.ndarray], Optional[np.ndarray]]],
    ) -> Dict[int, Dict[str, object]]:
        """Run one task per shard; returns each shard's result record.

        Worker deaths (``BrokenProcessPool``) recycle the pool and retry
        each unfinished shard once; shard tables live in parent-owned
        segments, so a dead worker loses no state.
        """
        self._op_seq += 1
        if self._max_workers == 0:
            return {i: self._run_inline(op, i, k, v) for i, (k, v) in batches.items()}
        outs: Dict[int, Dict[str, object]] = {}
        pending = dict(batches)
        for attempt in range(2):
            pool = self._ensure_pool()
            futures = {}
            for i, (keys, values) in pending.items():
                kill = bool(
                    attempt == 0
                    and self.faults is not None
                    and self.faults.on_shard_task(f"{self._op_seq}:{i}")
                )
                futures[i] = pool.submit(
                    run_shard_task, self._task_spec(i, kill), op, keys, values
                )
            broken = False
            for i, future in futures.items():
                try:
                    record = future.result()
                except BrokenProcessPool:
                    broken = True
                    continue
                outs[i] = record
                self.recorder.add(**record["events"])
            pending = {i: pending[i] for i in pending if i not in outs}
            if not pending:
                return outs
            if broken:
                self._recycle_pool()
        raise RuntimeError(
            f"shard worker pool died twice running {op!r} on shards "
            f"{sorted(pending)}; giving up"
        )

    def _raise_full(self, i: int, message: str) -> None:
        twin = self._twins[i]
        twin.refresh_shared()
        raise FilterFullError(
            f"shard {i}/{self.n_shards}: {message}",
            n_items=twin.n_items,
            n_slots=twin.n_slots,
            load_factor=twin.load_factor,
        )

    def warm_up(self) -> None:
        """Spin the worker pool up (and fault in the twins) ahead of timing."""
        with self._lock:
            self._check_open()
            self._dispatch("noop", {i: (None, None) for i in range(self.n_shards)})

    # ------------------------------------------------------------ rebalance
    def _expand_shard(self, i: int, extra_quotient_bits: int = 1) -> None:
        """Grow shard ``i`` and rebind it onto a fresh, larger segment."""
        twin = self._twins[i]
        twin.refresh_shared()
        if self._journals is not None:
            # TCF: lend the parent-held journal to the twin for the rebuild,
            # then detach it again (a dict cannot live in the fixed segment).
            twin._journal = self._journals[i]
            try:
                expand(twin, extra_quotient_bits)
            finally:
                twin._journal = None
            twin._shared_scalars = None
            new_twin = twin
        else:
            new_twin = expand(twin, extra_quotient_bits)
        new_store = ShardStore.allocate(new_twin.snapshot_state())
        new_twin.adopt_state(new_store.views())
        old_store = self._stores[i]
        self._twins[i] = new_twin
        self._stores[i] = new_store
        config = dict(new_twin.snapshot_config())
        config["auto_resize"] = False
        self._configs[i] = config
        self.n_rebalances += 1
        old_store.close()

    def _pre_grow(self, incoming: np.ndarray) -> None:
        """Expand shards whose projected occupancy crosses the threshold."""
        for i in range(self.n_shards):
            twin = self._twins[i]
            twin.refresh_shared()
            while (
                twin.n_occupied_slots + int(incoming[i])
                >= self.auto_resize_at * twin.n_slots
            ):
                self._expand_shard(i)
                twin = self._twins[i]

    def rebalance(self, extra_quotient_bits: int = 1) -> None:
        """Expand every shard (manual rebalance; auto mode does it lazily)."""
        with self._lock:
            self._check_open()
            for i in range(self.n_shards):
                self._expand_shard(i, extra_quotient_bits)

    def resized(self, extra_quotient_bits: int = 1) -> "ShardedFilter":
        """Grow in place and return self (the lifecycle ``expand`` hook).

        Unlike the GQF's out-of-place ``resized``, the sharded filter
        rebalances its own segments; returning ``self`` keeps
        ``lifecycle.expand(service_entry.filt)`` working unchanged.
        """
        self.rebalance(extra_quotient_bits)
        return self

    # ------------------------------------------------------------- bulk API
    def _partition(
        self, keys: np.ndarray, values: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray, Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]]]:
        order, offsets = partition(keys, self.n_shards, self.router_seed)
        routed = keys[order]
        routed_values = values[order] if values is not None else None
        batches: Dict[int, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        for i in range(self.n_shards):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            if hi > lo:
                batches[i] = (
                    routed[lo:hi],
                    routed_values[lo:hi] if routed_values is not None else None,
                )
        return order, offsets, batches

    def bulk_insert(
        self, keys: Sequence[int], values: Optional[Sequence[int]] = None
    ) -> int:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        if values is not None:
            values = np.ascontiguousarray(values, dtype=np.uint64)
        with self._lock:
            self._check_open()
            if self.auto_resize:
                counts = np.bincount(
                    shard_ids(keys, self.n_shards, self.router_seed),
                    minlength=self.n_shards,
                )
                self._pre_grow(counts)
            _order, _offsets, batches = self._partition(keys, values)
            outs = self._dispatch("insert", batches)
            inserted = 0
            for i, record in outs.items():
                shard_keys, shard_values = batches[i]
                if record["error"] is None:
                    inserted += int(record["result"])
                    if self._journals is not None:
                        _journal_add(
                            self._journals[i],
                            shard_keys,
                            shard_values
                            if shard_values is not None
                            else np.zeros(shard_keys.size, dtype=np.uint64),
                        )
                    continue
                if not self.auto_resize:
                    self._raise_full(i, str(record["error"]["message"]))
                # Pre-growth should make this unreachable; if cluster skew
                # still filled the shard, expand it and retry the shard's
                # batch through the graceful mask path.  Keys the failed
                # attempt already placed are re-applied — at-least-once
                # semantics (counts may inflate, membership is exact), the
                # same contract as the service's journal replay.
                self._expand_shard(i)
                retry = self._dispatch("insert_mask", {i: batches[i]})[i]
                if retry["error"] is not None:
                    self._raise_full(i, str(retry["error"]["message"]))
                mask = np.asarray(retry["result"], dtype=bool)
                inserted += int(np.count_nonzero(mask))
                if self._journals is not None:
                    _journal_add(
                        self._journals[i],
                        shard_keys[mask],
                        (
                            shard_values
                            if shard_values is not None
                            else np.zeros(shard_keys.size, dtype=np.uint64)
                        )[mask],
                    )
            return inserted

    def bulk_insert_mask(
        self, keys: Sequence[int], values: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        if values is not None:
            values = np.ascontiguousarray(values, dtype=np.uint64)
        with self._lock:
            self._check_open()
            order, offsets, batches = self._partition(keys, values)
            outs = self._dispatch("insert_mask", batches)
            mask = np.zeros(keys.size, dtype=bool)
            routed_mask = np.zeros(keys.size, dtype=bool)
            for i, record in outs.items():
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                shard_mask = np.asarray(record["result"], dtype=bool)
                routed_mask[lo:hi] = shard_mask
                if self._journals is not None:
                    shard_keys, shard_values = batches[i]
                    _journal_add(
                        self._journals[i],
                        shard_keys[shard_mask],
                        (
                            shard_values
                            if shard_values is not None
                            else np.zeros(shard_keys.size, dtype=np.uint64)
                        )[shard_mask],
                    )
            mask[order] = routed_mask
            return mask

    def _gather(self, op: str, keys: Sequence[int], dtype) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=dtype)
        with self._lock:
            self._check_open()
            order, offsets, batches = self._partition(keys, None)
            outs = self._dispatch(op, batches)
            routed = np.zeros(keys.size, dtype=dtype)
            for i, record in outs.items():
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                routed[lo:hi] = np.asarray(record["result"], dtype=dtype)
            out = np.zeros(keys.size, dtype=dtype)
            out[order] = routed
            return out

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        return self._gather("query", keys, bool)

    def bulk_count(self, keys: Sequence[int]) -> np.ndarray:
        if not self.inner_capabilities.supports("count", "bulk"):
            raise UnsupportedOperationError(
                f"{self._inner_class.__name__} shards do not support counting"
            )
        return self._gather("count", keys, np.int64)

    def bulk_delete(self, keys: Sequence[int]) -> int:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        with self._lock:
            self._check_open()
            _order, _offsets, batches = self._partition(keys, None)
            outs = self._dispatch("delete", batches)
            removed = 0
            for i, record in outs.items():
                removed += int(record["result"])
                if self._journals is not None:
                    _journal_remove(self._journals[i], batches[i][0])
            return removed

    # ------------------------------------------------------------- point API
    def _shard_of(self, key: int) -> int:
        return int(shard_ids(np.array([key], dtype=np.uint64), self.n_shards,
                             self.router_seed)[0])

    def _local_op(self, key: int, fn_name: str, *args):
        """Run a point operation on the owning shard, in-process.

        The parent's twins are adopted onto the same segments the workers
        use, so point operations are plain in-process calls — refresh the
        scalars first, flush them after.
        """
        twin = self._twins[self._shard_of(int(key))]
        twin.refresh_shared()
        try:
            return getattr(twin, fn_name)(int(key), *args)
        finally:
            twin.flush_shared()

    def insert(self, key: int, value: int = 0) -> bool:
        with self._lock:
            self._check_open()
            i = self._shard_of(int(key))
            if self.auto_resize:
                incoming = np.zeros(self.n_shards, dtype=np.int64)
                incoming[i] = 1
                self._pre_grow(incoming)
            ok = bool(self._local_op(key, "insert", value))
            if ok and self._journals is not None:
                _journal_add(
                    self._journals[i],
                    np.array([key], dtype=np.uint64),
                    np.array([value], dtype=np.uint64),
                )
            return ok

    def query(self, key: int) -> bool:
        with self._lock:
            self._check_open()
            return bool(self._local_op(key, "query"))

    def count(self, key: int) -> int:
        with self._lock:
            self._check_open()
            return int(self._local_op(key, "count"))

    def delete(self, key: int) -> bool:
        with self._lock:
            self._check_open()
            removed = bool(self._local_op(key, "delete"))
            if removed and self._journals is not None:
                _journal_remove(
                    self._journals[self._shard_of(int(key))],
                    np.array([key], dtype=np.uint64),
                )
            return removed

    def get_value(self, key: int) -> Optional[int]:
        with self._lock:
            self._check_open()
            return self._local_op(key, "get_value")

    # --------------------------------------------------------------- merging
    def merged(self, recorder: Optional[StatsRecorder] = None) -> AbstractFilter:
        """Collapse the shards into one unsharded filter (k-way merge)."""
        self._refresh_all()
        if self.n_shards == 1:
            twin = self._twins[0]
            out = self._inner_class._from_snapshot_config(
                dict(twin.snapshot_config()),
                recorder=recorder if recorder is not None else StatsRecorder(),
            )
            out.restore_state(twin.snapshot_state())
            return out
        return merge(*self._twins, recorder=recorder)

    # -------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> Dict[str, object]:
        return {
            "n_shards": self.n_shards,
            "inner_module": self._inner_class.__module__,
            "inner_name": self._inner_class.__qualname__,
            "inner_config": dict(self.inner_config),
            "shard_configs": [dict(cfg) for cfg in self._configs],
            "auto_resize": self.auto_resize,
            "auto_resize_at": self.auto_resize_at,
            "router_seed": self.router_seed,
            "max_workers": self._max_workers,
        }

    @classmethod
    def _from_snapshot_config(
        cls, config: Mapping, recorder: Optional[StatsRecorder] = None
    ) -> "ShardedFilter":
        return cls(
            config["n_shards"],
            f"{config['inner_module']}:{config['inner_name']}",
            dict(config["inner_config"]),
            recorder=recorder,
            auto_resize=config.get("auto_resize", False),
            auto_resize_at=config.get("auto_resize_at"),
            router_seed=config.get("router_seed", DEFAULT_ROUTER_SEED),
            max_workers=config.get("max_workers"),
            shard_configs=config.get("shard_configs"),
        )

    def snapshot_state(self) -> Dict[str, np.ndarray]:
        self._refresh_all()
        state: Dict[str, np.ndarray] = {}
        for i, twin in enumerate(self._twins):
            for name, array in twin.snapshot_state().items():
                state[f"shard{i}/{name}"] = array
            if self._journals is not None:
                journal_keys, journal_values = _journal_arrays(self._journals[i])
                state[f"shard{i}/journal_keys"] = journal_keys
                state[f"shard{i}/journal_values"] = journal_values
        return state

    def restore_state(self, state: Mapping[str, np.ndarray]) -> None:
        for i, twin in enumerate(self._twins):
            prefix = f"shard{i}/"
            sub = {
                name[len(prefix):]: array
                for name, array in state.items()
                if name.startswith(prefix)
            }
            journal_keys = sub.pop("journal_keys", None)
            journal_values = sub.pop("journal_values", None)
            twin.restore_state(sub)
            if self._journals is not None:
                self._journals[i] = {}
                if journal_keys is not None:
                    _journal_add(
                        self._journals[i],
                        np.asarray(journal_keys, dtype=np.uint64),
                        np.asarray(journal_values, dtype=np.uint64),
                    )

    # --------------------------------------------------------------- teardown
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
            # Drop the adopted views before unlinking so the mappings can
            # be released immediately rather than at process exit.
            self._twins = []
            stores, self._stores = self._stores, []
            for store in stores:
                store.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self._closed:
            return f"ShardedFilter(n_shards={self.n_shards}, closed)"
        return (
            f"ShardedFilter(n_shards={self.n_shards}, "
            f"inner={self._inner_class.__name__}, items={self.n_items})"
        )
