"""Process-parallel sharded filters (PR 10).

Hash-partitions one logical filter across N shard tables held in
``multiprocessing.shared_memory`` and runs bulk operations shard-parallel
on a process pool — the multi-GPU/multi-rank usage shape of the paper's
MetaHipMer case study, rebuilt on host processes.
"""

from .router import DEFAULT_ROUTER_SEED, partition, shard_ids
from .sharded import ShardedFilter
from .sharedmem import SectionSpec, ShardStore, layout_sections
from .worker import KILL_EXIT_CODE, run_shard_task

__all__ = [
    "DEFAULT_ROUTER_SEED",
    "KILL_EXIT_CODE",
    "SectionSpec",
    "ShardStore",
    "ShardedFilter",
    "layout_sections",
    "partition",
    "run_shard_task",
    "shard_ids",
    "sharded_gqf",
    "sharded_tcf",
]


def sharded_gqf(
    n_shards,
    quotient_bits,
    remainder_bits=8,
    **kwargs,
):
    """Convenience builder: a ShardedFilter over BulkGQF shards.

    ``quotient_bits`` is per shard — size it ``lg(capacity) - lg(n_shards)``
    to hold a given logical capacity.
    """
    return ShardedFilter(
        n_shards,
        "repro.core.gqf.bulk_gqf:BulkGQF",
        {"quotient_bits": quotient_bits, "remainder_bits": remainder_bits},
        **kwargs,
    )


def sharded_tcf(n_shards, n_slots, config=None, **kwargs):
    """Convenience builder: a ShardedFilter over BulkTCF shards.

    ``n_slots`` is per shard; ``config`` (a :class:`TCFConfig` or its dict
    form) defaults to the same ``BULK_TCF_DEFAULT`` the unsharded
    :class:`BulkTCF` uses, keeping 1-shard differential parity bit-exact.
    """
    import dataclasses

    from ..core.tcf.bulk_tcf import BULK_TCF_DEFAULT
    from ..core.tcf.config import TCFConfig

    if config is None:
        config = BULK_TCF_DEFAULT
    if isinstance(config, TCFConfig):
        config = dataclasses.asdict(config)
    return ShardedFilter(
        n_shards,
        "repro.core.tcf.bulk_tcf:BulkTCF",
        {"n_slots": n_slots, "config": dict(config)},
        **kwargs,
    )
