"""Shared bulk-path routing policy for the baseline filters.

Every baseline's bulk entry point computes whole batches with NumPy array
operations but keeps the per-item code for tiny batches, where staging
whole-table views costs more than it saves — the same crossover the bulk
TCF (``TCF_SEQUENTIAL_BATCH_MAX``) and bulk GQF
(:data:`repro.core.gqf.layout.SEQUENTIAL_BATCH_MAX`) already use.  The
per-item route doubles as the differential-testing reference: the
vectorised paths are pinned to it bit-for-bit (state *and* simulated
hardware events) by ``tests/test_baselines_vectorized.py``.
"""

#: Batches at or below this size route through the per-item code path.
SEQUENTIAL_BATCH_MAX = 32


def prefers_sequential(batch_size: int) -> bool:
    """Whether a batch is too small to amortise the whole-batch staging."""
    return batch_size <= SEQUENTIAL_BATCH_MAX
