"""Blocked Bloom filter baseline (WarpCore-style).

A blocked Bloom filter is a series of tiny Bloom filters, each sized to one
GPU cache line (128 bytes = 1024 bits).  The first hash selects the block;
the remaining hashes set/test bits *inside* that block, so every operation is
a single cache-line transaction plus ``k`` cheap atomic ORs — the best
possible fit to the GPU design principles of Section 3.

The price is accuracy: concentrating an item's bits in one line raises the
false-positive rate by roughly 5-6x over a standard Bloom filter with the
same bits per item (Table 2 reports 1 % vs 0.15 % at 10.1/9.73 BPI), and the
filter still supports neither deletes nor counts.  The paper takes the
implementation from Jünger et al.'s WarpCore and tunes it per the authors'
recommendation; this reproduction follows the same layout.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities
from ..core.exceptions import UnsupportedOperationError
from ..gpusim.atomics import atomic_or
from ..gpusim.kernel import KernelContext, point_launch
from ..gpusim.memory import DeviceArray
from ..gpusim.stats import StatsRecorder
from ..hashing.mixers import hash_with_seed, murmur64_mix

#: One block spans a GPU cache line: 128 bytes = 1024 bits = 32 uint32 words.
BLOCK_BITS = 1024
BLOCK_WORDS = BLOCK_BITS // 32

#: Bits per item used in the paper's evaluation (Table 2).
PAPER_BITS_PER_ITEM = 9.73
#: Number of in-block hash functions used in the paper's evaluation.
PAPER_NUM_HASHES = 7


class BlockedBloomFilter(AbstractFilter):
    """Cache-line-blocked Bloom filter with a point API.

    Parameters
    ----------
    n_blocks:
        Number of 1024-bit blocks.
    n_hashes:
        Number of bits set/tested inside the selected block.
    recorder:
        Optional stats recorder.
    """

    name = "BBF"

    def __init__(
        self,
        n_blocks: int,
        n_hashes: int = PAPER_NUM_HASHES,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if n_hashes <= 0:
            raise ValueError("n_hashes must be positive")
        self.n_blocks = int(n_blocks)
        self.n_hashes = int(n_hashes)
        self.words = DeviceArray(
            self.n_blocks * BLOCK_WORDS, np.uint32, self.recorder, name="bbf-bits"
        )
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        bits_per_item: float = PAPER_BITS_PER_ITEM,
        n_hashes: int = PAPER_NUM_HASHES,
        recorder: Optional[StatsRecorder] = None,
    ) -> "BlockedBloomFilter":
        n_bits = max(BLOCK_BITS, int(np.ceil(n_items * bits_per_item)))
        n_blocks = (n_bits + BLOCK_BITS - 1) // BLOCK_BITS
        return cls(n_blocks, n_hashes, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=False,
            bulk_delete=False,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_items: int, bits_per_item: float = PAPER_BITS_PER_ITEM) -> int:
        return int(np.ceil(n_items * bits_per_item / 8.0))

    # ------------------------------------------------------------------- sizes
    @property
    def n_bits(self) -> int:
        return self.n_blocks * BLOCK_BITS

    @property
    def capacity(self) -> int:
        return int(self.n_bits / PAPER_BITS_PER_ITEM)

    @property
    def n_slots(self) -> int:
        return self.n_bits

    @property
    def nbytes(self) -> int:
        return self.n_bits // 8

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / max(1, self.capacity)

    @property
    def recommended_load_factor(self) -> float:
        return 1.0

    @property
    def false_positive_rate(self) -> float:
        """Analytical blocked-Bloom FP rate at the current fill.

        All of an item's bits land in one 64-bit lane, so the relevant unit
        is the lane: the FP rate is the Poisson-weighted average of per-lane
        Bloom FP rates.  Lanes that happen to receive more items than average
        dominate, which is the source of the several-fold penalty over the
        flat Bloom filter that Table 2 reports.
        """
        if self._n_items == 0:
            return 0.0
        from scipy import stats as sp_stats

        n_lanes = self.n_blocks * (BLOCK_BITS // 64)
        lam = self._n_items / n_lanes
        k = self.n_hashes
        max_n = int(lam + 10 * np.sqrt(lam) + 10)
        ns = np.arange(0, max_n)
        weights = sp_stats.poisson.pmf(ns, lam)
        per_lane = (1.0 - np.exp(-k * ns / 64.0)) ** k
        return float(np.sum(weights * per_lane))

    # ---------------------------------------------------------------- probing
    def _block_and_bits(self, key: int) -> tuple[int, np.ndarray]:
        """Select the cache-line block, a 64-bit lane inside it, and k bits.

        Following the WarpCore design the paper takes its BBF from, all ``k``
        bits of an item land in a single 64-bit word of the selected block:
        this makes the insert a single atomic OR, but concentrates the item's
        bits so much that the false-positive rate rises by several times over
        a flat Bloom filter with the same bits per item (Table 2).
        """
        key = np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF)
        mixed = int(murmur64_mix(key))
        block = mixed % self.n_blocks
        lane = (mixed >> 32) % (BLOCK_BITS // 64)
        bits = np.empty(self.n_hashes, dtype=np.int64)
        for seed in range(self.n_hashes):
            bits[seed] = lane * 64 + int(hash_with_seed(key, seed + 101)) % 64
        return block, bits

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        """Set ``k`` bits inside one cache-line block (one line touched)."""
        if value:
            raise UnsupportedOperationError("blocked Bloom filters cannot store values")
        block, bits = self._block_and_bits(key)
        base = block * BLOCK_WORDS
        # One coalesced read of the block, then k atomics within the line.
        self.words.read_range(base, base + BLOCK_WORDS)
        touched_words = np.unique(bits // 32)
        for word in touched_words:
            mask = np.uint32(0)
            for bit in bits[bits // 32 == word]:
                mask |= np.uint32(1) << np.uint32(int(bit) % 32)
            atomic_or(self.words, base + int(word), mask)
        self._n_items += 1
        return True

    def query(self, key: int) -> bool:
        """Test ``k`` bits inside one block (single cache-line read)."""
        block, bits = self._block_and_bits(key)
        base = block * BLOCK_WORDS
        words = self.words.read_range(base, base + BLOCK_WORDS)
        for bit in bits:
            word = int(bit) // 32
            if not (int(words[word]) >> (int(bit) % 32)) & 1:
                return False
        return True

    def delete(self, key: int) -> bool:
        raise UnsupportedOperationError("blocked Bloom filters do not support deletion")

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("blocked Bloom filters do not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("blocked Bloom filters cannot store values")

    # ---------------------------------------------------------------- bulk API
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        with self.kernels.launch("bbf_bulk_insert", point_launch(keys.size, 1)):
            for key in keys:
                self.insert(int(key))
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        with self.kernels.launch("bbf_bulk_query", point_launch(keys.size, 1)):
            for i, key in enumerate(keys):
                out[i] = self.query(int(key))
        return out

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        return n_ops
