"""Blocked Bloom filter baseline (WarpCore-style).

A blocked Bloom filter is a series of tiny Bloom filters, each sized to one
GPU cache line (128 bytes = 1024 bits).  The first hash selects the block;
the remaining hashes set/test bits *inside* that block, so every operation is
a single cache-line transaction plus ``k`` cheap atomic ORs — the best
possible fit to the GPU design principles of Section 3.

The price is accuracy: concentrating an item's bits in one line raises the
false-positive rate by roughly 5-6x over a standard Bloom filter with the
same bits per item (Table 2 reports 1 % vs 0.15 % at 10.1/9.73 BPI), and the
filter still supports neither deletes nor counts.  The paper takes the
implementation from Jünger et al.'s WarpCore and tunes it per the authors'
recommendation; this reproduction follows the same layout.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities, restore_array
from ..core.exceptions import UnsupportedOperationError
from ..gpusim.atomics import atomic_or
from ..gpusim.kernel import KernelContext, point_launch
from ..gpusim.memory import DeviceArray
from ..gpusim.stats import StatsRecorder
from ..hashing.mixers import hash_with_seed, hash_with_seeds, murmur64_mix
from ._batching import prefers_sequential

#: One block spans a GPU cache line: 128 bytes = 1024 bits = 32 uint32 words.
BLOCK_BITS = 1024
BLOCK_WORDS = BLOCK_BITS // 32

#: Bits per item used in the paper's evaluation (Table 2).
PAPER_BITS_PER_ITEM = 9.73
#: Number of in-block hash functions used in the paper's evaluation.
PAPER_NUM_HASHES = 7


class BlockedBloomFilter(AbstractFilter):
    """Cache-line-blocked Bloom filter with a point API.

    Parameters
    ----------
    n_blocks:
        Number of 1024-bit blocks.
    n_hashes:
        Number of bits set/tested inside the selected block.
    recorder:
        Optional stats recorder.
    """

    name = "BBF"

    def __init__(
        self,
        n_blocks: int,
        n_hashes: int = PAPER_NUM_HASHES,
        recorder: Optional[StatsRecorder] = None,
        bits_per_item: float = PAPER_BITS_PER_ITEM,
    ) -> None:
        super().__init__(recorder)
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if n_hashes <= 0:
            raise ValueError("n_hashes must be positive")
        if bits_per_item <= 0:
            raise ValueError("bits_per_item must be positive")
        self.n_blocks = int(n_blocks)
        self.n_hashes = int(n_hashes)
        #: Bits-per-item budget the filter was sized with (drives
        #: :attr:`capacity`; ``bits_per_item`` itself is the measured metric).
        self.sizing_bits_per_item = float(bits_per_item)
        self.words = DeviceArray(
            self.n_blocks * BLOCK_WORDS, np.uint32, self.recorder, name="bbf-bits"
        )
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        bits_per_item: float = PAPER_BITS_PER_ITEM,
        n_hashes: int = PAPER_NUM_HASHES,
        recorder: Optional[StatsRecorder] = None,
    ) -> "BlockedBloomFilter":
        n_bits = max(BLOCK_BITS, int(np.ceil(n_items * bits_per_item)))
        n_blocks = (n_bits + BLOCK_BITS - 1) // BLOCK_BITS
        return cls(n_blocks, n_hashes, recorder, bits_per_item=bits_per_item)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=False,
            bulk_delete=False,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_items: int, bits_per_item: float = PAPER_BITS_PER_ITEM) -> int:
        return int(np.ceil(n_items * bits_per_item / 8.0))

    # ------------------------------------------------------------------- sizes
    @property
    def n_bits(self) -> int:
        return self.n_blocks * BLOCK_BITS

    @property
    def capacity(self) -> int:
        """Items the filter was sized for (at its construction-time budget)."""
        return int(self.n_bits / self.sizing_bits_per_item)

    @property
    def n_slots(self) -> int:
        return self.n_bits

    @property
    def nbytes(self) -> int:
        return self.n_bits // 8

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / max(1, self.capacity)

    @property
    def recommended_load_factor(self) -> float:
        return 1.0

    @property
    def false_positive_rate(self) -> float:
        """Analytical blocked-Bloom FP rate at the current fill.

        All of an item's bits land in one 64-bit lane, so the relevant unit
        is the lane: the FP rate is the Poisson-weighted average of per-lane
        Bloom FP rates.  Lanes that happen to receive more items than average
        dominate, which is the source of the several-fold penalty over the
        flat Bloom filter that Table 2 reports.
        """
        if self._n_items == 0:
            return 0.0
        n_lanes = self.n_blocks * (BLOCK_BITS // 64)
        lam = self._n_items / n_lanes
        k = self.n_hashes
        max_n = int(lam + 10 * np.sqrt(lam) + 10)
        ns = np.arange(0, max_n)
        # Poisson pmf via its recurrence pmf(n) = pmf(n-1) * lam / n,
        # accumulated in log space — closed-form NumPy, no scipy dependency,
        # and no overflow at high lane loads (exp(-lam) underflows and the
        # raw product overflows once lam reaches a few hundred).
        log_steps = np.zeros(max_n)
        log_steps[1:] = np.log(lam / ns[1:])
        weights = np.exp(-lam + np.cumsum(log_steps))
        per_lane = (1.0 - np.exp(-k * ns / 64.0)) ** k
        return float(min(1.0, np.sum(weights * per_lane)))

    # ---------------------------------------------------------------- probing
    def _block_and_bits(self, key: int) -> tuple[int, np.ndarray]:
        """Select the cache-line block, a 64-bit lane inside it, and k bits.

        Following the WarpCore design the paper takes its BBF from, all ``k``
        bits of an item land in a single 64-bit word of the selected block:
        this makes the insert a single atomic OR, but concentrates the item's
        bits so much that the false-positive rate rises by several times over
        a flat Bloom filter with the same bits per item (Table 2).
        """
        key = np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF)
        mixed = int(murmur64_mix(key))
        block = mixed % self.n_blocks
        lane = (mixed >> 32) % (BLOCK_BITS // 64)
        bits = np.empty(self.n_hashes, dtype=np.int64)
        for seed in range(self.n_hashes):
            bits[seed] = lane * 64 + int(hash_with_seed(key, seed + 101)) % 64
        return block, bits

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        """Set ``k`` bits inside one cache-line block (one line touched)."""
        if value:
            raise UnsupportedOperationError("blocked Bloom filters cannot store values")
        block, bits = self._block_and_bits(key)
        base = block * BLOCK_WORDS
        # One coalesced read of the block, then k atomics within the line.
        self.words.read_range(base, base + BLOCK_WORDS)
        touched_words = np.unique(bits // 32)
        for word in touched_words:
            mask = np.uint32(0)
            for bit in bits[bits // 32 == word]:
                mask |= np.uint32(1) << np.uint32(int(bit) % 32)
            atomic_or(self.words, base + int(word), mask)
        self._n_items += 1
        return True

    def query(self, key: int) -> bool:
        """Test ``k`` bits inside one block (single cache-line read)."""
        block, bits = self._block_and_bits(key)
        base = block * BLOCK_WORDS
        words = self.words.read_range(base, base + BLOCK_WORDS)
        for bit in bits:
            word = int(bit) // 32
            if not (int(words[word]) >> (int(bit) % 32)) & 1:
                return False
        return True

    def delete(self, key: int) -> bool:
        raise UnsupportedOperationError("blocked Bloom filters do not support deletion")

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("blocked Bloom filters do not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("blocked Bloom filters cannot store values")

    # ---------------------------------------------------------------- bulk API
    def _prefers_sequential(self, batch_size: int) -> bool:
        """Tiny batches keep the per-item route (cheaper than staging)."""
        return prefers_sequential(batch_size)

    def _block_and_bits_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`_block_and_bits`: blocks ``(n,)``, bits ``(n, k)``."""
        mixed = np.asarray(murmur64_mix(keys), dtype=np.uint64)
        blocks = (mixed % np.uint64(self.n_blocks)).astype(np.int64)
        lanes = ((mixed >> np.uint64(32)) % np.uint64(BLOCK_BITS // 64)).astype(np.int64)
        in_lane = hash_with_seeds(keys, range(101, 101 + self.n_hashes)) % np.uint64(64)
        return blocks, lanes[:, None] * 64 + in_lane.astype(np.int64)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        if values is not None and np.any(np.asarray(values)):
            raise UnsupportedOperationError("blocked Bloom filters cannot store values")
        with self.kernels.launch("bbf_bulk_insert", point_launch(keys.size, 1)):
            if self._prefers_sequential(int(keys.size)):
                for key in keys:
                    self.insert(int(key))
            elif keys.size:
                blocks, bits = self._block_and_bits_batch(keys)
                words = blocks[:, None] * BLOCK_WORDS + bits // 32
                masks = np.uint32(1) << (bits % 32).astype(np.uint32)
                np.bitwise_or.at(self.words.peek(), words.ravel(), masks.ravel())
                # All k bits of a key land in one 64-bit lane, i.e. in at most
                # two uint32 words; the per-item path fetches the block once
                # and issues one atomic OR per *touched* word.
                in_hi = (bits % 64) // 32 == 1
                touched = int(in_hi.any(axis=1).sum() + (~in_hi).any(axis=1).sum())
                self.recorder.add(
                    cache_line_reads=int(keys.size),
                    atomic_ops=touched,
                    coalesced_bytes_read=32 * touched,
                    coalesced_bytes_written=32 * touched,
                )
                self._n_items += int(keys.size)
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        with self.kernels.launch("bbf_bulk_query", point_launch(keys.size, 1)):
            if self._prefers_sequential(int(keys.size)):
                for i, key in enumerate(keys):
                    out[i] = self.query(int(key))
            elif keys.size:
                blocks, bits = self._block_and_bits_batch(keys)
                words = blocks[:, None] * BLOCK_WORDS + bits // 32
                data = self.words.peek()
                bit_set = ((data[words] >> (bits % 32).astype(np.uint32)) & 1).astype(bool)
                out = bit_set.all(axis=1)
                # One cache-line block fetch per probe (the early exit inside
                # the block costs no extra line traffic).
                self.recorder.add(cache_line_reads=int(keys.size))
        return out

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> dict:
        return {
            "n_blocks": self.n_blocks,
            "n_hashes": self.n_hashes,
            "bits_per_item": self.sizing_bits_per_item,
        }

    def snapshot_state(self) -> dict:
        return {
            "words": self.words.peek().copy(),
            "scalars": np.array([self._n_items], dtype=np.int64),
        }

    def restore_state(self, state) -> None:
        restore_array(self.words.peek(), state["words"], "words")
        self._n_items = int(np.asarray(state["scalars"])[0])

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        return n_ops
