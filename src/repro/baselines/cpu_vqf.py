"""CPU vector quotient filter (VQF) baseline for the CPU-vs-GPU comparison.

The VQF (Pandey et al., SIGMOD 2021) is the CPU ancestor of the TCF: items
are hashed to one of two cache-line-sized blocks (power-of-two-choice), and
fingerprints inside a block are stored compactly using quotienting with two
per-block metadata words.  On the CPU the block is manipulated with AVX-512
vector instructions — hence the name.

For the Table 4 comparison the structural behaviour is what matters: two
cache lines probed per query, one written per insert, no kicking, no
counting.  This reproduction reuses the blocked table from the TCF with a
64-slot block (one 64-byte cache line of 8-bit fingerprints on the CPU is
too small to be interesting; the published VQF uses 48 slots per 512-bit
block pair — we use the same fingerprint budget) and exposes the CPU thread
count to the throughput harness.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities, restore_array
from ..core.exceptions import FilterFullError, UnsupportedOperationError
from ..core.tcf.block import BlockedTable
from ..core.tcf.config import EMPTY_SLOT, TOMBSTONE_SLOT, TCFConfig
from ..gpusim.kernel import KernelContext, point_launch
from ..gpusim.stats import StatsRecorder
from ..hashing import potc
from ._batching import prefers_sequential
from .cpu_cqf import KNL_THREADS

#: VQF block layout: 48 slots of 8-bit fingerprints per 512-bit block pair.
VQF_CONFIG = TCFConfig(
    fingerprint_bits=8,
    block_size=48,
    cg_size=1,
    shortcut_fill=0.75,
    backing_fraction=0.01,
    max_load_factor=0.94,
)


class CPUVectorQuotientFilter(AbstractFilter):
    """Multi-threaded CPU vector quotient filter (Table 4 baseline).

    Parameters
    ----------
    n_slots:
        Total fingerprint slots.
    n_threads:
        Worker threads available (272 on KNL).
    recorder:
        Optional stats recorder.
    """

    name = "VQF (CPU)"

    def __init__(
        self,
        n_slots: int,
        n_threads: int = KNL_THREADS,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        self.config = VQF_CONFIG
        n_blocks = max(2, (int(n_slots) + self.config.block_size - 1) // self.config.block_size)
        self.table = BlockedTable(n_blocks, self.config, self.recorder, name="cpu-vqf-table")
        self.n_threads = int(n_threads)
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    @classmethod
    def for_capacity(
        cls, n_items: int, recorder: Optional[StatsRecorder] = None
    ) -> "CPUVectorQuotientFilter":
        n_slots = int(np.ceil(n_items / VQF_CONFIG.max_load_factor))
        return cls(n_slots, recorder=recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int) -> int:
        return (n_slots * VQF_CONFIG.packed_slot_bits + 7) // 8

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.table.n_slots * self.config.max_load_factor)

    @property
    def n_slots(self) -> int:
        return self.table.n_slots

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.table.n_slots if self.table.n_slots else 0.0

    @property
    def recommended_load_factor(self) -> float:
        return self.config.max_load_factor

    @property
    def false_positive_rate(self) -> float:
        return self.config.false_positive_rate

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        if value:
            raise UnsupportedOperationError("the VQF does not associate values")
        h = potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )
        primary_fill = self.table.block_fill(h.primary)
        order = [h.primary, h.secondary]
        if primary_fill / self.config.block_size >= self.config.shortcut_fill:
            secondary_fill = self.table.block_fill(h.secondary)
            if secondary_fill < primary_fill:
                order = [h.secondary, h.primary]
        for block_idx in order:
            if self.table.insert(block_idx, int(h.fingerprint)):
                self._n_items += 1
                return True
        raise FilterFullError(
            "VQF: both candidate blocks are full",
            n_items=self._n_items,
            n_slots=self.table.n_slots,
            load_factor=self.load_factor,
        )

    def query(self, key: int) -> bool:
        h = potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )
        if self.table.contains(h.primary, int(h.fingerprint)):
            return True
        return self.table.contains(h.secondary, int(h.fingerprint))

    def delete(self, key: int) -> bool:
        h = potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )
        for block_idx in (h.primary, h.secondary):
            if self.table.delete(block_idx, int(h.fingerprint)):
                self._n_items -= 1
                return True
        return False

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the VQF does not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("the VQF does not associate values")

    # ---------------------------------------------------------------- bulk API
    def _prefers_sequential(self, batch_size: int) -> bool:
        """Tiny batches keep the per-item route; the whole-batch emulation
        below also assumes the VQF's single-lane cooperative groups."""
        return prefers_sequential(batch_size) or self.config.cg_size != 1

    def _derive_batch(self, keys: np.ndarray) -> potc.PotcHash:
        return potc.derive(
            keys.astype(np.uint64),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )

    def _block_lines(self) -> np.ndarray:
        """Cache lines spanned by each block's slot row (alignment-aware)."""
        bs = self.config.block_size
        starts = np.arange(self.table.n_blocks, dtype=np.int64) * bs
        per_line = self.table.slots.slots_per_line
        return (starts + bs - 1) // per_line - starts // per_line + 1

    def _bulk_insert_vectorised(self, keys: np.ndarray) -> None:
        """Batched two-choice insert replaying the per-item decision stream.

        The two-choice routing is inherently sequential (each insert changes
        the fills the next decision reads), so a compressed Python loop walks
        the batch over plain integer block fills — no per-slot cooperative-
        group machinery, no per-item DeviceArray staging — while the slot
        placement and all simulated hardware events are applied as whole-
        batch array operations afterwards.  Placements consume each block's
        free slots in scan order, exactly as the single-lane group's
        first-free ballot does, so table state *and* events match the
        per-item loop bit for bit.
        """
        h = self._derive_batch(keys)
        bs = self.config.block_size
        rows = self.table.rows()
        free_mask = (rows == EMPTY_SLOT) | (rows == TOMBSTONE_SLOT)
        live = (bs - free_mask.sum(axis=1)).astype(np.int64).tolist()
        lines = self._block_lines().tolist()
        cas_extra = 1 if self.config.cas_spans_slots else 0
        shortcut = self.config.shortcut_fill
        primaries = h.primary.tolist()
        secondaries = h.secondary.tolist()
        words = np.asarray(h.fingerprint)
        free_offsets: dict = {}
        next_free: dict = {}
        reads = instr = intr = atomics = n_cas = 0
        dest_flat = []
        dest_row = []
        overflowed = False
        for i in range(len(primaries)):
            p, s = primaries[i], secondaries[i]
            lp = live[p]
            # block_fill(primary): one block fetch + a strided fill count.
            reads += lines[p]
            instr += bs + 1
            first, second = p, s
            if lp / bs >= shortcut:
                ls = live[s]
                reads += lines[s]
                instr += bs + 1
                if ls < lp:
                    first, second = s, p
            placed = False
            for b in (first, second):
                # table.insert: block fetch (+ the extra atomic a sub-CAS-word
                # slot costs), then the single-lane scan for a free slot.
                reads += lines[b]
                atomics += cas_extra
                if live[b] < bs:
                    offs = free_offsets.get(b)
                    if offs is None:
                        offs = np.flatnonzero(free_mask[b]).tolist()
                        free_offsets[b] = offs
                        next_free[b] = 0
                    o = offs[next_free[b]]
                    next_free[b] += 1
                    live[b] += 1
                    # o+1 strided steps and ballots, leader election, the
                    # successful CAS, and the closing ballot.
                    instr += o + 2
                    intr += o + 3
                    atomics += 1
                    n_cas += 1
                    dest_flat.append(b * bs + o)
                    dest_row.append(i)
                    placed = True
                    break
                # Full block: the scan ballots across every slot and gives up.
                instr += bs
                intr += bs
            if not placed:
                overflowed = True
                break
        if dest_flat:
            data = self.table.slots.peek()
            data[np.asarray(dest_flat, dtype=np.int64)] = words[dest_row].astype(
                data.dtype
            )
        self.recorder.add(
            cache_line_reads=reads,
            instructions=instr,
            warp_intrinsics=intr,
            atomic_ops=atomics,
            coalesced_bytes_read=32 * n_cas,
            coalesced_bytes_written=32 * n_cas,
        )
        self._n_items += len(dest_flat)
        if overflowed:
            raise FilterFullError(
                "VQF: both candidate blocks are full",
                n_items=self._n_items,
                n_slots=self.table.n_slots,
                load_factor=self.load_factor,
                batch_offset=len(dest_flat),
            )

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        if values is not None and np.any(np.asarray(values)):
            raise UnsupportedOperationError("the VQF does not associate values")
        with self.kernels.launch("cpu_vqf_insert", point_launch(keys.size, 1)):
            if self._prefers_sequential(int(keys.size)):
                for key in keys:
                    self.insert(int(key))
            elif keys.size:
                self._bulk_insert_vectorised(keys)
        return int(keys.size)

    def _bulk_query_vectorised(self, keys: np.ndarray) -> np.ndarray:
        """Whole-batch two-block probe with per-item-calibrated events.

        Each probe gathers its candidate row and finds the first matching
        slot in one vectorised scan; the recorded events mirror the
        single-lane group's ballot-per-slot walk with its early exit
        (fingerprints never collide with the empty/tombstone sentinels, so a
        word match is a live match).
        """
        h = self._derive_batch(keys)
        bs = self.config.block_size
        rows = self.table.rows()
        lines = self._block_lines()
        fingerprints = np.asarray(h.fingerprint)

        def scan(blocks: np.ndarray, fps: np.ndarray):
            match = rows[blocks] == fps[:, None]
            found = match.any(axis=1)
            steps = np.where(found, np.argmax(match, axis=1) + 2, bs)
            return found, int(steps.sum())

        found, events1 = scan(h.primary, fingerprints)
        reads = int(lines[h.primary].sum())
        instr = intr = events1
        out = found.copy()
        miss = np.flatnonzero(~found)
        if miss.size:
            found2, events2 = scan(h.secondary[miss], fingerprints[miss])
            reads += int(lines[h.secondary[miss]].sum())
            instr += events2
            intr += events2
            out[miss[found2]] = True
        self.recorder.add(
            cache_line_reads=reads, instructions=instr, warp_intrinsics=intr
        )
        return out

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        with self.kernels.launch("cpu_vqf_query", point_launch(keys.size, 1)):
            if self._prefers_sequential(int(keys.size)):
                for i, key in enumerate(keys):
                    out[i] = self.query(int(key))
            elif keys.size:
                out = self._bulk_query_vectorised(keys)
        return out

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> dict:
        return {"n_slots": self.table.n_slots, "n_threads": self.n_threads}

    def snapshot_state(self) -> dict:
        return {
            "table": self.table.slots.peek().copy(),
            "scalars": np.array([self._n_items], dtype=np.int64),
        }

    def restore_state(self, state) -> None:
        restore_array(self.table.slots.peek(), state["table"], "table")
        self._n_items = int(np.asarray(state["scalars"])[0])

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        return min(self.n_threads, n_ops)
