"""CPU vector quotient filter (VQF) baseline for the CPU-vs-GPU comparison.

The VQF (Pandey et al., SIGMOD 2021) is the CPU ancestor of the TCF: items
are hashed to one of two cache-line-sized blocks (power-of-two-choice), and
fingerprints inside a block are stored compactly using quotienting with two
per-block metadata words.  On the CPU the block is manipulated with AVX-512
vector instructions — hence the name.

For the Table 4 comparison the structural behaviour is what matters: two
cache lines probed per query, one written per insert, no kicking, no
counting.  This reproduction reuses the blocked table from the TCF with a
64-slot block (one 64-byte cache line of 8-bit fingerprints on the CPU is
too small to be interesting; the published VQF uses 48 slots per 512-bit
block pair — we use the same fingerprint budget) and exposes the CPU thread
count to the throughput harness.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities
from ..core.exceptions import FilterFullError, UnsupportedOperationError
from ..core.tcf.block import BlockedTable
from ..core.tcf.config import TCFConfig
from ..gpusim.kernel import KernelContext, point_launch
from ..gpusim.stats import StatsRecorder
from ..hashing import potc
from .cpu_cqf import KNL_THREADS

#: VQF block layout: 48 slots of 8-bit fingerprints per 512-bit block pair.
VQF_CONFIG = TCFConfig(
    fingerprint_bits=8,
    block_size=48,
    cg_size=1,
    shortcut_fill=0.75,
    backing_fraction=0.01,
    max_load_factor=0.94,
)


class CPUVectorQuotientFilter(AbstractFilter):
    """Multi-threaded CPU vector quotient filter (Table 4 baseline).

    Parameters
    ----------
    n_slots:
        Total fingerprint slots.
    n_threads:
        Worker threads available (272 on KNL).
    recorder:
        Optional stats recorder.
    """

    name = "VQF (CPU)"

    def __init__(
        self,
        n_slots: int,
        n_threads: int = KNL_THREADS,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        self.config = VQF_CONFIG
        n_blocks = max(2, (int(n_slots) + self.config.block_size - 1) // self.config.block_size)
        self.table = BlockedTable(n_blocks, self.config, self.recorder, name="cpu-vqf-table")
        self.n_threads = int(n_threads)
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    @classmethod
    def for_capacity(
        cls, n_items: int, recorder: Optional[StatsRecorder] = None
    ) -> "CPUVectorQuotientFilter":
        n_slots = int(np.ceil(n_items / VQF_CONFIG.max_load_factor))
        return cls(n_slots, recorder=recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int) -> int:
        return (n_slots * VQF_CONFIG.packed_slot_bits + 7) // 8

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.table.n_slots * self.config.max_load_factor)

    @property
    def n_slots(self) -> int:
        return self.table.n_slots

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def load_factor(self) -> float:
        return self._n_items / self.table.n_slots if self.table.n_slots else 0.0

    @property
    def recommended_load_factor(self) -> float:
        return self.config.max_load_factor

    @property
    def false_positive_rate(self) -> float:
        return self.config.false_positive_rate

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        if value:
            raise UnsupportedOperationError("the VQF does not associate values")
        h = potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )
        primary_fill = self.table.block_fill(h.primary)
        order = [h.primary, h.secondary]
        if primary_fill / self.config.block_size >= self.config.shortcut_fill:
            secondary_fill = self.table.block_fill(h.secondary)
            if secondary_fill < primary_fill:
                order = [h.secondary, h.primary]
        for block_idx in order:
            if self.table.insert(block_idx, int(h.fingerprint)):
                self._n_items += 1
                return True
        raise FilterFullError("VQF: both candidate blocks are full")

    def query(self, key: int) -> bool:
        h = potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )
        if self.table.contains(h.primary, int(h.fingerprint)):
            return True
        return self.table.contains(h.secondary, int(h.fingerprint))

    def delete(self, key: int) -> bool:
        h = potc.derive(
            np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF),
            self.table.n_blocks,
            self.config.fingerprint_bits,
        )
        for block_idx in (h.primary, h.secondary):
            if self.table.delete(block_idx, int(h.fingerprint)):
                self._n_items -= 1
                return True
        return False

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the VQF does not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("the VQF does not associate values")

    # ---------------------------------------------------------------- bulk API
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        with self.kernels.launch("cpu_vqf_insert", point_launch(keys.size, 1)):
            for key in keys:
                self.insert(int(key))
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        with self.kernels.launch("cpu_vqf_query", point_launch(keys.size, 1)):
            for i, key in enumerate(keys):
                out[i] = self.query(int(key))
        return out

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        return min(self.n_threads, n_ops)
