"""Baseline filters the paper compares against.

GPU baselines: the Bloom filter (BF), the blocked Bloom filter (BBF,
WarpCore-style), and Geil et al.'s standard and rank-select quotient filters
(SQF, RSQF).  CPU baselines (Table 4): the counting quotient filter (CQF) and
the vector quotient filter (VQF) on KNL.
"""

from .blocked_bloom import BlockedBloomFilter
from .bloom import BloomFilter
from .cpu_cqf import KNL_THREADS, CPUCountingQuotientFilter
from .cpu_vqf import CPUVectorQuotientFilter
from .rsqf import RankSelectQuotientFilter
from .sqf import StandardQuotientFilter

__all__ = [
    "BlockedBloomFilter",
    "BloomFilter",
    "KNL_THREADS",
    "CPUCountingQuotientFilter",
    "CPUVectorQuotientFilter",
    "RankSelectQuotientFilter",
    "StandardQuotientFilter",
]
