"""Geil et al.'s standard quotient filter (SQF) on the GPU — baseline.

The SQF (IPDPS 2018) was the first GPU quotient filter.  It was adapted from
Bender et al.'s quotient filter, which predates the counting quotient filter,
and carries several implementation-specific limits that the GQF removes:

* only two remainder widths (5 and 13 bits), because the 3 per-slot metadata
  bits are packed with the remainder into an 8- or 16-bit machine word;
* the sum of quotient and remainder bits must stay below 32, so the filter
  can hold at most :math:`2^{26}` items with 5-bit remainders (and only
  :math:`2^{18}` with 13-bit remainders);
* a fixed, relatively high false-positive rate (~1.17 % at 5-bit remainders);
* no counting, no value association, bulk-only API.

The functional structure reuses :class:`~repro.core.gqf.layout.
QuotientFilterCore` with counting disabled; bulk insertion follows the SQF's
"sort then merge segments" strategy (one thread per segment), which is fast,
while bulk lookups use the sorted-batch probing that the paper observes to be
slower than the other filters' query paths.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities
from ..core.exceptions import (
    CapacityLimitError,
    FilterFullError,
    UnsupportedOperationError,
)
from ..gpusim.kernel import KernelContext, bulk_region_launch
from ..gpusim.sorting import device_sort, device_sort_by_key
from ..gpusim.stats import StatsRecorder
from ..hashing.fingerprints import FingerprintScheme
from ..core.gqf.layout import QuotientFilterCore

#: Remainder widths supported by the SQF (3 metadata bits packed alongside).
SUPPORTED_REMAINDERS = (5, 13)
#: Maximum quotient+remainder bits in the SQF's packed representation.
MAX_FINGERPRINT_BITS = 31
#: Segment size (slots) used by the bulk merge insert.
SEGMENT_SLOTS = 4096


class StandardQuotientFilter(AbstractFilter):
    """Geil et al.'s GPU standard quotient filter (bulk API only).

    Parameters
    ----------
    quotient_bits:
        log2 of the slot count; limited so that ``q + r <= 31``.
    remainder_bits:
        5 or 13.
    recorder:
        Optional stats recorder.
    """

    name = "SQF"

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int = 5,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        if remainder_bits not in SUPPORTED_REMAINDERS:
            raise CapacityLimitError(
                f"the SQF only supports remainders {SUPPORTED_REMAINDERS}, got {remainder_bits}",
                requested=remainder_bits,
            )
        if quotient_bits + remainder_bits > MAX_FINGERPRINT_BITS:
            raise CapacityLimitError(
                f"the SQF requires quotient+remainder <= {MAX_FINGERPRINT_BITS} bits "
                f"(got {quotient_bits}+{remainder_bits}); it cannot scale beyond 2^26 items",
                requested=quotient_bits + remainder_bits,
                limit=MAX_FINGERPRINT_BITS,
            )
        self.scheme = FingerprintScheme(quotient_bits, remainder_bits)
        self.core = QuotientFilterCore(
            quotient_bits,
            remainder_bits,
            self.recorder,
            counting=False,
            slot_metadata_packed=True,
            name="sqf-slots",
        )
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        remainder_bits: int = 5,
        recorder: Optional[StatsRecorder] = None,
    ) -> "StandardQuotientFilter":
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, n_items) / 0.9))))
        return cls(quotient_bits, remainder_bits, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=False,
            bulk_insert=True,
            point_query=False,
            bulk_query=True,
            point_delete=False,
            bulk_delete=True,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, remainder_bits: int = 5) -> int:
        """Packed slot bytes: remainder + 3 metadata bits in an 8/16-bit word."""
        word_bits = 8 if remainder_bits <= 5 else 16
        return int(np.ceil(n_slots * word_bits / 8.0))

    @classmethod
    def max_quotient_bits(cls, remainder_bits: int = 5) -> int:
        """Largest supported filter size exponent for a remainder width."""
        return MAX_FINGERPRINT_BITS - remainder_bits

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.core.n_canonical_slots * self.recommended_load_factor)

    @property
    def n_slots(self) -> int:
        return self.core.n_canonical_slots

    @property
    def nbytes(self) -> int:
        word_bits = 8 if self.scheme.remainder_bits <= 5 else 16
        return int(np.ceil(self.core.total_slots * word_bits / 8.0))

    @property
    def n_items(self) -> int:
        return self.core.total_count

    @property
    def n_occupied_slots(self) -> int:
        return self.core.n_occupied_slots

    @property
    def load_factor(self) -> float:
        return self.core.load_factor

    @property
    def recommended_load_factor(self) -> float:
        return 0.9

    @property
    def false_positive_rate(self) -> float:
        return 2.0 ** (-self.scheme.remainder_bits)

    # ---------------------------------------------------------------- bulk API
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Sorted segment-merge bulk insert (one thread per segment).

        Large batches merge as one vectorised sorted batch into the shared
        :class:`QuotientFilterCore`; batches too small to amortise the
        whole-table decode keep the per-item loop.  Both routes produce the
        same table and the same simulated hardware events.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is not None and np.any(np.asarray(values)):
            raise UnsupportedOperationError("the SQF does not associate values")
        if keys.size == 0:
            return 0
        fingerprints = self.scheme.hash_key(keys)
        quotients, remainders = self.scheme.split(fingerprints)
        sort_keys = self.scheme.join(quotients, remainders)
        _sorted, order = device_sort_by_key(sort_keys, np.arange(keys.size), self.recorder)
        quotients = quotients[order]
        remainders = remainders[order]
        n_segments = max(1, self.core.n_canonical_slots // SEGMENT_SLOTS)
        with self.kernels.launch("sqf_bulk_insert", bulk_region_launch(n_segments)):
            if not self.core.prefers_sequential(int(keys.size)):
                try:
                    self.core.insert_sorted_batch(quotients, remainders)
                    return int(keys.size)
                except FilterFullError:
                    # All-or-nothing merge: replay per item so an over-capacity
                    # batch still fills the table before raising.
                    pass
            for i in range(keys.size):
                self.core.insert_fingerprint(int(quotients[i]), int(remainders[i]), 1)
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        """Sorted bulk lookup (the SQF sorts the query batch as well)."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return out
        fingerprints = self.scheme.hash_key(keys)
        # The SQF sorts query batches before probing; account for that pass.
        device_sort(fingerprints, self.recorder)
        quotients, remainders = self.scheme.split(fingerprints)
        n_segments = max(1, self.core.n_canonical_slots // SEGMENT_SLOTS)
        with self.kernels.launch("sqf_bulk_query", bulk_region_launch(n_segments)):
            out = self.core.batch_counts(quotients, remainders) > 0
        return out

    def bulk_delete(self, keys: Sequence[int]) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        fingerprints = self.scheme.hash_key(keys)
        quotients, remainders = self.scheme.split(fingerprints)
        removed = 0
        n_segments = max(1, self.core.n_canonical_slots // SEGMENT_SLOTS)
        with self.kernels.launch("sqf_bulk_delete", bulk_region_launch(n_segments)):
            if not self.core.prefers_sequential(int(keys.size)):
                removed = self.core.delete_sorted_batch(quotients, remainders)
            else:
                for i in range(keys.size):
                    if self.core.delete_fingerprint(int(quotients[i]), int(remainders[i]), 1):
                        removed += 1
        return removed

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        raise UnsupportedOperationError("the SQF has no point-insert API (bulk only)")

    def query(self, key: int) -> bool:
        """Host-side single query (provided for tests; not a device API)."""
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        return self.core.query_fingerprint(int(quotient), int(remainder)) > 0

    def delete(self, key: int) -> bool:
        raise UnsupportedOperationError("the SQF has no point-delete API (bulk only)")

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the SQF does not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("the SQF cannot store values")

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> dict:
        return {
            "quotient_bits": self.scheme.quotient_bits,
            "remainder_bits": self.scheme.remainder_bits,
        }

    def snapshot_state(self) -> dict:
        return self.core.export_state()

    def restore_state(self, state) -> None:
        self.core.import_state(state)

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        """One thread per 4096-slot segment."""
        return max(1, self.core.n_canonical_slots // SEGMENT_SLOTS)
