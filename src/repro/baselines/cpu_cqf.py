"""CPU counting quotient filter (CQF) baseline for the CPU-vs-GPU comparison.

Table 4 of the paper compares the GPU filters with their CPU ancestors run on
Cori's KNL nodes with 272 hardware threads: the CQF (Pandey et al. 2017) and
the VQF (Pandey et al. 2021).  The CQF's structure is exactly the
:class:`~repro.core.gqf.layout.QuotientFilterCore` already used by the GQF —
the difference is the execution substrate: a modest number of CPU threads,
cache-line-granular memory, and per-thread locking for concurrent inserts.

The CPU cost model lives in :mod:`repro.analysis.throughput`; this class
exposes the same adapter interface as the GPU filters (``active_threads_for``
reports at most 272 workers) so that the Table 4 harness can treat CPU and
GPU filters uniformly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities
from ..core.exceptions import FilterFullError
from ..core.gqf.layout import QuotientFilterCore
from ..gpusim.kernel import KernelContext, point_launch
from ..gpusim.stats import StatsRecorder
from ..hashing.fingerprints import FingerprintScheme

#: Hardware threads on the Cori KNL nodes used in the paper's Table 4.
KNL_THREADS = 272


class CPUCountingQuotientFilter(AbstractFilter):
    """Multi-threaded CPU counting quotient filter (Table 4 baseline).

    Parameters
    ----------
    quotient_bits, remainder_bits:
        Table geometry; 8-bit remainders match the GQF configuration used in
        the comparison.
    n_threads:
        Worker threads available (272 on KNL).
    recorder:
        Optional stats recorder.
    """

    name = "CQF (CPU)"

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int = 8,
        n_threads: int = KNL_THREADS,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        self.scheme = FingerprintScheme(quotient_bits, remainder_bits)
        self.core = QuotientFilterCore(
            quotient_bits, remainder_bits, self.recorder, counting=True, name="cpu-cqf-slots"
        )
        self.n_threads = int(n_threads)
        self.kernels = KernelContext(self.recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=True,
            bulk_delete=True,
            point_count=True,
            bulk_count=True,
            values=True,
            resizable=True,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, remainder_bits: int = 8) -> int:
        return int(np.ceil(n_slots * (remainder_bits + 2.125) / 8.0))

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.core.n_canonical_slots * 0.95)

    @property
    def n_slots(self) -> int:
        return self.core.n_canonical_slots

    @property
    def nbytes(self) -> int:
        return self.core.nbytes

    @property
    def n_items(self) -> int:
        return self.core.n_distinct_items

    @property
    def total_count(self) -> int:
        """Multiset cardinality (every inserted occurrence)."""
        return self.core.total_count

    @property
    def n_occupied_slots(self) -> int:
        return self.core.n_occupied_slots

    @property
    def load_factor(self) -> float:
        return self.core.load_factor

    @property
    def recommended_load_factor(self) -> float:
        return 0.95

    @property
    def false_positive_rate(self) -> float:
        return 2.0 ** (-self.scheme.remainder_bits)

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        self.core.insert_fingerprint(int(quotient), int(remainder), max(1, int(value)))
        return True

    def query(self, key: int) -> bool:
        return self.count(key) > 0

    def count(self, key: int) -> int:
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        return self.core.query_fingerprint(int(quotient), int(remainder))

    def get_value(self, key: int) -> Optional[int]:
        count = self.count(key)
        return count if count > 0 else None

    def delete(self, key: int) -> bool:
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        return self.core.delete_fingerprint(int(quotient), int(remainder), 1)

    # ---------------------------------------------------------------- bulk API
    def _hashed_batch(self, keys: np.ndarray):
        quotients, remainders = self.scheme.split(self.scheme.hash_key(keys))
        return quotients.astype(np.int64), remainders.astype(np.uint64)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Batched insert; ``values`` are interpreted as counts (as in insert).

        Large batches merge as one vectorised sorted batch into the shared
        :class:`QuotientFilterCore`; small batches keep the per-item loop.
        Both routes insert in sorted (quotient, remainder) order — the
        standard schedule for batch-building a quotient filter — and record
        that schedule's events, which shift less than the same keys pushed
        through arrival-order point :meth:`insert` calls (the route Table 4
        measures for the CPU filters).
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        if values is None:
            counts = np.ones(keys.size, dtype=np.int64)
        else:
            counts = np.maximum(1, np.asarray(values, dtype=np.int64))
        quotients, remainders = self._hashed_batch(keys)
        order = np.lexsort((remainders, quotients))
        quotients, remainders, counts = quotients[order], remainders[order], counts[order]
        with self.kernels.launch("cpu_cqf_insert", point_launch(keys.size, 1)):
            if not self.core.prefers_sequential(int(keys.size)):
                try:
                    self.core.insert_sorted_batch(quotients, remainders, counts)
                    return int(keys.size)
                except FilterFullError:
                    # All-or-nothing merge: replay per item so an over-capacity
                    # batch still fills the table before raising.
                    pass
            for i in range(keys.size):
                self.core.insert_fingerprint(
                    int(quotients[i]), int(remainders[i]), int(counts[i])
                )
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return out
        quotients, remainders = self._hashed_batch(keys)
        with self.kernels.launch("cpu_cqf_query", point_launch(keys.size, 1)):
            out = self.core.batch_counts(quotients, remainders) > 0
        return out

    def bulk_count(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        quotients, remainders = self._hashed_batch(keys)
        with self.kernels.launch("cpu_cqf_count", point_launch(keys.size, 1)):
            return self.core.batch_counts(quotients, remainders)

    def bulk_delete(self, keys: Sequence[int]) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return 0
        quotients, remainders = self._hashed_batch(keys)
        removed = 0
        with self.kernels.launch("cpu_cqf_delete", point_launch(keys.size, 1)):
            if not self.core.prefers_sequential(int(keys.size)):
                removed = self.core.delete_sorted_batch(quotients, remainders)
            else:
                for i in range(keys.size):
                    if self.core.delete_fingerprint(int(quotients[i]), int(remainders[i]), 1):
                        removed += 1
        return removed

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> dict:
        return {
            "quotient_bits": self.scheme.quotient_bits,
            "remainder_bits": self.scheme.remainder_bits,
            "n_threads": self.n_threads,
        }

    def snapshot_state(self) -> dict:
        return self.core.export_state()

    def restore_state(self, state) -> None:
        self.core.import_state(state)

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        """CPU execution exposes at most ``n_threads`` workers."""
        return min(self.n_threads, n_ops)

    @property
    def insert_serialization(self) -> float:
        """Contention factor for concurrent CPU inserts.

        The CQF's thread-safe insert path locks two 4096-slot regions; with
        272 threads on a table of 2^28 slots contention is negligible, but
        the shifting work itself serialises on the memory system — the paper
        measures only ~2 M inserts/s.  The Table 4 harness charges this as a
        serialisation factor over the lock acquisitions.
        """
        return 8.0
