"""Geil et al.'s rank-select quotient filter (RSQF) on the GPU — baseline.

The RSQF variant replaces the three per-slot metadata bits of the standard
quotient filter with two bit vectors (occupieds/runends) navigated with
rank/select over 64-bit blocks, exactly like the CQF's metadata.  Geil et
al.'s GPU implementation has excellent *query* performance — the metadata is
compact, so small filters fit entirely in L2 — but ships **no optimised
insert kernel**: inserts run essentially serially and top out around 8
million items/s, three orders of magnitude slower than the other filters
(Figure 4).  It also supports neither deletes nor counting and inherits the
SQF's 2^26-item limit.

The reproduction mirrors those properties: the same
:class:`~repro.core.gqf.layout.QuotientFilterCore` provides the structure,
queries are bulk and parallel, and the insert path reports a serialised
launch geometry so the performance model reproduces the paper's three-orders
-of-magnitude insert gap.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities
from ..core.exceptions import (
    CapacityLimitError,
    FilterFullError,
    UnsupportedOperationError,
)
from ..core.gqf.layout import QuotientFilterCore
from ..gpusim.kernel import KernelContext, LaunchConfig, point_launch
from ..gpusim.stats import StatsRecorder
from ..hashing.fingerprints import FingerprintScheme
from .sqf import MAX_FINGERPRINT_BITS, SUPPORTED_REMAINDERS


class RankSelectQuotientFilter(AbstractFilter):
    """Geil et al.'s GPU rank-select quotient filter (bulk insert/query only).

    Parameters
    ----------
    quotient_bits:
        log2 of the slot count; limited so that ``q + r <= 31``.
    remainder_bits:
        5 or 13 (the RSQF shares the SQF's packing constraints).
    recorder:
        Optional stats recorder.
    """

    name = "RSQF"

    def __init__(
        self,
        quotient_bits: int,
        remainder_bits: int = 5,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        super().__init__(recorder)
        if remainder_bits not in SUPPORTED_REMAINDERS:
            raise CapacityLimitError(
                f"the RSQF only supports remainders {SUPPORTED_REMAINDERS}, got {remainder_bits}",
                requested=remainder_bits,
            )
        if quotient_bits + remainder_bits > MAX_FINGERPRINT_BITS:
            raise CapacityLimitError(
                "the RSQF cannot be sized beyond 2^26 items (q + r <= 31)",
                requested=quotient_bits + remainder_bits,
                limit=MAX_FINGERPRINT_BITS,
            )
        self.scheme = FingerprintScheme(quotient_bits, remainder_bits)
        self.core = QuotientFilterCore(
            quotient_bits,
            remainder_bits,
            self.recorder,
            counting=False,
            name="rsqf-slots",
        )
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        remainder_bits: int = 5,
        recorder: Optional[StatsRecorder] = None,
    ) -> "RankSelectQuotientFilter":
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, n_items) / 0.9))))
        return cls(quotient_bits, remainder_bits, recorder)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=False,
            bulk_insert=True,
            point_query=False,
            bulk_query=True,
            point_delete=False,
            bulk_delete=False,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_slots: int, remainder_bits: int = 5) -> int:
        """Remainder bits + 2.125 metadata bits per slot (RSQF packing)."""
        return int(np.ceil(n_slots * (remainder_bits + 2.125) / 8.0))

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        return int(self.core.n_canonical_slots * self.recommended_load_factor)

    @property
    def n_slots(self) -> int:
        return self.core.n_canonical_slots

    @property
    def nbytes(self) -> int:
        return self.core.nbytes

    @property
    def n_items(self) -> int:
        return self.core.total_count

    @property
    def n_occupied_slots(self) -> int:
        return self.core.n_occupied_slots

    @property
    def load_factor(self) -> float:
        return self.core.load_factor

    @property
    def recommended_load_factor(self) -> float:
        return 0.9

    @property
    def false_positive_rate(self) -> float:
        return 2.0 ** (-self.scheme.remainder_bits)

    # ---------------------------------------------------------------- bulk API
    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        """Unoptimised insert path: items are inserted one after another.

        The authors provide no parallel insert kernel, so the launch exposes
        a single worker; the performance model therefore reports the
        ~8 M items/s ceiling the paper measures — the serialised cost lives
        in the launch geometry, not in Python-loop wall clock.

        The batch is inserted in sorted (quotient, remainder) order — the
        standard schedule for batch-building a quotient filter, which
        removes the order-dependent intra-batch Robin-Hood shifting — and
        both the vectorised merge and the small-batch per-item loop record
        the events of that *sorted* schedule.  An arrival-order insert
        stream would shift more; no sort pass is charged because the
        ordering happens host-side before the serial kernel runs.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        if values is not None and np.any(np.asarray(values)):
            raise UnsupportedOperationError("the RSQF does not associate values")
        if keys.size == 0:
            return 0
        fingerprints = self.scheme.hash_key(keys)
        quotients, remainders = self.scheme.split(fingerprints)
        # Host-side ordering only (no device sort pass is charged: the
        # authors' serial insert kernel performs none).
        order = np.lexsort((remainders, quotients))
        quotients = quotients[order]
        remainders = remainders[order]
        with self.kernels.launch(
            "rsqf_serial_insert", LaunchConfig(n_work_items=1, threads_per_item=32)
        ):
            if not self.core.prefers_sequential(int(keys.size)):
                try:
                    self.core.insert_sorted_batch(quotients, remainders)
                    return int(keys.size)
                except FilterFullError:
                    # All-or-nothing merge: replay per item so an over-capacity
                    # batch still fills the table before raising.
                    pass
            for i in range(keys.size):
                self.core.insert_fingerprint(int(quotients[i]), int(remainders[i]), 1)
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        """Parallel bulk query (one thread per item, rank/select navigation)."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return out
        fingerprints = self.scheme.hash_key(keys)
        quotients, remainders = self.scheme.split(fingerprints)
        with self.kernels.launch("rsqf_bulk_query", point_launch(keys.size, 1)):
            out = self.core.batch_counts(quotients, remainders) > 0
        return out

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        raise UnsupportedOperationError("the RSQF has no point-insert API (bulk only)")

    def query(self, key: int) -> bool:
        """Host-side single query (for tests; not a device API)."""
        quotient, remainder = self.scheme.key_to_slot(np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF))
        return self.core.query_fingerprint(int(quotient), int(remainder)) > 0

    def delete(self, key: int) -> bool:
        raise UnsupportedOperationError(
            "the RSQF design could support deletes but the authors do not implement them"
        )

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("the RSQF does not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("the RSQF cannot store values")

    def bulk_delete(self, keys: Sequence[int]) -> int:
        raise UnsupportedOperationError(
            "the RSQF design could support deletes but the authors do not implement them"
        )

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> dict:
        return {
            "quotient_bits": self.scheme.quotient_bits,
            "remainder_bits": self.scheme.remainder_bits,
        }

    def snapshot_state(self) -> dict:
        return self.core.export_state()

    def restore_state(self, state) -> None:
        self.core.import_state(state)

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int, phase: str = "insert") -> int:
        """Inserts are serialised; queries expose one thread per item."""
        if phase == "insert":
            return 32
        return n_ops
