"""GPU Bloom filter baseline (1-bit encoded, CUDA atomic bitwise ops).

The paper adapts Partow's C++ Bloom filter into a 1-bit-encoded GPU
implementation using CUDA atomic OR, and configures it with 7 hash functions
and 10.1 bits per item for the ~0.1 % target false-positive rate.

Design-principle analysis (Section 3.2): test-and-set maps well onto atomics
(low divergence), but every one of the ``k`` probes lands on a different
cache line, so memory coherence is poor — inserts and *positive* queries pay
``k`` line transactions, while negative queries usually terminate early on
the first zero bit.  Bloom filters also support neither deletion nor
counting, which is why they are only a baseline here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter, FilterCapabilities, restore_array
from ..core.exceptions import UnsupportedOperationError
from ..gpusim.atomics import atomic_or
from ..gpusim.kernel import KernelContext, point_launch
from ..gpusim.memory import DeviceArray
from ..gpusim.stats import StatsRecorder
from ..hashing.mixers import hash_with_seed, hash_with_seeds
from ._batching import prefers_sequential

#: Bits per item used in the paper's evaluation (Table 2).
PAPER_BITS_PER_ITEM = 10.1
#: Number of hash functions used in the paper's evaluation.
PAPER_NUM_HASHES = 7


class BloomFilter(AbstractFilter):
    """1-bit-per-cell Bloom filter with a point (device-side) API.

    Parameters
    ----------
    n_bits:
        Size of the bit array.
    n_hashes:
        Number of hash functions ``k``.
    recorder:
        Optional stats recorder.
    """

    name = "BF"

    def __init__(
        self,
        n_bits: int,
        n_hashes: int = PAPER_NUM_HASHES,
        recorder: Optional[StatsRecorder] = None,
        bits_per_item: float = PAPER_BITS_PER_ITEM,
    ) -> None:
        super().__init__(recorder)
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        if n_hashes <= 0:
            raise ValueError("n_hashes must be positive")
        if bits_per_item <= 0:
            raise ValueError("bits_per_item must be positive")
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        #: Bits-per-item budget the filter was sized with (drives
        #: :attr:`capacity`; ``bits_per_item`` itself is the measured metric).
        self.sizing_bits_per_item = float(bits_per_item)
        n_words = (self.n_bits + 31) // 32
        self.words = DeviceArray(n_words, np.uint32, self.recorder, name="bloom-bits")
        self._n_items = 0
        self.kernels = KernelContext(self.recorder)

    # ------------------------------------------------------------ constructors
    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        bits_per_item: float = PAPER_BITS_PER_ITEM,
        n_hashes: int = PAPER_NUM_HASHES,
        recorder: Optional[StatsRecorder] = None,
    ) -> "BloomFilter":
        """Size the filter for ``n_items`` at a given bits-per-item budget."""
        n_bits = max(64, int(np.ceil(n_items * bits_per_item)))
        return cls(n_bits, n_hashes, recorder, bits_per_item=bits_per_item)

    @classmethod
    def capabilities(cls) -> FilterCapabilities:
        return FilterCapabilities(
            point_insert=True,
            bulk_insert=True,
            point_query=True,
            bulk_query=True,
            point_delete=False,
            bulk_delete=False,
            point_count=False,
            bulk_count=False,
            values=False,
            resizable=False,
        )

    @classmethod
    def nominal_nbytes(cls, n_items: int, bits_per_item: float = PAPER_BITS_PER_ITEM) -> int:
        return int(np.ceil(n_items * bits_per_item / 8.0))

    # ------------------------------------------------------------------- sizes
    @property
    def capacity(self) -> int:
        """Items the filter was sized for (at its construction-time budget)."""
        return int(self.n_bits / self.sizing_bits_per_item)

    @property
    def n_slots(self) -> int:
        return self.n_bits

    @property
    def nbytes(self) -> int:
        return (self.n_bits + 7) // 8

    @property
    def n_items(self) -> int:
        return self._n_items

    @property
    def n_occupied_slots(self) -> int:
        # Bits set, host-side.
        return int(np.unpackbits(self.words.peek().view(np.uint8)).sum())

    @property
    def load_factor(self) -> float:
        return self._n_items / max(1, self.capacity)

    @property
    def recommended_load_factor(self) -> float:
        return 1.0

    @property
    def false_positive_rate(self) -> float:
        """Analytical FP rate (1 - e^{-kn/m})^k at the current fill."""
        if self._n_items == 0:
            return 0.0
        k, n, m = self.n_hashes, self._n_items, self.n_bits
        return float((1.0 - np.exp(-k * n / m)) ** k)

    # --------------------------------------------------------------- bit probes
    def _bit_positions(self, key: int) -> np.ndarray:
        key = np.uint64(int(key) & 0xFFFFFFFFFFFFFFFF)
        positions = np.empty(self.n_hashes, dtype=np.int64)
        for seed in range(self.n_hashes):
            positions[seed] = int(hash_with_seed(key, seed)) % self.n_bits
        return positions

    # ------------------------------------------------------------------ point API
    def insert(self, key: int, value: int = 0) -> bool:
        """Set all ``k`` bits with atomic OR (k cache lines touched).

        Each probe lands on a different, effectively random cache line, so in
        addition to the atomic itself the line has to be fetched — this is
        the poor memory coherence the paper's design analysis attributes to
        Bloom filters.
        """
        if value:
            raise UnsupportedOperationError("Bloom filters cannot store values")
        for position in self._bit_positions(key):
            word, bit = divmod(int(position), 32)
            self.recorder.add(cache_line_reads=1)
            atomic_or(self.words, word, np.uint32(1) << np.uint32(bit))
        self._n_items += 1
        return True

    def query(self, key: int) -> bool:
        """Probe the ``k`` bits, stopping at the first zero."""
        for position in self._bit_positions(key):
            word, bit = divmod(int(position), 32)
            value = int(self.words.read(word))
            if not (value >> bit) & 1:
                return False
        return True

    def delete(self, key: int) -> bool:
        raise UnsupportedOperationError("Bloom filters do not support deletion")

    def count(self, key: int) -> int:
        raise UnsupportedOperationError("Bloom filters do not support counting")

    def get_value(self, key: int) -> Optional[int]:
        raise UnsupportedOperationError("Bloom filters cannot store values")

    # ---------------------------------------------------------------- bulk API
    def _prefers_sequential(self, batch_size: int) -> bool:
        """Tiny batches keep the per-item route (cheaper than staging)."""
        return prefers_sequential(batch_size)

    def _bit_positions_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_bit_positions`: shape ``(n_keys, n_hashes)``."""
        hashed = hash_with_seeds(keys, range(self.n_hashes))
        return (hashed % np.uint64(self.n_bits)).astype(np.int64)

    def bulk_insert(self, keys: Sequence[int], values: Optional[Sequence[int]] = None) -> int:
        keys = np.asarray(keys, dtype=np.uint64)
        if values is not None and np.any(np.asarray(values)):
            raise UnsupportedOperationError("Bloom filters cannot store values")
        with self.kernels.launch("bloom_bulk_insert", point_launch(keys.size, 1)):
            if self._prefers_sequential(int(keys.size)):
                for key in keys:
                    self.insert(int(key))
            elif keys.size:
                positions = self._bit_positions_batch(keys)
                words = positions // 32
                masks = np.uint32(1) << (positions % 32).astype(np.uint32)
                np.bitwise_or.at(self.words.peek(), words.ravel(), masks.ravel())
                # Per probe the per-item path charges one line fetch plus the
                # atomic OR's transaction (see insert); duplicates included.
                total = int(positions.size)
                self.recorder.add(
                    cache_line_reads=total,
                    atomic_ops=total,
                    coalesced_bytes_read=32 * total,
                    coalesced_bytes_written=32 * total,
                )
                self._n_items += int(keys.size)
        return int(keys.size)

    def bulk_query(self, keys: Sequence[int]) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=bool)
        with self.kernels.launch("bloom_bulk_query", point_launch(keys.size, 1)):
            if self._prefers_sequential(int(keys.size)):
                for i, key in enumerate(keys):
                    out[i] = self.query(int(key))
            elif keys.size:
                positions = self._bit_positions_batch(keys)
                data = self.words.peek()
                bit_set = (
                    (data[positions // 32] >> (positions % 32).astype(np.uint32)) & 1
                ).astype(bool)
                out = bit_set.all(axis=1)
                # The per-item probe loop stops at the first zero bit; charge
                # the reads up to (and including) that early exit.
                reads = np.where(out, self.n_hashes, np.argmin(bit_set, axis=1) + 1)
                self.recorder.add(cache_line_reads=int(reads.sum()))
        return out

    # --------------------------------------------------------------- lifecycle
    def snapshot_config(self) -> dict:
        return {
            "n_bits": self.n_bits,
            "n_hashes": self.n_hashes,
            "bits_per_item": self.sizing_bits_per_item,
        }

    def snapshot_state(self) -> dict:
        return {
            "words": self.words.peek().copy(),
            "scalars": np.array([self._n_items], dtype=np.int64),
        }

    def restore_state(self, state) -> None:
        restore_array(self.words.peek(), state["words"], "words")
        self._n_items = int(np.asarray(state["scalars"])[0])

    # ---------------------------------------------------------------- analysis
    def active_threads_for(self, n_ops: int) -> int:
        return n_ops
