"""64-bit hash mixers / finalizers used throughout the filters.

The paper's filters hash incoming 64-bit keys before splitting the result
into quotient/remainder (GQF) or block-index/fingerprint (TCF) parts.  The
CPU counting quotient filter relies on an *invertible* 64-bit hash so that
items can be enumerated and filters merged; we provide the same invertible
mixer (a MurmurHash3-style finalizer with its exact inverse) plus a
splitmix64 and an xxhash-style avalanche for double hashing.

All functions are vectorised: they accept either Python ints or NumPy uint64
arrays and always compute modulo 2^64 without Python-level overflow.
"""

from __future__ import annotations

from typing import Union

import numpy as np

ArrayOrInt = Union[int, np.ndarray]

_U64 = np.uint64
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _as_u64(x: ArrayOrInt) -> np.ndarray:
    """Coerce ints / arrays to uint64 without overflow errors."""
    if isinstance(x, np.ndarray):
        return x.astype(np.uint64, copy=True)
    return np.uint64(int(x) & 0xFFFFFFFFFFFFFFFF)


def _maybe_scalar(x: np.ndarray, scalar_in: bool):
    return int(x) if scalar_in else x


def murmur64_mix(x: ArrayOrInt) -> ArrayOrInt:
    """MurmurHash3 / splittable-64 finalizer (invertible).

    This is the ``hash_64`` function used by the reference CQF: every step
    (xor-shift or multiplication by an odd constant) is invertible, so the
    filter can recover the original fingerprint for enumeration and merging.
    """
    scalar = not isinstance(x, np.ndarray)
    v = _as_u64(x)
    with np.errstate(over="ignore"):
        v = (v ^ (v >> _U64(33))) & _MASK64
        v = (v * _U64(0xFF51AFD7ED558CCD)) & _MASK64
        v = (v ^ (v >> _U64(33))) & _MASK64
        v = (v * _U64(0xC4CEB9FE1A85EC53)) & _MASK64
        v = (v ^ (v >> _U64(33))) & _MASK64
    return _maybe_scalar(v, scalar)


def _unshift_right_xor(v: np.ndarray, shift: int) -> np.ndarray:
    """Invert ``v ^= v >> shift`` for 64-bit values."""
    out = v.copy() if isinstance(v, np.ndarray) else v
    # Repeated application recovers all bits once shift*k >= 64.
    result = v
    for _ in range(64 // shift + 1):
        result = v ^ (result >> _U64(shift))
    return result


#: Modular inverses of the murmur finalizer multipliers (mod 2^64).
_INV1 = _U64(0x4F74430C22A54005)  # inverse of 0xFF51AFD7ED558CCD
_INV2 = _U64(0x9CB4B2F8129337DB)  # inverse of 0xC4CEB9FE1A85EC53


def murmur64_unmix(x: ArrayOrInt) -> ArrayOrInt:
    """Exact inverse of :func:`murmur64_mix`."""
    scalar = not isinstance(x, np.ndarray)
    v = _as_u64(x)
    with np.errstate(over="ignore"):
        v = _unshift_right_xor(v, 33)
        v = (v * _INV2) & _MASK64
        v = _unshift_right_xor(v, 33)
        v = (v * _INV1) & _MASK64
        v = _unshift_right_xor(v, 33)
    return _maybe_scalar(v, scalar)


def splitmix64(x: ArrayOrInt) -> ArrayOrInt:
    """splitmix64 mixer — used as the second, independent hash family."""
    scalar = not isinstance(x, np.ndarray)
    v = _as_u64(x)
    with np.errstate(over="ignore"):
        v = (v + _U64(0x9E3779B97F4A7C15)) & _MASK64
        v = ((v ^ (v >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)) & _MASK64
        v = ((v ^ (v >> _U64(27))) * _U64(0x94D049BB133111EB)) & _MASK64
        v = (v ^ (v >> _U64(31))) & _MASK64
    return _maybe_scalar(v, scalar)


def xxhash64_avalanche(x: ArrayOrInt) -> ArrayOrInt:
    """xxHash64 avalanche step — third independent family (Bloom filters)."""
    scalar = not isinstance(x, np.ndarray)
    v = _as_u64(x)
    with np.errstate(over="ignore"):
        v = (v ^ (v >> _U64(33))) & _MASK64
        v = (v * _U64(0xC2B2AE3D27D4EB4F)) & _MASK64
        v = (v ^ (v >> _U64(29))) & _MASK64
        v = (v * _U64(0x165667B19E3779F9)) & _MASK64
        v = (v ^ (v >> _U64(32))) & _MASK64
    return _maybe_scalar(v, scalar)


def hash_with_seed(x: ArrayOrInt, seed: int) -> ArrayOrInt:
    """Seeded 64-bit hash built from the mixers (for Bloom's k hashes)."""
    scalar = not isinstance(x, np.ndarray)
    v = _as_u64(x)
    s = _U64(int(seed) & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        v = (v ^ (s * _U64(0x9E3779B97F4A7C15))) & _MASK64
    out = splitmix64(v)
    return _maybe_scalar(_as_u64(out), scalar)


def hash_with_seeds(x: np.ndarray, seeds) -> np.ndarray:
    """Batched :func:`hash_with_seed`: all keys under all seeds at once.

    Returns an array of shape ``(len(x), len(seeds))`` whose ``[i, j]`` entry
    equals ``hash_with_seed(x[i], seeds[j])`` exactly — the bulk Bloom-filter
    paths rely on that equality to stay differentially testable against the
    per-item probes.
    """
    v = np.atleast_1d(_as_u64(x))
    s = np.asarray([int(seed) & 0xFFFFFFFFFFFFFFFF for seed in seeds], dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = v[:, None] ^ ((s * _U64(0x9E3779B97F4A7C15)) & _MASK64)[None, :]
    return splitmix64(mixed)


def double_hash_slots(
    x: ArrayOrInt, n_slots: int, n_probes: int
) -> np.ndarray:
    """Double hashing: ``h1 + i*h2 (mod n_slots)`` for i in [0, n_probes).

    Used by the Bloom filter (k bit positions from two hash evaluations) and
    by the TCF backing table's probe sequence.  Returns an array of shape
    ``(n_probes,)`` for scalar input or ``(len(x), n_probes)`` for array
    input.
    """
    scalar = not isinstance(x, np.ndarray)
    v = np.atleast_1d(_as_u64(x))
    h1 = np.atleast_1d(_as_u64(murmur64_mix(v)))
    h2 = np.atleast_1d(_as_u64(splitmix64(v)))
    # Force h2 odd so that the probe sequence visits distinct slots when
    # n_slots is a power of two.
    h2 = h2 | _U64(1)
    steps = np.arange(n_probes, dtype=np.uint64)
    with np.errstate(over="ignore"):
        probes = (h1[:, None] + steps[None, :] * h2[:, None]) % _U64(n_slots)
    probes = probes.astype(np.int64)
    return probes[0] if scalar else probes
