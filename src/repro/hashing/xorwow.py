"""XORWOW pseudo-random generator (cuRand substitute).

The paper's microbenchmarks generate 64-bit input items from "the hashed
output of a cuRand XORWOW generator" and build the random-query set from a
second generator with a different seed.  cuRand is unavailable without a GPU,
so this module provides a faithful XORWOW implementation (Marsaglia's
xorwow: five 32-bit xorshift words plus a Weyl counter) that can emit
vectorised 32- and 64-bit streams.

The statistical role in the benchmarks — distinct, uniformly distributed
64-bit keys — is preserved exactly; the particular constants match the
cuRand documentation.
"""

from __future__ import annotations

import numpy as np

_M32 = np.uint32(0xFFFFFFFF)


class XorwowGenerator:
    """Marsaglia XORWOW generator producing 32-bit outputs.

    Parameters
    ----------
    seed:
        Any 64-bit integer.  The five state words are derived from the seed
        with splitmix-style scrambling so that nearby seeds produce unrelated
        streams (matching cuRand's behaviour of decorrelating sequences).
    """

    WEYL_INCREMENT = np.uint32(362437)

    def __init__(self, seed: int = 0) -> None:
        self.seed(seed)

    def seed(self, seed: int) -> None:
        """(Re-)initialise the generator state from a 64-bit seed."""
        s = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        state = []
        v = s
        with np.errstate(over="ignore"):
            for _ in range(5):
                v = (v + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
                z = v
                z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
                    0xFFFFFFFFFFFFFFFF
                )
                z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
                    0xFFFFFFFFFFFFFFFF
                )
                z = (z ^ (z >> np.uint64(31))) & np.uint64(0xFFFFFFFFFFFFFFFF)
                word = np.uint32(z & np.uint64(0xFFFFFFFF))
                if word == 0:
                    word = np.uint32(0x1234567)
                state.append(word)
        self._x, self._y, self._z, self._w, self._v = state
        self._d = np.uint32(6615241 + (seed & 0xFFFF))

    def next_uint32(self) -> int:
        """Advance the state and return the next 32-bit output."""
        with np.errstate(over="ignore"):
            t = (self._x ^ (self._x >> np.uint32(2))) & _M32
            self._x, self._y, self._z, self._w = self._y, self._z, self._w, self._v
            self._v = (self._v ^ (self._v << np.uint32(4)) ^ (t ^ (t << np.uint32(1)))) & _M32
            self._d = (self._d + self.WEYL_INCREMENT) & _M32
            return int((self._v + self._d) & _M32)

    def next_uint64(self) -> int:
        """Return a 64-bit value from two consecutive 32-bit outputs."""
        hi = self.next_uint32()
        lo = self.next_uint32()
        return (hi << 32) | lo

    def uint32_array(self, n: int) -> np.ndarray:
        """Return ``n`` 32-bit outputs as a uint32 array."""
        out = np.empty(n, dtype=np.uint32)
        for i in range(n):
            out[i] = self.next_uint32()
        return out

    def uint64_array(self, n: int) -> np.ndarray:
        """Return ``n`` 64-bit outputs as a uint64 array.

        For large ``n`` this uses a vectorised jump-ahead: the sequential
        generator seeds a counter stream that is then scrambled with the
        splitmix finalizer.  The resulting keys are distinct with
        overwhelming probability and uniform in [0, 2^64), which is exactly
        the property the benchmarks rely on.
        """
        if n <= 4096:
            out = np.empty(n, dtype=np.uint64)
            for i in range(n):
                out[i] = self.next_uint64()
            return out
        base = np.uint64(self.next_uint64())
        idx = np.arange(n, dtype=np.uint64)
        with np.errstate(over="ignore"):
            v = base + idx * np.uint64(0x9E3779B97F4A7C15)
            v = ((v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(
                0xFFFFFFFFFFFFFFFF
            )
            v = ((v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & np.uint64(
                0xFFFFFFFFFFFFFFFF
            )
            v = v ^ (v >> np.uint64(31))
        return v.astype(np.uint64)


def generate_keys(n: int, seed: int = 0xC0FFEE) -> np.ndarray:
    """Generate ``n`` pseudo-random 64-bit keys (benchmark input items)."""
    return XorwowGenerator(seed).uint64_array(n)


def generate_disjoint_keys(n: int, seed: int, avoid: np.ndarray) -> np.ndarray:
    """Generate ``n`` keys guaranteed not to collide with ``avoid``.

    Used for the "random queries" workload: the paper generates the negative
    query set from a different XORWOW seed; we additionally reject the
    (astronomically rare) collisions so false-positive measurements are exact.
    """
    avoid_set = set(int(a) for a in np.asarray(avoid, dtype=np.uint64))
    gen = XorwowGenerator(seed)
    out = np.empty(n, dtype=np.uint64)
    filled = 0
    while filled < n:
        batch = gen.uint64_array(max(1024, (n - filled) * 2))
        for value in batch:
            if int(value) not in avoid_set:
                out[filled] = value
                filled += 1
                if filled == n:
                    break
    return out
