"""Hashing substrate: mixers, XORWOW generation, POTC and fingerprinting."""

from .fingerprints import FingerprintScheme, scheme_for_errorrate
from .mixers import (
    double_hash_slots,
    hash_with_seed,
    murmur64_mix,
    murmur64_unmix,
    splitmix64,
    xxhash64_avalanche,
)
from .potc import PotcHash, derive, expected_max_load, single_choice_expected_max_load
from .xorwow import XorwowGenerator, generate_disjoint_keys, generate_keys

__all__ = [
    "FingerprintScheme",
    "scheme_for_errorrate",
    "double_hash_slots",
    "hash_with_seed",
    "murmur64_mix",
    "murmur64_unmix",
    "splitmix64",
    "xxhash64_avalanche",
    "PotcHash",
    "derive",
    "expected_max_load",
    "single_choice_expected_max_load",
    "XorwowGenerator",
    "generate_disjoint_keys",
    "generate_keys",
]
