"""Quotient/remainder fingerprint splitting for quotient-filter variants.

Quotient filters hash an item to a ``p``-bit fingerprint and split it into a
``q``-bit quotient (the canonical slot index) and an ``r``-bit remainder (the
value stored in the slot).  The false-positive rate is governed by the
remainder width: two distinct items collide only if both their quotients and
their remainders agree, so :math:`\\varepsilon \\approx 2^{-r}` at high load.

This module centralises that splitting (and its inverse, needed for
enumeration, merging and resizing) so the GQF, SQF, RSQF and CPU CQF all
share one well-tested code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from .mixers import murmur64_mix, murmur64_unmix

ArrayOrInt = Union[int, np.ndarray]


@dataclass(frozen=True)
class FingerprintScheme:
    """A (quotient bits, remainder bits) fingerprint layout.

    Attributes
    ----------
    quotient_bits:
        log2 of the number of slots.
    remainder_bits:
        Width of the stored remainder.
    invertible:
        Whether the pre-hash is invertible (needed for enumeration / merge).
    """

    quotient_bits: int
    remainder_bits: int
    invertible: bool = True

    def __post_init__(self) -> None:
        if self.quotient_bits < 1:
            raise ValueError("quotient_bits must be >= 1")
        if self.remainder_bits < 1:
            raise ValueError("remainder_bits must be >= 1")
        if self.quotient_bits + self.remainder_bits > 64:
            raise ValueError("quotient + remainder bits must fit in 64")

    @property
    def fingerprint_bits(self) -> int:
        """Total fingerprint width p = q + r."""
        return self.quotient_bits + self.remainder_bits

    @property
    def n_slots(self) -> int:
        """Number of canonical slots, 2^q."""
        return 1 << self.quotient_bits

    @property
    def false_positive_rate(self) -> float:
        """Asymptotic false-positive rate at full load, ~2^-r."""
        return 2.0 ** (-self.remainder_bits)

    # -- key <-> fingerprint ------------------------------------------------
    def hash_key(self, keys: ArrayOrInt) -> ArrayOrInt:
        """Map 64-bit keys to p-bit fingerprints."""
        hashed = murmur64_mix(keys)
        mask = (1 << self.fingerprint_bits) - 1
        if isinstance(hashed, np.ndarray):
            return hashed & np.uint64(mask)
        return hashed & mask

    def unhash_fingerprint(self, fingerprints: ArrayOrInt) -> ArrayOrInt:
        """Recover the low p bits of the original key (enumeration support).

        Only exact when the key universe itself is p bits wide; for 64-bit
        keys the inverse recovers the canonical p-bit representative, which
        is what the CQF returns during enumeration.
        """
        if not self.invertible:
            raise ValueError("scheme was declared non-invertible")
        return murmur64_unmix(fingerprints)

    # -- fingerprint <-> (quotient, remainder) --------------------------------
    def split(self, fingerprints: ArrayOrInt) -> Tuple[ArrayOrInt, ArrayOrInt]:
        """Split fingerprints into (quotient, remainder)."""
        r = self.remainder_bits
        rem_mask = (1 << r) - 1
        if isinstance(fingerprints, np.ndarray):
            fp = fingerprints.astype(np.uint64)
            quotient = (fp >> np.uint64(r)) & np.uint64(self.n_slots - 1)
            remainder = fp & np.uint64(rem_mask)
            return quotient.astype(np.int64), remainder
        fp = int(fingerprints)
        return (fp >> r) & (self.n_slots - 1), fp & rem_mask

    def join(self, quotient: ArrayOrInt, remainder: ArrayOrInt) -> ArrayOrInt:
        """Inverse of :meth:`split`."""
        r = self.remainder_bits
        if isinstance(quotient, np.ndarray) or isinstance(remainder, np.ndarray):
            q = np.asarray(quotient, dtype=np.uint64)
            rem = np.asarray(remainder, dtype=np.uint64)
            return (q << np.uint64(r)) | rem
        return (int(quotient) << r) | int(remainder)

    def key_to_slot(self, keys: ArrayOrInt) -> Tuple[ArrayOrInt, ArrayOrInt]:
        """Convenience: hash keys and split into (quotient, remainder)."""
        return self.split(self.hash_key(keys))


def scheme_for_errorrate(
    n_items: int, target_fp_rate: float, allowed_remainders: Tuple[int, ...] = (8, 16, 32)
) -> FingerprintScheme:
    """Pick the smallest machine-word-aligned remainder achieving a target ε.

    The GQF only supports 8/16/32-bit remainders to keep slots word aligned
    (Section 6; a 64-bit remainder can never fit a 64-bit fingerprint next
    to the quotient); given a capacity and a target false-positive rate,
    this returns the cheapest conforming scheme.
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if not 0.0 < target_fp_rate < 1.0:
        raise ValueError("target_fp_rate must be in (0, 1)")
    quotient_bits = max(1, int(np.ceil(np.log2(n_items))))
    needed_r = int(np.ceil(np.log2(1.0 / target_fp_rate)))
    for r in sorted(allowed_remainders):
        if r >= needed_r and quotient_bits + r <= 64:
            return FingerprintScheme(quotient_bits, r)
    # Fall back to the widest allowed remainder that still fits.
    for r in sorted(allowed_remainders, reverse=True):
        if quotient_bits + r <= 64:
            return FingerprintScheme(quotient_bits, r)
    raise ValueError("no remainder width fits the requested capacity")
