"""Power-of-two-choice (POTC) hashing utilities.

The TCF assigns every item two candidate blocks via a pair of independent
hashes and inserts into the less-full one (Azar et al.'s balanced
allocations).  This keeps the maximum block load at :math:`O(\\log\\log n)`
above the average, which is what lets the filter reach a 90 % load factor
with small, cache-line-sized blocks.

This module provides the bucket-pair derivation, the fingerprint extraction,
and an analytical helper used by the tests to check the load-variance bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from .mixers import murmur64_mix, splitmix64

ArrayOrInt = Union[int, np.ndarray]
_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class PotcHash:
    """The derived addressing information for one key (or a batch of keys).

    Attributes
    ----------
    primary:
        Index of the primary candidate block.
    secondary:
        Index of the secondary candidate block.
    fingerprint:
        The ``f``-bit fingerprint stored in the table.  Never zero — zero is
        reserved for the empty slot — and never equal to the tombstone value.
    """

    primary: ArrayOrInt
    secondary: ArrayOrInt
    fingerprint: ArrayOrInt


def derive(
    keys: ArrayOrInt,
    n_blocks: int,
    fingerprint_bits: int,
    reserved_values: Tuple[int, ...] = (0, 1),
) -> PotcHash:
    """Derive (primary block, secondary block, fingerprint) for ``keys``.

    Parameters
    ----------
    keys:
        64-bit keys (scalar or array).
    n_blocks:
        Number of blocks in the table.
    fingerprint_bits:
        Width of the stored fingerprint.
    reserved_values:
        Fingerprint values that must not be produced because the table uses
        them as sentinels (0 = empty, 1 = tombstone by default).  Reserved
        fingerprints are remapped to ``max(reserved) + 1 ...`` which costs a
        negligible amount of entropy.
    """
    if n_blocks <= 0:
        raise ValueError("n_blocks must be positive")
    if not 1 <= fingerprint_bits <= 63:
        raise ValueError("fingerprint_bits must be in [1, 63]")
    scalar = not isinstance(keys, np.ndarray)
    k = np.atleast_1d(np.asarray(keys, dtype=np.uint64))

    h1 = np.atleast_1d(np.asarray(murmur64_mix(k), dtype=np.uint64))
    h2 = np.atleast_1d(np.asarray(splitmix64(k), dtype=np.uint64))

    primary = (h1 % np.uint64(n_blocks)).astype(np.int64)
    secondary = (h2 % np.uint64(n_blocks)).astype(np.int64)
    # Ensure the two choices differ whenever the table has more than 1 block;
    # otherwise POTC degenerates to single hashing for those keys.
    if n_blocks > 1:
        same = primary == secondary
        secondary = np.where(same, (secondary + 1) % n_blocks, secondary)

    fp_mask = np.uint64((1 << fingerprint_bits) - 1)
    fingerprint = ((h1 >> np.uint64(17)) ^ (h2 << np.uint64(3))) & fp_mask
    fingerprint = fingerprint.astype(np.uint64)
    if reserved_values:
        n_reserved = len(reserved_values)
        reserved_arr = np.array(sorted(reserved_values), dtype=np.uint64)
        is_reserved = np.isin(fingerprint, reserved_arr)
        # Remap reserved fingerprints deterministically above the sentinels.
        replacement = (
            np.uint64(max(reserved_values))
            + np.uint64(1)
            + (fingerprint % np.uint64(max(1, (1 << fingerprint_bits) - n_reserved - 1)))
        ) & fp_mask
        replacement = np.maximum(replacement, np.uint64(max(reserved_values) + 1))
        fingerprint = np.where(is_reserved, replacement, fingerprint)

    if scalar:
        return PotcHash(int(primary[0]), int(secondary[0]), int(fingerprint[0]))
    return PotcHash(primary, secondary, fingerprint)


def expected_max_load(n_items: int, n_blocks: int) -> float:
    """Analytical estimate of the maximum block load under POTC hashing.

    Azar et al. show the maximum load is ``n/m + O(log log m)`` with two
    choices; the tests use this as an upper-bound sanity check on the
    simulated load distribution (with a conservative constant).
    """
    if n_blocks <= 0:
        raise ValueError("n_blocks must be positive")
    average = n_items / n_blocks
    if n_blocks == 1:
        return float(n_items)
    return average + np.log(np.log(n_blocks) + 1.0) / np.log(2.0) + 4.0


def single_choice_expected_max_load(n_items: int, n_blocks: int) -> float:
    """Max load estimate under single-choice hashing (for comparison tests)."""
    if n_blocks <= 0:
        raise ValueError("n_blocks must be positive")
    average = n_items / n_blocks
    if n_blocks == 1:
        return float(n_items)
    return average + np.sqrt(2.0 * average * np.log(n_blocks)) + 3.0
