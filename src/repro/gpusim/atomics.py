"""CUDA-style atomic operations on simulated device arrays.

The point APIs of both the TCF and the GQF are built on atomics:

* the TCF writes fingerprints with ``atomicCAS`` after a cooperative-group
  ballot elects a leader (Algorithm 1 in the paper);
* the Bloom filter sets bits with ``atomicOr``;
* the point GQF acquires cache-aligned region locks with ``atomicCAS`` /
  ``atomicExch``.

The simulator is single-threaded, so the atomics always observe a consistent
memory state, but the *event* (one global atomic per call, plus retries when
the comparison fails) is recorded because atomic throughput and CAS retries
are first-order terms in the performance model.
"""

from __future__ import annotations

import numpy as np

from .memory import DeviceArray

#: Maximum failed attempts one lock acquisition can accumulate before the
#: simulated thread wins anyway (bounds the geometric contention draw).
LOCK_THRASH_CAP = 64
#: Ceiling on the per-attempt conflict probability (keeps the geometric
#: contention draw finite even for degenerate configurations).
MAX_CONTENTION_PROBABILITY = 0.999


def atomic_cas(array: DeviceArray, index: int, expected, desired) -> tuple[bool, int]:
    """Compare-and-swap on ``array[index]``.

    Returns ``(swapped, old_value)``.  The access itself counts as one atomic
    operation plus one cache-line read (the returned old value); a failed
    comparison additionally counts as a CAS retry, which the perf model
    penalises (this is how the 12-bit TCF variants become slower than the
    16-bit variants in Figure 5).
    """
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32)
    old = array.data[index]
    dtype = array.data.dtype
    if old == dtype.type(expected):
        array.recorder.add(coalesced_bytes_written=32)
        array.data[index] = dtype.type(desired)
        return True, int(old)
    array.recorder.add(cas_retries=1)
    return False, int(old)


def atomic_exch(array: DeviceArray, index: int, value) -> int:
    """Atomically exchange ``array[index]`` with ``value``; returns the old value."""
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32, coalesced_bytes_written=32)
    old = array.data[index]
    array.data[index] = array.data.dtype.type(value)
    return int(old)


def atomic_or(array: DeviceArray, index: int, mask) -> int:
    """Atomic bitwise OR; returns the previous value."""
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32, coalesced_bytes_written=32)
    old = array.data[index]
    array.data[index] = old | array.data.dtype.type(mask)
    return int(old)


def atomic_and(array: DeviceArray, index: int, mask) -> int:
    """Atomic bitwise AND; returns the previous value."""
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32, coalesced_bytes_written=32)
    old = array.data[index]
    array.data[index] = old & array.data.dtype.type(mask)
    return int(old)


def atomic_add(array: DeviceArray, index: int, value) -> int:
    """Atomic add; returns the previous value.

    Used by the bulk GQF to size per-region buffers and by the backing-table
    overflow counter.
    """
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32, coalesced_bytes_written=32)
    old = array.data[index]
    array.data[index] = old + array.data.dtype.type(value)
    return int(old)


def atomic_min(array: DeviceArray, index: int, value) -> int:
    """Atomic minimum; returns the previous value."""
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32, coalesced_bytes_written=32)
    old = array.data[index]
    array.data[index] = min(old, array.data.dtype.type(value))
    return int(old)


def atomic_max(array: DeviceArray, index: int, value) -> int:
    """Atomic maximum; returns the previous value."""
    array.recorder.add(atomic_ops=1, coalesced_bytes_read=32, coalesced_bytes_written=32)
    old = array.data[index]
    array.data[index] = max(old, array.data.dtype.type(value))
    return int(old)


class SpinLockTable:
    """A table of cache-aligned spin locks backed by ``atomicCAS``.

    The point GQF divides its slots into 8192-slot regions and associates a
    lock with each region.  The paper pads each lock to its own cache line to
    avoid 1024 locks sharing one line and thrashing; we model both layouts so
    the ablation benchmark can demonstrate why cache-aligned locks matter.

    Because the simulator is single-threaded, a lock can never be *observed*
    held by another thread within one call chain; instead the caller can
    inject expected contention probabilities (derived from the number of
    concurrently scheduled threads and the number of locks) so the perf model
    sees realistic lock-thrash counts.
    """

    def __init__(
        self,
        n_locks: int,
        recorder,
        cache_aligned: bool = True,
        cache_line_bytes: int = 128,
        contention_probability: float = 0.0,
        seed: int = 0x5EED,
    ) -> None:
        if n_locks <= 0:
            raise ValueError("need at least one lock")
        self.n_locks = int(n_locks)
        self.cache_aligned = bool(cache_aligned)
        self.cache_line_bytes = int(cache_line_bytes)
        # A cache-aligned lock table stores one 32-bit word per line; a packed
        # table stores one bit per lock.
        if cache_aligned:
            stride = cache_line_bytes // 4
            self.words = DeviceArray(
                self.n_locks * stride, np.uint32, recorder, cache_line_bytes,
                name="lock-table-aligned",
            )
            self._stride = stride
        else:
            nwords = (self.n_locks + 31) // 32
            self.words = DeviceArray(
                max(1, nwords), np.uint32, recorder, cache_line_bytes,
                name="lock-table-packed",
            )
            self._stride = 0
        self.recorder = recorder
        self.contention_probability = float(contention_probability)
        self._rng = np.random.default_rng(seed)
        self._held: set[int] = set()

    @property
    def nbytes(self) -> int:
        """Bytes of device memory used by the lock table."""
        return self.words.nbytes

    def _simulate_contention(self, lock_id: int) -> int:
        """Return the number of failed attempts before acquisition."""
        failures = 0
        if self.contention_probability > 0.0:
            # Geometric number of failures with probability p of conflicting.
            p = min(MAX_CONTENTION_PROBABILITY, self.contention_probability)
            while self._rng.random() < p:
                failures += 1
                if failures >= LOCK_THRASH_CAP:
                    break
        return failures

    def contention_failures_batch(self, n_calls: int) -> int:
        """Total thrash attempts for ``n_calls`` back-to-back :meth:`lock` calls.

        Consumes the generator stream *exactly* as ``n_calls`` sequential
        :meth:`_simulate_contention` calls would (NumPy generators produce the
        identical value sequence whether drawn one at a time or as a chunk),
        so a batched replay records the same failure total and leaves the
        generator in the same state as per-item locking.  Each chunk of draws
        is parsed into per-call segments: a draw >= p ends the call it belongs
        to, and a run of ``LOCK_THRASH_CAP`` consecutive failing draws ends a
        call at the thrash cap.  A chunk of ``remaining`` draws can complete
        at most ``remaining`` calls and never consumes a draw past the last
        needed call, so the stream position always matches the sequential
        loop.
        """
        p = min(MAX_CONTENTION_PROBABILITY, self.contention_probability)
        if p <= 0.0 or n_calls <= 0:
            return 0
        cap = LOCK_THRASH_CAP
        total = 0
        remaining = int(n_calls)
        carry = 0  # failures already drawn for the call in progress
        while remaining > 0:
            draws = self._rng.random(remaining)
            fails = draws < p
            total += int(np.count_nonzero(fails))
            successes = np.flatnonzero(~fails)
            if successes.size == 0:
                completed = (carry + fails.size) // cap
                carry = (carry + fails.size) % cap
            else:
                # Failing-run length before each success (first run resumes
                # the carried-over call), plus the trailing failing run.
                gaps = np.diff(np.concatenate(([-1], successes))) - 1
                gaps[0] += carry
                tail = fails.size - int(successes[-1]) - 1
                completed = int((gaps // cap).sum()) + successes.size + tail // cap
                carry = tail % cap
            remaining -= completed
        return total

    def lock_unlock_batch(self, n_calls: int) -> int:
        """Charge the events of ``n_calls`` lock+unlock pairs in one replay.

        The batched point paths hold each region lock only across one item's
        operation, so the final lock-table state (everything released) equals
        the initial state and only the events need recording: per call, the
        contention stream (identical generator consumption to sequential
        :meth:`lock` calls), one atomic to acquire, one to release, and the
        acquisition count.  Returns the simulated thrash total.
        """
        if n_calls <= 0:
            return 0
        failures = self.contention_failures_batch(n_calls)
        if failures:
            self.recorder.add(
                lock_failures=failures,
                atomic_ops=failures,
                cache_line_reads=failures,
            )
        self.recorder.add(
            atomic_ops=2 * n_calls,
            coalesced_bytes_read=32 * 2 * n_calls,
            coalesced_bytes_written=32 * 2 * n_calls,
            lock_acquisitions=n_calls,
        )
        return failures

    def lock(self, lock_id: int) -> int:
        """Acquire a lock; returns the number of thrash (failed) attempts."""
        if not 0 <= lock_id < self.n_locks:
            raise IndexError(f"lock id {lock_id} out of range 0..{self.n_locks - 1}")
        if lock_id in self._held:
            raise RuntimeError(f"lock {lock_id} already held (deadlock)")
        failures = self._simulate_contention(lock_id)
        if failures:
            self.recorder.add(
                lock_failures=failures,
                atomic_ops=failures,
                cache_line_reads=failures,
            )
        if self.cache_aligned:
            atomic_exch(self.words, lock_id * self._stride, 1)
        else:
            word, bit = divmod(lock_id, 32)
            atomic_or(self.words, word, np.uint32(1) << np.uint32(bit))
        self.recorder.add(lock_acquisitions=1)
        self._held.add(lock_id)
        return failures

    def unlock(self, lock_id: int) -> None:
        """Release a previously acquired lock."""
        if lock_id not in self._held:
            raise RuntimeError(f"lock {lock_id} not held")
        if self.cache_aligned:
            atomic_exch(self.words, lock_id * self._stride, 0)
        else:
            word, bit = divmod(lock_id, 32)
            atomic_and(self.words, word, ~(np.uint32(1) << np.uint32(bit)) & np.uint32(0xFFFFFFFF))
        self._held.discard(lock_id)

    def is_locked(self, lock_id: int) -> bool:
        """Host-side check of whether the lock is currently held."""
        return lock_id in self._held

    @property
    def held_locks(self) -> frozenset[int]:
        """The set of currently held lock ids."""
        return frozenset(self._held)
