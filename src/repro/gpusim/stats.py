"""Hardware-event counters recorded by the GPU execution-model simulator.

Every filter operation in this reproduction executes *functionally* against
simulated device memory and, as a side effect, records the hardware events
that dominate GPU filter performance according to the paper's design
analysis (Section 3): cache-line transactions, atomic operations and their
retries, thread divergence inside cooperative groups, lock acquisitions and
thrash, and the number of slots shifted by Robin-Hood insertion.

The counters are deliberately cheap plain-integer attributes so that the
functional simulation stays fast enough to run millions of operations.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator
import contextlib


@dataclass
class KernelStats:
    """Accumulated hardware events for one (or more) simulated kernels.

    All attributes are plain counters; :meth:`merge` adds another stats
    object into this one, and :meth:`scaled` divides by an operation count to
    obtain per-operation averages for the performance model.
    """

    #: Number of 128-byte cache-line read transactions issued to global memory.
    cache_line_reads: int = 0
    #: Number of 128-byte cache-line write transactions issued to global memory.
    cache_line_writes: int = 0
    #: Bytes read through coalesced (full-line) accesses.
    coalesced_bytes_read: int = 0
    #: Bytes written through coalesced (full-line) accesses.
    coalesced_bytes_written: int = 0
    #: Reads and writes served from block-shared memory (bulk TCF staging).
    shared_memory_accesses: int = 0
    #: Global-memory atomic operations (CAS, OR, ADD, EXCH).
    atomic_ops: int = 0
    #: atomicCAS operations whose comparison failed and had to retry.
    cas_retries: int = 0
    #: Ballot / shuffle / vote warp intrinsics executed.
    warp_intrinsics: int = 0
    #: Branches on which lanes of a cooperative group diverged.
    divergent_branches: int = 0
    #: Successful lock acquisitions (point GQF region locks).
    lock_acquisitions: int = 0
    #: Failed lock attempts, i.e. thrash events caused by contention.
    lock_failures: int = 0
    #: Remainder slots moved by Robin-Hood shifting (GQF/SQF inserts+deletes).
    slots_shifted: int = 0
    #: Cuckoo-style kick operations (not used by the TCF/GQF, kept for
    #: completeness of the design-space analysis tooling).
    kicks: int = 0
    #: Simple arithmetic/logic instructions executed (approximate).
    instructions: int = 0
    #: Number of kernel launches performed.
    kernel_launches: int = 0
    #: Number of items sorted by thrust-like device primitives.
    items_sorted: int = 0
    #: Number of items passed through reduce_by_key.
    items_reduced: int = 0
    #: Logical operations (inserts/queries/deletes) covered by these stats.
    operations: int = 0

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Add ``other``'s counters into this object and return ``self``."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "KernelStats":
        """Return an independent copy of this stats object."""
        out = KernelStats()
        out.merge(self)
        return out

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def per_operation(self) -> Dict[str, float]:
        """Return per-operation averages (using :attr:`operations`).

        Returns an empty dict when no operations were recorded.
        """
        if self.operations <= 0:
            return {}
        return {
            f.name: getattr(self, f.name) / self.operations
            for f in fields(self)
            if f.name != "operations"
        }

    @property
    def total_bytes_read(self) -> int:
        """Total bytes moved by read transactions (line-granular)."""
        return self.cache_line_reads * 128 + self.coalesced_bytes_read

    @property
    def total_bytes_written(self) -> int:
        """Total bytes moved by write transactions (line-granular)."""
        return self.cache_line_writes * 128 + self.coalesced_bytes_written

    @property
    def total_bytes_moved(self) -> int:
        """Total bytes moved in either direction."""
        return self.total_bytes_read + self.total_bytes_written

    def __add__(self, other: "KernelStats") -> "KernelStats":
        out = self.copy()
        out.merge(other)
        return out


class StatsRecorder:
    """A hierarchical recorder of :class:`KernelStats`.

    Filters hold a recorder and funnel every simulated hardware event through
    it.  Benchmarks use :meth:`section` to scope the events of a particular
    phase (e.g. "inserts" vs "positive queries") so that throughput can be
    derived per phase.
    """

    def __init__(self) -> None:
        self.total = KernelStats()
        self.sections: Dict[str, KernelStats] = {}
        self._active: list[KernelStats] = []

    # -- event sinks ------------------------------------------------------
    def add(self, **events: int) -> None:
        """Record raw event counts, e.g. ``rec.add(atomic_ops=1)``."""
        sinks = [self.total] + self._active
        for sink in sinks:
            for name, value in events.items():
                setattr(sink, name, getattr(sink, name) + value)

    def add_stats(self, stats: KernelStats) -> None:
        """Merge a pre-accumulated :class:`KernelStats` into the recorder."""
        self.total.merge(stats)
        for sink in self._active:
            sink.merge(stats)

    # -- sections ---------------------------------------------------------
    @contextlib.contextmanager
    def section(self, name: str) -> Iterator[KernelStats]:
        """Context manager scoping events into a named section.

        Nested sections each receive the events recorded while active.
        Re-entering a section name accumulates into the same stats object.
        """
        stats = self.sections.setdefault(name, KernelStats())
        self._active.append(stats)
        try:
            yield stats
        finally:
            self._active.pop()

    def section_stats(self, name: str) -> KernelStats:
        """Return the stats recorded for ``name`` (empty if never entered)."""
        return self.sections.get(name, KernelStats())

    def reset(self) -> None:
        """Clear the total, every section, and any active scopes."""
        self.total = KernelStats()
        self.sections = {}
        self._active = []


#: A module-level "null" recorder used by structures created without an
#: explicit recorder.  It still counts (cheaply) but nobody reads it unless
#: the caller passes their own recorder.
GLOBAL_RECORDER = StatsRecorder()
