"""Block-shared memory staging used by the bulk TCF.

The bulk TCF loads each block of the table into shared memory, performs all
reads/writes with shared-memory atomics, and finally writes the block back to
global memory as one coalesced cache-wide store (Section 4.2 of the paper).
:class:`SharedMemoryTile` models that staging buffer: loads/stores against
global memory are counted as coalesced line transactions, while accesses to
the tile itself are counted as (much cheaper) shared-memory accesses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .memory import DeviceArray
from .stats import StatsRecorder


def account_batched_tiles(
    source: DeviceArray,
    n_tiles: int,
    tile_elems: int,
    recorder: Optional[StatsRecorder] = None,
    rewritten: bool = True,
    instructions_per_tile: int = 0,
) -> None:
    """Record the traffic of staging ``n_tiles`` equal-sized tiles at once.

    The vectorised bulk paths operate on many blocks as one whole-array
    operation instead of entering a :class:`SharedMemoryTile` context per
    block.  This helper charges exactly what ``n_tiles`` stage / ``view()`` /
    ``replace()`` / flush cycles would have: one coalesced line load and (when
    ``rewritten``) one coalesced line store per tile, plus two shared-memory
    accesses per element (read into shared, write back after the merge).
    Passing ``rewritten=False`` models read-only staging (queries), which
    costs the load and a single pass over the tile.
    """
    if n_tiles <= 0 or tile_elems <= 0:
        return
    recorder = recorder if recorder is not None else source.recorder
    lines_per_tile = max(1, (tile_elems * source.itemsize + source.cache_line_bytes - 1)
                         // source.cache_line_bytes)
    events = {
        "cache_line_reads": n_tiles * lines_per_tile,
        "shared_memory_accesses": n_tiles * tile_elems * (2 if rewritten else 1),
    }
    if rewritten:
        events["cache_line_writes"] = n_tiles * lines_per_tile
    if instructions_per_tile:
        events["instructions"] = n_tiles * instructions_per_tile
    recorder.add(**events)


class SharedMemoryTile:
    """A staging copy of a contiguous region of a :class:`DeviceArray`.

    Parameters
    ----------
    source:
        The device array being staged.
    start, stop:
        The staged element range ``[start, stop)``.
    recorder:
        Stats recorder; defaults to the source array's recorder.
    """

    def __init__(
        self,
        source: DeviceArray,
        start: int,
        stop: int,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        if not 0 <= start <= stop <= source.size:
            raise IndexError(
                f"tile range [{start}, {stop}) outside array of size {source.size}"
            )
        self.source = source
        self.start = int(start)
        self.stop = int(stop)
        self.recorder = recorder if recorder is not None else source.recorder
        # Cooperative, coalesced load of the whole tile.
        self.local = np.array(source.read_range(start, stop), copy=True)
        self._dirty = False

    @property
    def size(self) -> int:
        return self.stop - self.start

    # -- shared-memory accesses ------------------------------------------------
    def read(self, offset: int):
        """Read one element from the tile (shared-memory access)."""
        self.recorder.add(shared_memory_accesses=1)
        return self.local[offset]

    def write(self, offset: int, value) -> None:
        """Write one element into the tile (shared-memory access)."""
        self.recorder.add(shared_memory_accesses=1)
        self.local[offset] = value
        self._dirty = True

    def view(self) -> np.ndarray:
        """Whole-tile view (counted as one shared access per element)."""
        self.recorder.add(shared_memory_accesses=self.size)
        return self.local

    def replace(self, values: np.ndarray) -> None:
        """Replace the whole tile contents (e.g. after a merge)."""
        values = np.asarray(values, dtype=self.local.dtype)
        if values.size != self.size:
            raise ValueError("replacement must match the tile size")
        self.recorder.add(shared_memory_accesses=self.size)
        self.local = np.array(values, copy=True)
        self._dirty = True

    def shared_atomic_add(self, offset: int, value) -> int:
        """Shared-memory atomic add (cheap, not a global atomic)."""
        self.recorder.add(shared_memory_accesses=1, instructions=1)
        old = self.local[offset]
        self.local[offset] = old + self.local.dtype.type(value)
        return int(old)

    def shared_atomic_cas(self, offset: int, expected, desired) -> tuple[bool, int]:
        """Shared-memory CAS; returns (swapped, old_value)."""
        self.recorder.add(shared_memory_accesses=1, instructions=1)
        old = self.local[offset]
        if old == self.local.dtype.type(expected):
            self.local[offset] = self.local.dtype.type(desired)
            return True, int(old)
        return False, int(old)

    # -- write-back ----------------------------------------------------------
    def flush(self) -> None:
        """Write the tile back to global memory as a coalesced store."""
        if self._dirty:
            self.source.write_range(self.start, self.local)
            self._dirty = False

    def __enter__(self) -> "SharedMemoryTile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
