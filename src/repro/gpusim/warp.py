"""Warps and cooperative groups.

The TCF's block operations (Algorithm 1 in the paper) are expressed in terms
of CUDA cooperative groups: the lanes of a group stride over a block in
parallel, ballot on which lanes found an empty slot, elect a leader with
``__ffs`` and let the leader attempt an ``atomicCAS``.

:class:`CooperativeGroup` reproduces that programming model.  The lanes are
simulated with vectorised NumPy operations over ``size`` elements, and the
intrinsics (``ballot``, ``ffs``, ``shfl``) are counted so that the perf model
can reason about the compute/memory trade-off that Figure 5 sweeps (smaller
groups → more concurrent cache-line loads in flight, larger groups → fewer
divergent strides per block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .stats import GLOBAL_RECORDER, StatsRecorder

#: Number of threads in a CUDA warp on every NVIDIA architecture we model.
WARP_SIZE = 32

#: Cooperative group sizes allowed by CUDA's ``tiled_partition``.
VALID_CG_SIZES = (1, 2, 4, 8, 16, 32)


def ffs(mask: int) -> int:
    """Find-first-set, CUDA semantics: 1-based index of the lowest set bit.

    Returns 0 when ``mask`` is zero (exactly like ``__ffs``).
    """
    mask = int(mask)
    if mask == 0:
        return 0
    return (mask & -mask).bit_length()


def popc(mask: int) -> int:
    """Population count (``__popc``)."""
    return bin(int(mask) & 0xFFFFFFFF).count("1")


@dataclass
class WarpConfig:
    """Partitioning of a warp into cooperative groups.

    ``cg_size`` lanes per group, so ``WARP_SIZE // cg_size`` groups per warp.
    Used by the perf model to reason about how many cache-line loads a warp
    can have in flight simultaneously.
    """

    cg_size: int

    def __post_init__(self) -> None:
        if self.cg_size not in VALID_CG_SIZES:
            raise ValueError(
                f"cooperative group size must be one of {VALID_CG_SIZES}, "
                f"got {self.cg_size}"
            )

    @property
    def groups_per_warp(self) -> int:
        return WARP_SIZE // self.cg_size


class CooperativeGroup:
    """A tile of ``size`` threads cooperating on one filter operation.

    The group exposes the subset of the CUDA cooperative-groups API the
    filters need:

    * :meth:`thread_rank` / :attr:`size`
    * :meth:`ballot` — returns a bitmask of lanes voting true
    * :meth:`elect_leader` — ``__ffs`` over a ballot
    * :meth:`strided_indices` — the classic ``rank; rank += size`` loop
    * :meth:`shfl` — broadcast a value from one lane

    Lanes are simulated eagerly (vectorised), not with real threads.  Each
    intrinsic is recorded in the stats recorder.
    """

    def __init__(
        self,
        size: int,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        if size not in VALID_CG_SIZES:
            raise ValueError(
                f"cooperative group size must be one of {VALID_CG_SIZES}, got {size}"
            )
        self.size = int(size)
        self.recorder = recorder if recorder is not None else GLOBAL_RECORDER

    # -- lane bookkeeping ---------------------------------------------------
    def thread_ranks(self) -> np.ndarray:
        """Ranks of every lane in the group (0..size-1)."""
        return np.arange(self.size, dtype=np.int64)

    def strided_indices(self, start: int, stop: int) -> Iterable[np.ndarray]:
        """Yield, per stride iteration, the indices each lane inspects.

        Mirrors ``for (i = rank; i < stop; i += size)`` executed by all lanes
        in lock step.  Iterations where some lanes run past ``stop`` are
        divergent and are counted as such.
        """
        stride_start = start
        while stride_start < stop:
            lane_indices = stride_start + self.thread_ranks()
            valid = lane_indices < stop
            if not np.all(valid):
                self.recorder.add(divergent_branches=1)
                lane_indices = lane_indices[valid]
            self.recorder.add(instructions=self.size)
            yield lane_indices
            stride_start += self.size

    # -- warp intrinsics ------------------------------------------------------
    def ballot(self, votes: np.ndarray) -> int:
        """Return the bitmask of lanes whose vote is truthy.

        ``votes`` may be shorter than the group size (trailing lanes
        implicitly vote false), matching a divergent tail stride.
        """
        votes = np.asarray(votes, dtype=bool)
        if votes.size > self.size:
            raise ValueError("more votes than lanes in the group")
        self.recorder.add(warp_intrinsics=1)
        mask = 0
        for lane, vote in enumerate(votes):
            if vote:
                mask |= 1 << lane
        return mask

    def elect_leader(self, ballot_mask: int) -> int:
        """Return the lane rank of the leader (lowest set bit), or -1."""
        self.recorder.add(warp_intrinsics=1, instructions=1)
        pos = ffs(ballot_mask)
        return pos - 1 if pos else -1

    def shfl(self, value, src_lane: int):
        """Broadcast ``value`` from ``src_lane`` to the whole group."""
        if not 0 <= src_lane < self.size:
            raise ValueError("source lane out of range")
        self.recorder.add(warp_intrinsics=1)
        return value

    def sync(self) -> None:
        """Group barrier (no-op functionally, counted as an instruction)."""
        self.recorder.add(instructions=1)

    def any(self, votes: np.ndarray) -> bool:
        """True if any lane votes true (``cg::any``)."""
        return self.ballot(votes) != 0

    def all(self, votes: np.ndarray) -> bool:
        """True if all lanes vote true (``cg::all``)."""
        votes = np.asarray(votes, dtype=bool)
        self.recorder.add(warp_intrinsics=1)
        return bool(votes.size == self.size and votes.all())

    def __repr__(self) -> str:  # pragma: no cover
        return f"CooperativeGroup(size={self.size})"


def partition_warp(
    cg_size: int, recorder: Optional[StatsRecorder] = None
) -> list[CooperativeGroup]:
    """Partition a warp into ``32 // cg_size`` cooperative groups."""
    cfg = WarpConfig(cg_size)
    return [CooperativeGroup(cg_size, recorder) for _ in range(cfg.groups_per_warp)]
