"""Simulated GPU device memory with cache-line accounting.

:class:`DeviceArray` wraps a NumPy array and records every access as one or
more 128-byte cache-line transactions in a :class:`~repro.gpusim.stats.
StatsRecorder`.  The filters in this reproduction do all of their table
accesses through these wrappers, so the number of transactions counted per
operation matches the paper's first-principles analysis (e.g. "two cache-line
probes per TCF query", ":math:`\\log(1/\\varepsilon)` cache misses per Bloom
filter insert").

:class:`DeviceAllocator` tracks total allocated bytes, which is what the
MetaHipMer memory-accounting experiment (Table 3) reports.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .stats import GLOBAL_RECORDER, StatsRecorder


class DeviceArray:
    """A typed array living in simulated GPU global memory.

    Parameters
    ----------
    shape:
        Shape of the array (int or tuple).
    dtype:
        NumPy dtype of each element.
    recorder:
        Stats recorder receiving the cache-line transaction counts.
    cache_line_bytes:
        Memory-transaction granularity (128 bytes on V100/A100).
    fill:
        Optional fill value for initialisation.
    name:
        Debug label used in ``repr``.
    """

    def __init__(
        self,
        shape,
        dtype,
        recorder: Optional[StatsRecorder] = None,
        cache_line_bytes: int = 128,
        fill=0,
        name: str = "devarray",
    ) -> None:
        self.data = np.full(shape, fill, dtype=dtype)
        self.recorder = recorder if recorder is not None else GLOBAL_RECORDER
        self.cache_line_bytes = int(cache_line_bytes)
        self.name = name

    # -- basic properties --------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DeviceArray(name={self.name!r}, shape={self.data.shape}, "
            f"dtype={self.data.dtype}, nbytes={self.nbytes})"
        )

    # -- cache-line helpers --------------------------------------------------
    @property
    def slots_per_line(self) -> int:
        """How many elements fit in a single cache line (at least 1)."""
        return max(1, self.cache_line_bytes // self.itemsize)

    def line_of(self, index: int) -> int:
        """Return the cache-line number containing flat element ``index``."""
        return int(index) // self.slots_per_line

    def lines_in_range(self, start: int, stop: int) -> int:
        """Number of distinct cache lines touched by ``[start, stop)``."""
        if stop <= start:
            return 0
        first = self.line_of(start)
        last = self.line_of(stop - 1)
        return last - first + 1

    # -- accounted accesses ---------------------------------------------------
    def read(self, index: int):
        """Read a single element, counting one cache-line read."""
        self.recorder.add(cache_line_reads=1)
        return self.data[index]

    def write(self, index: int, value) -> None:
        """Write a single element, counting one cache-line write."""
        self.recorder.add(cache_line_writes=1)
        self.data[index] = value

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read ``[start, stop)``; counts the distinct cache lines touched.

        This models a cooperative group (or a single thread) streaming over a
        contiguous region: contiguous accesses coalesce into full-line
        transactions.
        """
        lines = self.lines_in_range(start, stop)
        if lines:
            self.recorder.add(cache_line_reads=lines)
        return self.data[start:stop]

    def write_range(self, start: int, values: np.ndarray) -> None:
        """Write a contiguous range starting at ``start`` (coalesced)."""
        stop = start + len(values)
        lines = self.lines_in_range(start, stop)
        if lines:
            self.recorder.add(
                cache_line_writes=lines,
            )
        self.data[start:stop] = values

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Random-gather a set of elements.

        Each distinct cache line touched counts as one read transaction; this
        is what makes Bloom-filter probes (k random lines) expensive and
        blocked-Bloom probes (one line) cheap in the simulator.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            lines = np.unique(indices // self.slots_per_line)
            self.recorder.add(cache_line_reads=int(lines.size))
        return self.data[indices]

    def scatter(self, indices: np.ndarray, values) -> None:
        """Random-scatter writes; counts distinct cache lines written."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            lines = np.unique(indices // self.slots_per_line)
            self.recorder.add(cache_line_writes=int(lines.size))
        self.data[indices] = values

    # -- unaccounted "host" access --------------------------------------------
    def peek(self, index=None):
        """Host-side debug access that does not count any transaction."""
        if index is None:
            return self.data
        return self.data[index]


class DeviceAllocator:
    """Tracks device-memory allocations for memory-accounting experiments.

    The MetaHipMer integration (Table 3) reports how much GPU/host memory the
    TCF and the k-mer hash table consume.  Filters register their backing
    arrays with an allocator so applications can report structure footprints
    without reaching into implementation details.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        self.capacity_bytes = capacity_bytes
        self.allocations: dict[str, int] = {}

    def register(self, label: str, nbytes: int) -> None:
        """Record an allocation of ``nbytes`` under ``label`` (accumulates)."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        new_total = self.total_bytes + nbytes
        if self.capacity_bytes is not None and new_total > self.capacity_bytes:
            raise MemoryError(
                f"device OOM: requested {nbytes} bytes for {label!r}, "
                f"{self.total_bytes} already allocated of {self.capacity_bytes}"
            )
        self.allocations[label] = self.allocations.get(label, 0) + nbytes

    def release(self, label: str) -> None:
        """Release every allocation recorded under ``label``."""
        self.allocations.pop(label, None)

    @property
    def total_bytes(self) -> int:
        """Total bytes currently registered."""
        return sum(self.allocations.values())

    def bytes_for(self, label_prefix: str) -> int:
        """Total bytes for allocations whose label starts with a prefix."""
        return sum(
            size
            for label, size in self.allocations.items()
            if label.startswith(label_prefix)
        )

    def report(self) -> dict[str, int]:
        """Return a copy of the allocation table."""
        return dict(self.allocations)
