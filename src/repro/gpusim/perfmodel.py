"""Analytical performance model converting hardware events into time.

The functional simulation (see :mod:`repro.gpusim.memory`, ``atomics``,
``warp``) counts the events that the paper's Section 3 identifies as the
determinants of GPU filter performance: cache-line transactions, atomics and
their retries, lock thrash, divergence and Robin-Hood shifting.  This module
turns an event trace into an estimated kernel time for a given
:class:`~repro.gpusim.device.GPUSpec` using a roofline-style model:

``time = max(memory_time, atomic_time, compute_time) / saturation
         + contention_penalty + launch_overhead``

where

* ``memory_time`` charges random (single-line) transactions at the device's
  uncoalesced efficiency, coalesced traffic at full bandwidth, and applies an
  L2 bandwidth boost when the whole structure fits in L2 (this produces the
  BF/BBF bumps at 2^22 on the V100 and 2^24 on the A100 in Figure 3);
* ``atomic_time`` charges global atomics, CAS retries and lock thrash against
  the device's atomic throughput;
* ``saturation`` is the fraction of the device's active-thread limit exposed
  by the kernel (bulk kernels that map one thread per region expose few
  threads on small filters, which is why bulk insert throughput grows with
  the filter size in Figure 4);
* ``contention_penalty`` serialises lock critical sections when many threads
  target few locks (the point GQF's dominant cost).

None of the constants are fitted to the paper's measurements; they come from
public device parameters, so the output should be read as *relative shape*,
not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .device import GPUSpec
from .stats import KernelStats

#: Extra atomic-pipe work charged per failed CAS (the retry re-issues the CAS
#: and re-reads the line).
CAS_RETRY_WEIGHT = 2.0
#: Extra atomic-pipe work charged per failed lock acquisition (spin iteration).
LOCK_FAILURE_WEIGHT = 4.0
#: Latency of one serialized lock critical section, in seconds.  Used only for
#: the serialization component of heavily contended point-GQF inserts.
LOCK_CRITICAL_SECTION_S = 600e-9
#: Instruction-equivalents charged per warp intrinsic (ballot/shfl).
INTRINSIC_WEIGHT = 2.0
#: Issue cycles per cooperative-group stride iteration over a block.
CG_ITERATION_CYCLES = 4.0
#: Issue cycles to launch one cache-line load per cooperative group.
CG_ISSUE_CYCLES = 8.0
#: Memory latency (cycles) that a warp must hide across its groups.
CG_MEMORY_LATENCY_CYCLES = 500.0
#: Instructions the warp schedulers of one SM can issue per cycle.
ISSUE_SLOTS_PER_SM = 2.0
#: Instruction-equivalents charged per shared-memory access.
SHARED_ACCESS_WEIGHT = 1.0
#: Instruction-equivalents charged per divergent branch (both paths execute).
DIVERGENCE_WEIGHT = 4.0


@dataclass
class PerfEstimate:
    """Result of a performance-model evaluation.

    Attributes
    ----------
    time_s:
        Estimated wall-clock time of the phase in seconds.
    throughput_ops_per_s:
        Operations per second (``n_ops / time_s``).
    n_ops:
        Number of logical operations the estimate covers.
    breakdown:
        Component times in seconds (memory, atomics, compute, contention,
        launch) plus the saturation fraction used.
    """

    time_s: float
    throughput_ops_per_s: float
    n_ops: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_bops(self) -> float:
        """Throughput in billions of operations per second (paper's unit)."""
        return self.throughput_ops_per_s / 1e9

    @property
    def throughput_mops(self) -> float:
        """Throughput in millions of operations per second."""
        return self.throughput_ops_per_s / 1e6


def cg_warp_cycles(
    block_size: int,
    cg_size: int,
    blocks_probed: float = 1.5,
    iteration_cycles: float = CG_ITERATION_CYCLES,
    issue_cycles: float = CG_ISSUE_CYCLES,
    memory_latency: float = CG_MEMORY_LATENCY_CYCLES,
    warp_size: int = 32,
) -> float:
    """Per-operation warp-scheduler cycles for a cooperative-group block scan.

    This models the compute/memory trade-off Figure 5 sweeps (Section 6.3):
    a warp is partitioned into ``warp_size / cg_size`` groups, each handling
    one filter operation.

    * **Small groups** (many per warp) keep many cache-line loads in flight,
      hiding memory latency well, but every group needs
      ``ceil(block_size / cg_size)`` stride iterations to scan its block, so
      the warp spends more issue slots on compute.
    * **Large groups** scan a block in one stride but leave the warp with few
      independent loads, so the raw memory latency shows through.

    The returned value is the issue-slot cost per operation:
    ``strides * iteration_cycles * blocks_probed + issue_cycles * blocks_probed
    + memory_latency * blocks_probed / groups^2`` (the latency term is
    amortised once over the groups of a warp and once over the operations
    those groups complete).
    """
    if cg_size <= 0 or block_size <= 0:
        raise ValueError("block_size and cg_size must be positive")
    groups = max(1, warp_size // cg_size)
    strides = -(-block_size // cg_size)  # ceil division
    return (
        strides * iteration_cycles * blocks_probed
        + issue_cycles * blocks_probed
        + memory_latency * blocks_probed / float(groups * groups)
    )


def scale_stats(stats: KernelStats, factor: float) -> KernelStats:
    """Scale per-operation-proportional counters by ``factor``.

    Kernel-launch counts are *not* scaled: a batch of 2^30 point inserts is
    still one kernel launch, regardless of how many operations the functional
    simulation actually executed.
    """
    out = KernelStats()
    for name, value in stats.as_dict().items():
        if name in ("kernel_launches",):
            setattr(out, name, value)
        else:
            setattr(out, name, int(round(value * factor)))
    return out


def estimate_time(
    stats: KernelStats,
    n_ops: int,
    device: GPUSpec,
    structure_bytes: int,
    active_threads: int,
    simulated_ops: Optional[int] = None,
    lock_serialization: float = 0.0,
    warp_cycles_per_op: float = 0.0,
) -> PerfEstimate:
    """Estimate the execution time of a phase.

    Parameters
    ----------
    stats:
        Event counts recorded by the functional simulation.
    n_ops:
        The *nominal* number of logical operations the phase represents (for
        a Figure 3 point at filter size 2^28, this is the 90 %-load item
        count even though the functional simulation ran a smaller sample).
    device:
        Target GPU.
    structure_bytes:
        Nominal footprint of the filter; decides L2 residency.
    active_threads:
        Threads exposed by the kernel (items x cg_size for point kernels,
        regions for bulk kernels), capped by the perf model at the device's
        active-thread limit.
    simulated_ops:
        Number of operations the functional simulation actually performed.
        Defaults to ``stats.operations`` or ``n_ops``.
    lock_serialization:
        Average number of *other* threads contending for the same lock during
        a critical section; multiplies the serialized lock time.  The point
        GQF computes this from ``active_threads / n_locks``.
    warp_cycles_per_op:
        Warp-scheduler issue cycles per operation (see :func:`cg_warp_cycles`);
        0 disables the warp-scheduling bound.

    Returns
    -------
    PerfEstimate
    """
    if n_ops <= 0:
        return PerfEstimate(0.0, 0.0, 0, {})
    sim_ops = simulated_ops or stats.operations or n_ops
    factor = n_ops / float(sim_ops)
    scaled = scale_stats(stats, factor)

    # ---- memory time ------------------------------------------------------
    random_bytes = (scaled.cache_line_reads + scaled.cache_line_writes) * device.cache_line_bytes
    coalesced_bytes = scaled.coalesced_bytes_read + scaled.coalesced_bytes_written
    in_l2 = device.fits_in_l2(structure_bytes)
    bandwidth = device.l2_bandwidth_bytes_per_s if in_l2 else device.mem_bandwidth_bytes_per_s
    random_efficiency = 0.6 if in_l2 else device.uncoalesced_efficiency
    memory_time = 0.0
    if random_bytes:
        memory_time += random_bytes / (bandwidth * random_efficiency)
    if coalesced_bytes:
        memory_time += coalesced_bytes / bandwidth

    # ---- atomic time -------------------------------------------------------
    atomic_work = (
        scaled.atomic_ops
        + CAS_RETRY_WEIGHT * scaled.cas_retries
        + LOCK_FAILURE_WEIGHT * scaled.lock_failures
    )
    atomic_time = atomic_work / device.atomic_ops_per_s if atomic_work else 0.0

    # ---- compute time ------------------------------------------------------
    instruction_work = (
        scaled.instructions
        + INTRINSIC_WEIGHT * scaled.warp_intrinsics
        + SHARED_ACCESS_WEIGHT * scaled.shared_memory_accesses
        + DIVERGENCE_WEIGHT * scaled.divergent_branches
    )
    compute_time = instruction_work / device.instructions_per_s if instruction_work else 0.0

    # ---- warp-scheduler issue bound -------------------------------------------
    issue_time = 0.0
    if warp_cycles_per_op > 0.0:
        issue_slots_per_s = device.sm_count * ISSUE_SLOTS_PER_SM * device.clock_mhz * 1e6
        issue_time = n_ops * warp_cycles_per_op / issue_slots_per_s

    # ---- parallelism saturation ---------------------------------------------
    saturation = device.saturation_fraction(active_threads)
    if saturation <= 0:
        saturation = 1.0 / device.max_active_threads
    roofline = max(memory_time, atomic_time, compute_time, issue_time) / saturation

    # ---- contention serialization --------------------------------------------
    contention_time = 0.0
    if lock_serialization > 0.0 and scaled.lock_acquisitions:
        # Each critical section that overlaps with `lock_serialization` other
        # threads on the same lock must wait for them; total serialized time
        # is spread over the number of locks actually being worked in
        # parallel, which is what the per-op acquisition count already
        # captures once divided by exposed parallelism.
        serialized_sections = scaled.lock_acquisitions * lock_serialization
        parallel_lanes = max(1.0, float(min(active_threads, device.max_active_threads)))
        contention_time = serialized_sections * LOCK_CRITICAL_SECTION_S / parallel_lanes

    # ---- launch overhead -------------------------------------------------------
    launch_time = scaled.kernel_launches * device.kernel_launch_overhead_us * 1e-6

    total = roofline + contention_time + launch_time
    if total <= 0.0:
        total = 1e-12
    return PerfEstimate(
        time_s=total,
        throughput_ops_per_s=n_ops / total,
        n_ops=n_ops,
        breakdown={
            "memory_time_s": memory_time,
            "atomic_time_s": atomic_time,
            "compute_time_s": compute_time,
            "issue_time_s": issue_time,
            "roofline_time_s": roofline,
            "contention_time_s": contention_time,
            "launch_time_s": launch_time,
            "saturation": saturation,
            "in_l2": float(in_l2),
        },
    )


def combine_estimates(*estimates: PerfEstimate) -> PerfEstimate:
    """Sum several phase estimates into one (e.g. sort + insert kernels)."""
    total_time = sum(e.time_s for e in estimates)
    total_ops = max((e.n_ops for e in estimates), default=0)
    breakdown: Dict[str, float] = {}
    for e in estimates:
        for key, value in e.breakdown.items():
            if key in ("saturation", "in_l2"):
                breakdown[key] = value
            else:
                breakdown[key] = breakdown.get(key, 0.0) + value
    throughput = total_ops / total_time if total_time > 0 else 0.0
    return PerfEstimate(total_time, throughput, total_ops, breakdown)
