"""Kernel-launch abstraction for the GPU execution-model simulator.

Point filters map one cooperative group per item; bulk filters map one thread
(or one cooperative group) per *region* or per *block*.  The number of
threads a kernel exposes determines how well it saturates the GPU, which is
the mechanism behind the paper's observation that bulk-filter insert
throughput grows with the filter size (Section 6.2).

:class:`KernelLaunch` records the launch geometry and the logical operation
count so :mod:`repro.gpusim.perfmodel` can combine the event trace and the
exposed parallelism into an estimated execution time.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator
from .stats import KernelStats, StatsRecorder
from .warp import WARP_SIZE


@dataclass
class LaunchConfig:
    """Geometry of a simulated kernel launch.

    Attributes
    ----------
    n_work_items:
        Logical work items (items inserted, regions processed, ...).
    threads_per_item:
        Threads cooperating on each work item (the cooperative-group size for
        point filters, 1 for region-per-thread bulk kernels).
    block_size:
        CUDA thread-block size; only used for reporting.
    """

    n_work_items: int
    threads_per_item: int = 1
    block_size: int = 256

    def __post_init__(self) -> None:
        if self.n_work_items < 0:
            raise ValueError("work-item count must be non-negative")
        if self.threads_per_item <= 0:
            raise ValueError("threads_per_item must be positive")
        if self.block_size <= 0 or self.block_size % WARP_SIZE:
            raise ValueError("block_size must be a positive multiple of 32")

    @property
    def total_threads(self) -> int:
        """Total threads requested by the launch."""
        return self.n_work_items * self.threads_per_item

    @property
    def grid_size(self) -> int:
        """Number of thread blocks launched."""
        if self.total_threads == 0:
            return 0
        return (self.total_threads + self.block_size - 1) // self.block_size


@dataclass
class KernelRecord:
    """One recorded kernel: its geometry plus the stats it produced."""

    name: str
    config: LaunchConfig
    stats: KernelStats = field(default_factory=KernelStats)


class KernelContext:
    """Collects the kernels launched while running a benchmark phase.

    Filters call :meth:`launch` around each simulated kernel.  The context
    stores per-kernel stats and exposes aggregate summaries for the perf
    model.  When no context is active, launches still record into the
    filter's stats recorder (so functional tests need no ceremony).
    """

    def __init__(self, recorder: StatsRecorder) -> None:
        self.recorder = recorder
        self.kernels: list[KernelRecord] = []

    @contextlib.contextmanager
    def launch(self, name: str, config: LaunchConfig) -> Iterator[KernelRecord]:
        """Scope the events of one kernel launch."""
        record = KernelRecord(name=name, config=config)
        self.recorder.add(kernel_launches=1)
        record.stats.kernel_launches = 1
        with self.recorder.section(f"kernel:{name}"):
            # Nest a throwaway recorder section by stacking the record stats.
            self.recorder._active.append(record.stats)
            try:
                yield record
            finally:
                self.recorder._active.pop()
        self.kernels.append(record)

    # -- aggregate views -------------------------------------------------------
    @property
    def total_stats(self) -> KernelStats:
        """Sum of the stats of every recorded kernel."""
        out = KernelStats()
        for k in self.kernels:
            out.merge(k.stats)
        return out

    @property
    def max_concurrent_threads(self) -> int:
        """The largest thread count exposed by any recorded kernel."""
        if not self.kernels:
            return 0
        return max(k.config.total_threads for k in self.kernels)

    def kernels_named(self, prefix: str) -> list[KernelRecord]:
        """All kernels whose name starts with ``prefix``."""
        return [k for k in self.kernels if k.name.startswith(prefix)]

    def reset(self) -> None:
        self.kernels = []


def point_launch(n_items: int, cg_size: int) -> LaunchConfig:
    """Launch geometry for a point-API kernel: one group per item."""
    return LaunchConfig(n_work_items=n_items, threads_per_item=cg_size)


def bulk_region_launch(n_regions: int) -> LaunchConfig:
    """Launch geometry for a bulk kernel mapping one thread per region."""
    return LaunchConfig(n_work_items=n_regions, threads_per_item=1)


def bulk_block_launch(n_blocks: int, cg_size: int) -> LaunchConfig:
    """Launch geometry for a bulk kernel mapping one group per table block."""
    return LaunchConfig(n_work_items=n_blocks, threads_per_item=cg_size)


def bulk_tile_launch(n_tiles: int, cg_size: int) -> LaunchConfig:
    """Launch geometry for a batched-merge kernel: one group per staged tile.

    The vectorised bulk-TCF passes only stage the blocks that actually
    receive (or lose) items, so the exposed parallelism is the number of
    *touched* blocks, not the whole table.  A zero-tile launch (every item
    already resolved) degenerates to a single bookkeeping work item.
    """
    return LaunchConfig(n_work_items=max(1, n_tiles), threads_per_item=cg_size)
