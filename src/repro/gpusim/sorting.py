"""Thrust-like device primitives used by the bulk insertion paths.

The paper's bulk APIs lean on the Thrust library for sorting, reduction and
searching (Sections 4.2 and 5.3-5.4):

* the bulk TCF sorts the input batch so that all keys destined for one block
  arrive together and can be written with one coalesced store;
* the bulk GQF sorts hashes so Robin-Hood shifting within a batch disappears,
  uses successor search (``lower_bound``) to find region-buffer boundaries,
  and uses ``reduce_by_key`` for the map-reduce skew optimisation.

These wrappers provide the same API surface on NumPy arrays and account for
the memory traffic a radix sort / reduction would generate on the GPU so that
the aggregation cost shows up in the modelled bulk throughput.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .stats import GLOBAL_RECORDER, StatsRecorder

#: Number of passes a 64-bit LSD radix sort makes over the data (8 bits per
#: pass).  Each pass reads and writes the full key array once.
RADIX_SORT_PASSES = 8


def _account_sort(
    recorder: StatsRecorder, n: int, itemsize: int, passes: int = RADIX_SORT_PASSES
) -> None:
    """Record the coalesced traffic of a radix sort over ``n`` items."""
    nbytes = n * itemsize
    recorder.add(
        coalesced_bytes_read=nbytes * passes,
        coalesced_bytes_written=nbytes * passes,
        items_sorted=n,
        kernel_launches=passes,
    )


def device_sort(
    keys: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> np.ndarray:
    """Sort ``keys`` ascending (thrust::sort), returning a new array."""
    recorder = recorder if recorder is not None else GLOBAL_RECORDER
    keys = np.asarray(keys)
    _account_sort(recorder, keys.size, keys.itemsize)
    return np.sort(keys, kind="stable")


def device_sort_by_key(
    keys: np.ndarray,
    values: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort ``(keys, values)`` pairs by key (thrust::sort_by_key)."""
    recorder = recorder if recorder is not None else GLOBAL_RECORDER
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.shape != values.shape:
        raise ValueError("keys and values must have the same shape")
    _account_sort(recorder, keys.size, keys.itemsize + values.itemsize)
    order = np.argsort(keys, kind="stable")
    return keys[order], values[order]


def device_reduce_by_key(
    keys: np.ndarray,
    values: Optional[np.ndarray] = None,
    recorder: Optional[StatsRecorder] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce consecutive equal keys, summing their values.

    ``keys`` must already be sorted (as after :func:`device_sort`); values
    default to 1, so the common use is turning a sorted key batch into
    ``(unique_key, count)`` pairs — the paper's map-reduce optimisation for
    Zipfian-count datasets.
    """
    recorder = recorder if recorder is not None else GLOBAL_RECORDER
    keys = np.asarray(keys)
    if values is None:
        values = np.ones(keys.shape, dtype=np.int64)
    values = np.asarray(values)
    if keys.shape != values.shape:
        raise ValueError("keys and values must have the same shape")
    nbytes = keys.nbytes + values.nbytes
    recorder.add(
        coalesced_bytes_read=nbytes,
        coalesced_bytes_written=nbytes,
        items_reduced=int(keys.size),
        kernel_launches=1,
    )
    if keys.size == 0:
        return keys.copy(), values.copy()
    boundaries = run_first_mask(keys)
    group_ids = np.cumsum(boundaries) - 1
    unique_keys = keys[boundaries]
    sums = np.zeros(unique_keys.size, dtype=values.dtype)
    np.add.at(sums, group_ids, values)
    return unique_keys, sums


def device_lower_bound(
    sorted_keys: np.ndarray,
    probes: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> np.ndarray:
    """Vectorised successor search (thrust::lower_bound).

    For each probe value, returns the index of the first element in
    ``sorted_keys`` that is >= the probe.  The bulk GQF uses this to mark the
    start of each region's buffer inside the sorted input array, avoiding the
    atomics-based buffer sizing described in Section 5.3.
    """
    recorder = recorder if recorder is not None else GLOBAL_RECORDER
    sorted_keys = np.asarray(sorted_keys)
    probes = np.asarray(probes)
    # One binary search per probe: log2(n) random reads each, but reads are
    # mostly cached; account one line per probe as an approximation.
    recorder.add(
        cache_line_reads=int(probes.size),
        instructions=int(probes.size * max(1, int(np.log2(max(2, sorted_keys.size))))),
        kernel_launches=1,
    )
    return np.searchsorted(sorted_keys, probes, side="left")


def run_first_mask(grouped_keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run of equal values.

    ``grouped_keys`` must have equal values adjacent (e.g. after a stable
    sort).  Shared boundary primitive for the segment-grouped bulk paths;
    pure index math (kept in registers on the device), so no traffic is
    recorded.
    """
    grouped_keys = np.asarray(grouped_keys)
    first = np.ones(grouped_keys.size, dtype=bool)
    if grouped_keys.size:
        first[1:] = grouped_keys[1:] != grouped_keys[:-1]
    return first


def group_ranks(grouped_keys: np.ndarray) -> np.ndarray:
    """Rank of every element within its run of equal adjacent values.

    ``grouped_keys`` must have equal values adjacent (e.g. after a stable
    sort); the result is ``0, 1, 2, ...`` restarting at each new value.  The
    bulk paths use this to let duplicate requests claim *distinct* slots —
    positional attribution instead of value matching.
    """
    grouped_keys = np.asarray(grouped_keys)
    if grouped_keys.size == 0:
        return np.zeros(0, dtype=np.int64)
    first = run_first_mask(grouped_keys)
    first_idx = np.flatnonzero(first)
    return np.arange(grouped_keys.size) - first_idx[np.cumsum(first) - 1]


def device_exclusive_scan(
    values: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> np.ndarray:
    """Exclusive prefix sum (thrust::exclusive_scan)."""
    recorder = recorder if recorder is not None else GLOBAL_RECORDER
    values = np.asarray(values)
    recorder.add(
        coalesced_bytes_read=int(values.nbytes),
        coalesced_bytes_written=int(values.nbytes),
        kernel_launches=1,
    )
    out = np.zeros_like(values)
    if values.size > 1:
        np.cumsum(values[:-1], out=out[1:])
    return out


def device_unique_counts(
    keys: np.ndarray,
    recorder: Optional[StatsRecorder] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort then reduce: convenience wrapper returning (unique, counts)."""
    recorder = recorder if recorder is not None else GLOBAL_RECORDER
    sorted_keys = device_sort(keys, recorder)
    return device_reduce_by_key(sorted_keys, None, recorder)
