"""GPU execution-model simulator.

This package is the substrate substituting for real CUDA hardware in the
reproduction of *High-Performance Filters for GPUs* (PPoPP 2023).  It
provides:

* :mod:`~repro.gpusim.device` — V100 / A100 / KNL device specifications;
* :mod:`~repro.gpusim.memory` — device arrays with cache-line accounting and
  an allocator for memory-footprint experiments;
* :mod:`~repro.gpusim.atomics` — CUDA-style atomics and spin-lock tables;
* :mod:`~repro.gpusim.warp` — warps and cooperative groups (ballot, ffs,
  strided iteration);
* :mod:`~repro.gpusim.sharedmem` — shared-memory staging tiles;
* :mod:`~repro.gpusim.kernel` — kernel-launch geometry records;
* :mod:`~repro.gpusim.sorting` — Thrust-like sort/reduce/search primitives;
* :mod:`~repro.gpusim.stats` — hardware-event counters;
* :mod:`~repro.gpusim.perfmodel` — the roofline-style time estimator.
"""

from .device import A100, KNL, V100, GPUSpec, get_device
from .kernel import (
    KernelContext,
    LaunchConfig,
    bulk_block_launch,
    bulk_region_launch,
    point_launch,
)
from .memory import DeviceAllocator, DeviceArray
from .perfmodel import PerfEstimate, combine_estimates, estimate_time, scale_stats
from .sharedmem import SharedMemoryTile
from .sorting import (
    device_exclusive_scan,
    device_lower_bound,
    device_reduce_by_key,
    device_sort,
    device_sort_by_key,
    device_unique_counts,
)
from .stats import GLOBAL_RECORDER, KernelStats, StatsRecorder
from .warp import WARP_SIZE, CooperativeGroup, WarpConfig, ffs, partition_warp, popc
from .atomics import (
    SpinLockTable,
    atomic_add,
    atomic_and,
    atomic_cas,
    atomic_exch,
    atomic_max,
    atomic_min,
    atomic_or,
)

__all__ = [
    "A100",
    "KNL",
    "V100",
    "GPUSpec",
    "get_device",
    "KernelContext",
    "LaunchConfig",
    "bulk_block_launch",
    "bulk_region_launch",
    "point_launch",
    "DeviceAllocator",
    "DeviceArray",
    "PerfEstimate",
    "combine_estimates",
    "estimate_time",
    "scale_stats",
    "SharedMemoryTile",
    "device_exclusive_scan",
    "device_lower_bound",
    "device_reduce_by_key",
    "device_sort",
    "device_sort_by_key",
    "device_unique_counts",
    "GLOBAL_RECORDER",
    "KernelStats",
    "StatsRecorder",
    "WARP_SIZE",
    "CooperativeGroup",
    "WarpConfig",
    "ffs",
    "partition_warp",
    "popc",
    "SpinLockTable",
    "atomic_add",
    "atomic_and",
    "atomic_cas",
    "atomic_exch",
    "atomic_max",
    "atomic_min",
    "atomic_or",
]
