"""GPU device specifications used by the execution-model simulator.

The paper evaluates on two NERSC systems:

* **Cori GPU nodes** — NVIDIA Tesla V100, 5120 CUDA cores @ 1445 MHz, 16 GB
  HBM2, an active-thread limit of ~82,000 threads, 6 MB of L2 cache and
  ~900 GB/s of HBM bandwidth.
* **Perlmutter GPU nodes** — NVIDIA A100, 6912 CUDA cores @ 1410 MHz, 40 GB
  HBM2, an active-thread limit of ~110,000 threads, 40 MB of L2 cache and
  ~1555 GB/s of HBM bandwidth.

Because no GPU hardware is available in this reproduction, those devices are
represented as :class:`GPUSpec` records consumed by
:mod:`repro.gpusim.perfmodel` to convert counted hardware events (cache-line
transactions, atomics, lock thrash, …) into estimated kernel times.  The
parameters below are public data-sheet numbers; nothing is fitted to the
paper's measured curves.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Architectural parameters of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable device name (e.g. ``"V100"``).
    system:
        The machine the paper associates with the device (``"cori"`` or
        ``"perlmutter"``).
    sm_count:
        Number of streaming multiprocessors.
    cuda_cores:
        Total CUDA cores (used for compute-throughput estimates).
    clock_mhz:
        Boost clock in MHz.
    mem_bandwidth_gbps:
        Peak HBM bandwidth in GB/s.
    mem_bytes:
        Device memory capacity in bytes.
    l2_bytes:
        L2 cache capacity in bytes.  Structures that fit entirely in L2 get a
        bandwidth boost — this is what produces the BF/BBF outliers at
        :math:`2^{22}` (V100) and :math:`2^{24}` (A100) in Figure 3.
    l2_bandwidth_multiplier:
        Ratio of L2 bandwidth to HBM bandwidth.
    cache_line_bytes:
        Size of a memory transaction (128 bytes on both devices).
    max_active_threads:
        Active-thread limit quoted by the paper (82k / 110k).
    saturation_threads:
        Number of concurrently resident threads needed to hide memory
        latency and reach peak bandwidth (roughly 128-192 per SM).  Kernels
        that expose fewer threads — e.g. bulk kernels mapping one thread per
        region — run at a fraction of peak, which is what makes bulk-insert
        throughput grow with filter size in Figure 4.
    warp_size:
        Threads per warp.
    atomic_throughput_gops:
        Sustained global-memory atomic throughput (to L2) in billions of
        operations per second, assuming mostly-distinct addresses.
    compute_throughput_gips:
        Sustained simple-integer-instruction throughput in billions of
        instructions per second (cores * clock, de-rated).
    kernel_launch_overhead_us:
        Fixed host-side cost per kernel launch in microseconds.
    uncoalesced_efficiency:
        Fraction of peak bandwidth achieved by fully random single-line
        transactions.
    """

    name: str
    system: str
    sm_count: int
    cuda_cores: int
    clock_mhz: float
    mem_bandwidth_gbps: float
    mem_bytes: int
    l2_bytes: int
    l2_bandwidth_multiplier: float
    cache_line_bytes: int
    max_active_threads: int
    saturation_threads: int
    warp_size: int
    atomic_throughput_gops: float
    compute_throughput_gips: float
    kernel_launch_overhead_us: float
    uncoalesced_efficiency: float

    @property
    def mem_bandwidth_bytes_per_s(self) -> float:
        """Peak HBM bandwidth in bytes/second."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def l2_bandwidth_bytes_per_s(self) -> float:
        """Peak L2 bandwidth in bytes/second."""
        return self.mem_bandwidth_bytes_per_s * self.l2_bandwidth_multiplier

    @property
    def atomic_ops_per_s(self) -> float:
        """Sustained global atomic operations per second."""
        return self.atomic_throughput_gops * 1e9

    @property
    def instructions_per_s(self) -> float:
        """Sustained simple instruction throughput per second."""
        return self.compute_throughput_gips * 1e9

    def fits_in_l2(self, nbytes: int) -> bool:
        """Return True if a structure of ``nbytes`` fits in the L2 cache."""
        return nbytes <= self.l2_bytes

    def saturation_fraction(self, active_threads: int) -> float:
        """Fraction of peak throughput reachable with ``active_threads``.

        GPUs need enough in-flight threads to hide memory latency.  Bulk
        filters that map one thread per *region* expose far fewer threads
        than point filters that map one cooperative group per *item*; this is
        why Figure 4 shows bulk-insert throughput growing with the filter
        size.  The ramp is sub-linear (square root) because each resident
        thread can keep several memory requests in flight when it streams
        over a contiguous region.
        """
        if active_threads <= 0:
            return 0.0
        return float(min(1.0, (active_threads / float(self.saturation_threads)) ** 0.5))


#: NVIDIA Tesla V100 (NERSC Cori GPU nodes).
V100 = GPUSpec(
    name="V100",
    system="cori",
    sm_count=80,
    cuda_cores=5120,
    clock_mhz=1445.0,
    mem_bandwidth_gbps=900.0,
    mem_bytes=16 * 1024**3,
    l2_bytes=6 * 1024**2,
    l2_bandwidth_multiplier=3.0,
    cache_line_bytes=128,
    max_active_threads=82_000,
    saturation_threads=80 * 192,
    warp_size=32,
    atomic_throughput_gops=20.0,
    compute_throughput_gips=7000.0,
    kernel_launch_overhead_us=5.0,
    uncoalesced_efficiency=0.7,
)

#: NVIDIA A100 (NERSC Perlmutter GPU nodes).
A100 = GPUSpec(
    name="A100",
    system="perlmutter",
    sm_count=108,
    cuda_cores=6912,
    clock_mhz=1410.0,
    mem_bandwidth_gbps=1555.0,
    mem_bytes=40 * 1024**3,
    l2_bytes=40 * 1024**2,
    l2_bandwidth_multiplier=3.5,
    cache_line_bytes=128,
    max_active_threads=110_000,
    saturation_threads=108 * 192,
    warp_size=32,
    atomic_throughput_gops=32.0,
    compute_throughput_gips=9700.0,
    kernel_launch_overhead_us=4.0,
    uncoalesced_efficiency=0.7,
)

#: Intel Xeon Phi "Knights Landing" node (Cori KNL) used for the CPU
#: baselines in Table 4.  Modelled with the same interface so the CPU cost
#: model in :mod:`repro.baselines` can reuse the perf-model machinery.
KNL = GPUSpec(
    name="KNL",
    system="cori-knl",
    sm_count=68,
    cuda_cores=272,  # hardware threads
    clock_mhz=1400.0,
    mem_bandwidth_gbps=102.0,  # DDR4; MCDRAM would be ~400 GB/s
    mem_bytes=96 * 1024**3,
    l2_bytes=34 * 1024**2,
    l2_bandwidth_multiplier=2.0,
    cache_line_bytes=64,
    max_active_threads=272,
    saturation_threads=272,
    warp_size=1,
    atomic_throughput_gops=0.4,
    compute_throughput_gips=380.0,
    kernel_launch_overhead_us=0.0,
    uncoalesced_efficiency=0.5,
)

#: Registry of known devices by lower-case name.
KNOWN_DEVICES = {
    "v100": V100,
    "a100": A100,
    "knl": KNL,
    "cori": V100,
    "perlmutter": A100,
}


def get_device(name: str) -> GPUSpec:
    """Look up a device spec by name (case-insensitive).

    Accepts either the GPU model (``"V100"``, ``"A100"``) or the system name
    used in the paper's figures (``"cori"``, ``"perlmutter"``).

    Raises
    ------
    KeyError
        If the device is unknown.
    """
    key = name.strip().lower()
    if key not in KNOWN_DEVICES:
        raise KeyError(
            f"unknown device {name!r}; known devices: {sorted(KNOWN_DEVICES)}"
        )
    return KNOWN_DEVICES[key]
