"""Mixed-traffic driver for the filter service: the chaos harness.

Simulates many clients hammering a multi-tenant :class:`FilterService` with
bursty insert/query/count traffic — optionally under seeded fault injection
— then audits the *effect invariants* the service guarantees:

* **all terminal** — every accepted job reached a terminal state;
* **no lost acks** — every key a client was told was inserted is still a
  member of its filter;
* **no duplicate effects** — retries never re-applied an insert: the TCF
  tenants hold exactly as many fingerprints as keys were acked, and the GQF
  tenant's slot array is bit-identical to a reference filter rebuilt from
  the acked keys alone (the canonical layout is order-independent, so any
  divergence means a duplicated or phantom insert);
* **idempotent resubmission** — resubmitting a finished request ID returns
  the original result, both in-process and across a crash/recovery.

The optional recovery episode completes the story: shut the service down,
snapshot every tenant, deliberately tear one snapshot file, then bring a
new service up via :meth:`FilterService.recover` with the
``"recreate"`` restore policy and refill the recreated tenant from the
journal's acked effects — after which no acked key may be missing.

The :mod:`repro.pipeline` ``service`` stage wraps this driver at preset
scale; the chaos tests call it directly.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.base import AbstractFilter
from ..core.gqf import PointGQF
from ..core.tcf import BulkTCF, PointTCF
from ..gpusim.stats import StatsRecorder
from .faults import FaultConfig, FaultInjector
from .journal import acked_effects
from .jobs import JobStatus
from .registry import FilterRegistry
from .service import FilterService, ServiceConfig


@dataclass(frozen=True)
class TrafficConfig:
    """Scale and shape of one simulated traffic run."""

    seed: int = 0x5EF7
    n_clients: int = 8
    jobs_per_client: int = 12
    keys_per_job: int = 64
    #: Operation mix (the remainder after insert+query is count traffic).
    insert_fraction: float = 0.6
    query_fraction: float = 0.25
    #: Fraction of jobs carrying an already-expired deadline (they must be
    #: EXPIRED with zero effects) and of jobs cancelled right after submit.
    expired_deadline_fraction: float = 0.05
    cancel_fraction: float = 0.05
    #: Slots of the deliberately small fixed-capacity tenant (fills up and
    #: exercises PARTIAL outcomes; 0 disables the tenant).
    fixed_tenant_slots: int = 256


def _tenant_factories(config: TrafficConfig) -> Dict[str, Callable[[], AbstractFilter]]:
    """The multi-tenant fleet, one tenant per bulk-insert code path."""
    total_keys = config.n_clients * config.jobs_per_client * config.keys_per_job
    n_slots = max(1024, 2 * total_keys)
    lg = int(np.ceil(np.log2(n_slots)))
    tenants: Dict[str, Callable[[], AbstractFilter]] = {
        # Vectorised graceful-mask path with growth.
        "tcf": lambda: PointTCF(
            n_slots, recorder=StatsRecorder(), auto_resize=True
        ),
        # Whole-batch two-pass bulk path behind the new bulk_insert_mask.
        "bulktcf": lambda: BulkTCF(
            n_slots, recorder=StatsRecorder(), auto_resize=True
        ),
        # Counting filter through the default point-loop mask; 16-bit
        # remainders keep false-positive noise out of the effect audit.
        "gqf": lambda: PointGQF(
            lg, 16, recorder=StatsRecorder(), auto_resize=True
        ),
    }
    if config.fixed_tenant_slots:
        slots = config.fixed_tenant_slots
        tenants["fixed"] = lambda: PointTCF(slots, recorder=StatsRecorder())
    return tenants


@dataclass
class _TenantLedger:
    """What the driver submitted and what the service acked, per tenant."""

    submitted_insert_keys: int = 0
    insert_request_ids: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.insert_request_ids is None:
            self.insert_request_ids = []


def run_traffic(
    workdir,
    traffic: Optional[TrafficConfig] = None,
    faults: Optional[FaultConfig] = None,
    service_config: Optional[ServiceConfig] = None,
    with_recovery: bool = False,
) -> Dict[str, object]:
    """Run one traffic scenario end to end; returns the metrics/audit dict."""
    traffic = traffic or TrafficConfig()
    faults = faults or FaultConfig()
    workdir = pathlib.Path(workdir)
    injector = FaultInjector(faults)
    registry = FilterRegistry(
        workdir / "snapshots",
        fault_injector=injector,
    )
    config = service_config or ServiceConfig(
        max_workers=4,
        max_pending_jobs=4096,
        max_batch_jobs=8,
        max_attempts=5,
    )
    journal_dir = workdir / "journal"
    service = FilterService(
        registry, config, journal_dir=journal_dir, fault_injector=injector
    )
    factories = _tenant_factories(traffic)
    for name, factory in factories.items():
        service.register_filter(name, factory)
    # Squeeze the memory budget so LRU eviction/restore runs *during* the
    # traffic, not only in the recovery episode.
    resident = registry.resident_bytes()
    registry.memory_budget_bytes = max(4096, int(resident * 0.75))

    rng = np.random.default_rng(traffic.seed)
    tenant_names = list(factories)
    ledgers = {name: _TenantLedger() for name in tenant_names}
    next_key = {name: 2 for name in tenant_names}  # 0/1 are reserved words
    all_request_ids: List[str] = []
    cancelled_requests: List[str] = []

    start = time.perf_counter()
    n_jobs = traffic.n_clients * traffic.jobs_per_client
    for i in range(n_jobs):
        client = i % traffic.n_clients
        tenant = tenant_names[int(rng.integers(len(tenant_names)))]
        draw = rng.random()
        if draw < traffic.insert_fraction:
            op = "insert"
            lo = next_key[tenant]
            next_key[tenant] = lo + traffic.keys_per_job
            keys = np.arange(lo, lo + traffic.keys_per_job, dtype=np.uint64)
        elif draw < traffic.insert_fraction + traffic.query_fraction:
            op = "query"
            keys = rng.integers(
                2, max(3, next_key[tenant]), size=traffic.keys_per_job, dtype=np.uint64
            )
        else:
            # Count traffic only makes sense on the counting tenant.
            op = "count" if tenant == "gqf" else "query"
            keys = rng.integers(
                2, max(3, next_key[tenant]), size=traffic.keys_per_job, dtype=np.uint64
            )
        deadline_s = None
        if op != "insert" and rng.random() < traffic.expired_deadline_fraction:
            deadline_s = 0.0  # already expired: must be dropped effect-free
        request_id = service.submit(
            tenant,
            op,
            keys,
            request_id=f"c{client}-{op}-{i:05d}",
            deadline_s=deadline_s,
        )
        all_request_ids.append(request_id)
        if op == "insert":
            ledgers[tenant].submitted_insert_keys += keys.size
            ledgers[tenant].insert_request_ids.append(request_id)
        elif rng.random() < traffic.cancel_fraction:
            if service.cancel(request_id):
                cancelled_requests.append(request_id)
    drained = service.drain(timeout=120.0)
    elapsed = time.perf_counter() - start

    # ---------------------------------------------------------------- audit
    status_counts: Dict[str, int] = {}
    latencies: List[float] = []
    attempts_max = 0
    non_terminal = 0
    for request_id in all_request_ids:
        job = service._get(request_id)
        if not job.status.terminal:
            non_terminal += 1
            continue
        status_counts[job.status.value] = status_counts.get(job.status.value, 0) + 1
        attempts_max = max(attempts_max, job.attempts)
        if job.latency_s is not None:
            latencies.append(job.latency_s)

    acked_keys: Dict[str, np.ndarray] = {}
    n_acked_total = 0
    for tenant, ledger in ledgers.items():
        chunks = []
        for request_id in ledger.insert_request_ids:
            job = service._get(request_id)
            result = job.result
            if result is None or result.status not in (
                JobStatus.SUCCEEDED,
                JobStatus.PARTIAL,
            ):
                continue
            mask = (
                np.asarray(result.ok_mask, dtype=bool)
                if result.ok_mask is not None
                else np.ones(job.n_items, dtype=bool)
            )
            chunks.append(job.keys[mask])
        acked_keys[tenant] = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint64)
        )
        n_acked_total += int(acked_keys[tenant].size)

    lost_acks = 0
    duplicate_effects = 0
    for tenant in tenant_names:
        acked = acked_keys[tenant]
        with registry.acquire(tenant) as entry:
            filt = entry.filt
            if acked.size:
                lost_acks += int(np.count_nonzero(~filt.bulk_query(acked)))
            if tenant == "gqf":
                duplicate_effects += _gqf_effect_mismatch(filt, acked)
            else:
                # TCF fingerprints count multiplicity: any retry that
                # re-applied an insert shows up as n_items > acked.
                duplicate_effects += abs(int(filt.n_items) - int(acked.size))

    # Idempotent resubmission: re-submitting finished request IDs must hand
    # back the original results without re-executing anything.
    resample = all_request_ids[:: max(1, len(all_request_ids) // 16)]
    idempotent = True
    for request_id in resample:
        before = service._get(request_id).result
        again = service.submit("tcf", "insert", [2, 3], request_id=request_id)
        idempotent &= again == request_id and service._get(request_id).result is before

    submitted_insert_keys = sum(
        ledger.submitted_insert_keys for ledger in ledgers.values()
    )
    per_tenant = {
        tenant: {
            "submitted": int(ledger.submitted_insert_keys),
            "acked": int(acked_keys[tenant].size),
        }
        for tenant, ledger in ledgers.items()
    }
    # The fixed-capacity tenant is *designed* to fill up (it exercises the
    # PARTIAL path), so the headline goodput gate tracks growable tenants.
    growable_submitted = sum(
        stats["submitted"] for name, stats in per_tenant.items() if name != "fixed"
    )
    growable_acked = sum(
        stats["acked"] for name, stats in per_tenant.items() if name != "fixed"
    )
    data: Dict[str, object] = {
        "n_jobs": n_jobs,
        "elapsed_s": round(elapsed, 4),
        "jobs_per_s": round(n_jobs / max(elapsed, 1e-9), 1),
        "keys_per_s": round(
            n_jobs * traffic.keys_per_job / max(elapsed, 1e-9), 1
        ),
        "drained": bool(drained),
        "non_terminal": non_terminal,
        "status_counts": status_counts,
        "latency_p50_s": round(float(np.percentile(latencies, 50)), 5)
        if latencies
        else 0.0,
        "latency_p99_s": round(float(np.percentile(latencies, 99)), 5)
        if latencies
        else 0.0,
        "attempts_max": attempts_max,
        "submitted_insert_keys": int(submitted_insert_keys),
        "acked_insert_keys": int(n_acked_total),
        "goodput": round(n_acked_total / max(1, submitted_insert_keys), 4),
        "goodput_growable": round(growable_acked / max(1, growable_submitted), 4),
        "per_tenant": per_tenant,
        "lost_acks": int(lost_acks),
        "duplicate_effects": int(duplicate_effects),
        "idempotent_resubmits": bool(idempotent),
        "cancelled_submitted": len(cancelled_requests),
        "faults_fired": dict(injector.fired),
        "registry": dict(registry.stats),
    }

    if with_recovery:
        data["recovery"] = _recovery_episode(
            service, registry, factories, journal_dir, workdir, acked_keys, resample
        )
    else:
        service.shutdown(wait=True)
    return data


def _gqf_effect_mismatch(filt: PointGQF, acked: np.ndarray) -> int:
    """Bit-compare the live GQF against a rebuild from the acked keys.

    The canonical layout is a pure function of the stored multiset, so a
    reference filter at the live geometry fed exactly the acked keys must
    produce an identical slot array; any differing slot word witnesses a
    duplicated (or phantom) effect.
    """
    reference = PointGQF(
        filt.scheme.quotient_bits,
        filt.scheme.remainder_bits,
        recorder=StatsRecorder(),
        enforce_alignment=False,
    )
    if acked.size:
        reference.bulk_insert(acked)
    live = np.asarray(filt.core.slots.peek())
    ref = np.asarray(reference.core.slots.peek())
    if live.shape != ref.shape:
        return max(live.size, ref.size)
    return int(np.count_nonzero(live != ref))


def _recovery_episode(
    service: FilterService,
    registry: FilterRegistry,
    factories: Dict[str, Callable[[], AbstractFilter]],
    journal_dir: pathlib.Path,
    workdir: pathlib.Path,
    acked_keys: Dict[str, np.ndarray],
    resample: List[str],
) -> Dict[str, object]:
    """Crash, tear a snapshot, recover from the journal, audit the result."""
    service.shutdown(wait=True)
    registry.flush()

    # Tear one tenant's snapshot through the injection site, simulating disk
    # corruption between the crash and the restart.
    torn_tenant = "tcf"
    tearer = FaultInjector(FaultConfig(seed=0, torn_snapshot_rate=1.0))
    torn = tearer.on_snapshot_saved(
        torn_tenant, workdir / "snapshots" / f"{torn_tenant}.rpro"
    )

    recovered_registry = FilterRegistry(
        workdir / "snapshots",
        torn_restore_policy="recreate",
    )
    for name, factory in factories.items():
        recovered_registry.register_snapshot(name, factory)
    recovered = FilterService.recover(recovered_registry, journal_dir)
    recovered.drain(timeout=60.0)

    # Touch every tenant so restores (and the torn one's recreate) happen.
    for name in factories:
        with recovered_registry.acquire(name):
            pass
    recreated = recovered_registry.recreated_names()
    # Refill recreated tenants from the journal's acked effects — exactly
    # the keys clients were told are stored, nothing more.
    effects = acked_effects(journal_dir)
    for name in recreated:
        keys, values = effects.get(name, (np.zeros(0, dtype=np.uint64), None))
        if keys.size:
            with recovered_registry.acquire(name) as entry:
                with entry.op_lock:
                    entry.filt.bulk_insert_mask(keys, values)

    lost_after_recovery = 0
    for name in factories:
        acked = acked_keys.get(name)
        if acked is None or not acked.size:
            continue
        with recovered_registry.acquire(name) as entry:
            lost_after_recovery += int(
                np.count_nonzero(~entry.filt.bulk_query(acked))
            )

    # Idempotency must survive the restart: resubmitting a pre-crash request
    # ID returns the journaled result instead of re-executing the job.
    idempotent = True
    for request_id in resample:
        original = service._get(request_id).result
        if original is None:
            continue
        again = recovered.submit("tcf", "insert", [2, 3], request_id=request_id)
        replayed = recovered._get(request_id).result
        idempotent &= (
            again == request_id
            and replayed is not None
            and replayed.status == original.status
            and replayed.n_ok == original.n_ok
        )
    recovered.shutdown(wait=True)
    return {
        "torn_tenant": torn_tenant if torn else "",
        "recreated": recreated,
        "restores": recovered_registry.stats["restores"],
        "torn_restores": recovered_registry.stats["torn_restores"],
        "lost_after_recovery": int(lost_after_recovery),
        "idempotent_across_restart": bool(idempotent),
    }
