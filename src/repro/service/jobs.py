"""Job model of the bulk filter service: requests, results, statuses, errors.

A **job** is one client-submitted bulk operation (insert / query / delete /
count of up to millions of keys) against one named filter.  Jobs move
through a small, strictly forward state machine::

    QUEUED -> RUNNING -> SUCCEEDED | PARTIAL | FAILED
    QUEUED -> CANCELLED            (client cancel before execution)
    QUEUED -> EXPIRED              (deadline passed before execution)

``SUCCEEDED``/``PARTIAL``/``FAILED``/``CANCELLED``/``EXPIRED`` are terminal:
once reached, a job's result never changes, and resubmitting its request ID
returns the original result (idempotency).  ``PARTIAL`` is the bulk-API
partial-success outcome — some keys were applied, some were not, and the
per-item report says which.

Error taxonomy (mirrored in the README failure-semantics table):

* **retryable** — transient conditions the service retries internally with
  exponential backoff and jitter: injected worker crashes
  (:class:`~repro.service.faults.WorkerCrashFault`) and
  :class:`~repro.core.exceptions.FilterFullError` on a resizable filter
  (handled by growing the filter via :func:`repro.lifecycle.expand` and
  retrying the unplaced keys).
* **terminal** — conditions retrying cannot fix: unknown filters, unsupported
  operations, deletion of absent items, torn snapshots at restore time, and
  capacity errors on non-resizable filters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import (
    CapacityLimitError,
    DeletionError,
    FilterFullError,
    SnapshotError,
    UnsupportedOperationError,
)

#: Operations a job may request; each maps onto the filters' bulk API.
OPERATIONS = ("insert", "query", "delete", "count")


class JobStatus(str, enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    PARTIAL = "partial"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {
        JobStatus.SUCCEEDED,
        JobStatus.PARTIAL,
        JobStatus.FAILED,
        JobStatus.CANCELLED,
        JobStatus.EXPIRED,
    }
)


# --------------------------------------------------------------------------
# service errors
# --------------------------------------------------------------------------
class ServiceError(Exception):
    """Base class for every error the service raises at its API surface."""


class AdmissionError(ServiceError):
    """Submission rejected by admission control (queue-depth backpressure).

    Carries ``retry_after_s``, the server's suggestion for when to resubmit
    — reject-with-retry-after instead of letting the queue grow without
    bound.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class UnknownFilterError(ServiceError):
    """The job names a filter the registry does not know."""


class JobNotFoundError(ServiceError):
    """``status``/``result``/``cancel`` named an unknown request ID."""


class ServiceClosedError(ServiceError):
    """The service is shut down and accepts no further submissions."""


#: Exceptions the worker retries (with backoff) rather than failing the job.
#: Injected fault types are appended by :mod:`repro.service.faults` at import
#: time so the job layer does not depend on the fault layer.
RETRYABLE_ERRORS: List[type] = []

#: Exceptions that immediately fail the job: retrying cannot change the
#: outcome.  ``FilterFullError`` is special-cased by the capacity policy
#: (grow-then-retry on resizable filters) before this classification applies.
TERMINAL_ERRORS = (
    UnsupportedOperationError,
    DeletionError,
    SnapshotError,
    CapacityLimitError,
    UnknownFilterError,
    ValueError,
    TypeError,
)


def is_retryable(exc: BaseException) -> bool:
    """Classify an execution failure: retry with backoff, or fail the job."""
    if isinstance(exc, FilterFullError):
        # Capacity is retryable only through the grow-then-retry policy,
        # which the worker applies before consulting this classification.
        return False
    return isinstance(exc, tuple(RETRYABLE_ERRORS))


# --------------------------------------------------------------------------
# job records
# --------------------------------------------------------------------------
@dataclass
class JobResult:
    """Terminal outcome of a job, kept for idempotent resubmission.

    ``ok_mask`` is the per-item partial-success report for inserts (True =
    the key was applied); ``data`` carries the per-key payload of read
    operations (query booleans / count values) as plain lists so results
    stay JSON-serialisable for the journal.
    """

    status: JobStatus
    n_items: int
    n_ok: int
    attempts: int
    error: Optional[str] = None
    ok_mask: Optional[List[bool]] = None
    data: Optional[List[int]] = None
    deadline_exceeded: bool = False

    @property
    def n_failed(self) -> int:
        return self.n_items - self.n_ok

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status.value,
            "n_items": self.n_items,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "attempts": self.attempts,
            "error": self.error,
            "deadline_exceeded": self.deadline_exceeded,
        }


@dataclass
class Job:
    """One accepted bulk job, tracked from submission to its terminal state.

    Mutable fields are guarded by the service's bookkeeping lock; the numpy
    payloads are never mutated after acceptance.
    """

    request_id: str
    filter_name: str
    op: str
    keys: np.ndarray
    values: Optional[np.ndarray]
    submitted_at: float
    deadline_s: Optional[float] = None
    status: JobStatus = JobStatus.QUEUED
    attempts: int = 0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[JobResult] = None
    #: Set by ``cancel``; honoured at dequeue time (a running batch is not
    #: interrupted — its effects must stay well-defined).
    cancel_requested: bool = False
    #: Retry scheduling: the batch this job rides in may not execute before.
    not_before: float = 0.0
    _done: "object" = field(default=None, repr=False)

    @property
    def n_items(self) -> int:
        return int(self.keys.size)

    def deadline_at(self) -> Optional[float]:
        if self.deadline_s is None:
            return None
        return self.submitted_at + self.deadline_s

    def expired(self, now: float) -> bool:
        deadline = self.deadline_at()
        return deadline is not None and now >= deadline

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at
