"""The fault-tolerant bulk-job filter service.

:class:`FilterService` is the async Bulk-API front end over every filter
class: clients ``submit`` jobs of up to millions of keys against named
filters and poll ``status``/``result`` (or block on ``result``/``drain``);
a dispatcher thread coalesces small jobs through the
:class:`~repro.service.batcher.WindowedBatcher` and a bounded worker pool
executes the batches against the registry's filters.

Robustness semantics (the headline; see the README failure-semantics table):

* **Idempotency** — a request ID is accepted once; resubmitting it returns
  the original job (and, once terminal, the original result) without
  re-executing anything.
* **Partial success** — insert jobs report a per-item success mask built on
  ``bulk_insert_mask`` / the atomic whole-batch insert paths, so "filter
  full" degrades to ``PARTIAL`` instead of all-or-nothing failure.
* **Retries** — transient failures (injected worker crashes) are retried
  with exponential backoff and deterministic jitter, bounded by
  ``max_attempts``.  Capacity failures on resizable filters trigger
  :func:`repro.lifecycle.expand` and a retry of only the unplaced keys.
  Injection sites fire *before* any filter mutation and the whole-batch
  insert paths used here are atomic on failure, so a retry can never
  duplicate effects.
* **Deadlines / cancellation** — jobs carry optional deadlines, checked at
  dequeue time: an expired or cancelled job is finalized without touching
  the filter, so its (absent) effects are always well-defined.  A batch
  that *finishes* late still succeeds, flagged ``deadline_exceeded``.
* **Backpressure** — admission control rejects submissions beyond
  ``max_pending_jobs`` with :class:`~repro.service.jobs.AdmissionError`
  carrying ``retry_after_s``, instead of queueing without bound.
* **Crash recovery** — accepted jobs are journaled before queueing and
  their terminal results on completion; :meth:`FilterService.recover`
  replays the journal against the registry's restored snapshots,
  re-executing unacknowledged jobs and preloading finished results so
  idempotency survives the restart.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
import uuid
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter
from ..core.exceptions import FilterFullError, UnsupportedOperationError
from ..lifecycle.resize import expand
from .batcher import Batch, WindowedBatcher
from .faults import NO_FAULTS, FaultInjector
from .jobs import (
    OPERATIONS,
    AdmissionError,
    Job,
    JobNotFoundError,
    JobResult,
    JobStatus,
    ServiceClosedError,
    TERMINAL_ERRORS,
    UnknownFilterError,
    is_retryable,
)
from .journal import JobJournal, replay
from .registry import FilterRegistry

_SHUTDOWN = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`FilterService` instance."""

    max_workers: int = 4
    #: Admission cap: non-terminal jobs beyond this are rejected with
    #: retry-after backpressure instead of growing the queue without bound.
    max_pending_jobs: int = 256
    batch_window_s: float = 0.002
    max_batch_keys: int = 65536
    max_batch_jobs: int = 32
    #: Total execution attempts per batch (1 = no retries).
    max_attempts: int = 4
    backoff_base_s: float = 0.0005
    backoff_cap_s: float = 0.05
    #: Jitter fraction: the deterministic per-token jitter multiplies the
    #: backoff by up to ``1 + backoff_jitter``.
    backoff_jitter: float = 0.5
    #: Capacity policy: growth steps attempted on behalf of one batch.
    max_expands_per_batch: int = 3
    default_deadline_s: Optional[float] = None


class FilterService:
    """Async bulk-job API over a :class:`FilterRegistry`."""

    def __init__(
        self,
        registry: FilterRegistry,
        config: Optional[ServiceConfig] = None,
        journal_dir=None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.faults = fault_injector or NO_FAULTS
        self.journal = JobJournal(journal_dir) if journal_dir is not None else None
        self.clock = time.monotonic

        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._all_done = threading.Condition(self._lock)
        self._n_pending = 0  # non-terminal accepted jobs
        self._request_seq = itertools.count(1)
        # Auto-generated request IDs carry a per-instance nonce: a recovered
        # service preloads the journal's finished jobs, and a bare counter
        # restarting at 1 would collide with the previous incarnation's
        # auto IDs — silently handing new jobs old results.
        self._instance = uuid.uuid4().hex[:8]

        self._intake: "queue.Queue[object]" = queue.Queue()
        self._work: "queue.Queue[object]" = queue.Queue()
        self._retry_heap: List[tuple] = []  # (ready_at, seq, Batch)
        self._retry_seq = itertools.count()
        self._batcher = WindowedBatcher(
            window_s=self.config.batch_window_s,
            max_batch_keys=self.config.max_batch_keys,
            max_batch_jobs=self.config.max_batch_jobs,
        )
        self._closed = False

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="service-dispatcher", daemon=True
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"service-worker-{i}", daemon=True
            )
            for i in range(max(1, self.config.max_workers))
        ]
        self._dispatcher.start()
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "FilterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def register_filter(
        self, name: str, factory: Callable[[], AbstractFilter]
    ) -> None:
        """Create (or adopt) a named filter; single-flight and fail-fast."""
        self.registry.get_or_create(name, factory)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally drain in-flight work first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if wait:
            self.drain()
        self._intake.put(_SHUTDOWN)
        self._dispatcher.join(timeout=10.0)
        for _ in self._workers:
            self._work.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout=10.0)
        if self.journal is not None:
            self.journal.close()
        # Workers are joined: release OS-backed filter resources (sharded
        # filters' shared-memory segments + process pools).  Snapshot-then-
        # close, so the data survives and /dev/shm does not.
        self.registry.close_resident()

    # -------------------------------------------------------------- client API
    def submit(
        self,
        filter_name: str,
        op: str,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        request_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> str:
        """Accept a bulk job; returns its request ID.

        Resubmitting a known request ID is a no-op returning the same ID —
        the original job's (eventual) result stands and the new payload is
        ignored.  Raises :class:`AdmissionError` under backpressure,
        :class:`UnknownFilterError` for unregistered filters, and
        ``ValueError`` for unknown operations.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("the service is shut down")
            if request_id is not None and request_id in self._jobs:
                return request_id  # idempotent resubmission
            if self._n_pending >= self.config.max_pending_jobs:
                raise AdmissionError(
                    f"queue depth {self._n_pending} at the admission cap "
                    f"({self.config.max_pending_jobs}); retry later",
                    retry_after_s=self._retry_after_hint(),
                )
        if op not in OPERATIONS:
            raise ValueError(f"unknown operation {op!r}; one of {OPERATIONS}")
        if filter_name not in self.registry:
            raise UnknownFilterError(f"no filter named {filter_name!r} is registered")
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if values is not None:
            values = np.ascontiguousarray(values, dtype=np.uint64)
            if values.size != keys.size:
                raise ValueError(
                    f"{values.size} values for {keys.size} keys"
                )
        job = Job(
            request_id=request_id
            or f"job-{self._instance}-{next(self._request_seq):08d}",
            filter_name=filter_name,
            op=op,
            keys=keys,
            values=values,
            submitted_at=self.clock(),
            deadline_s=(
                deadline_s if deadline_s is not None else self.config.default_deadline_s
            ),
        )
        # Pre-publication write: the job is not yet in _jobs nor on the
        # intake queue, so no other thread can observe the reassignment
        # (a _done swap after publication would lose waiters forever).
        job._done = threading.Event()
        with self._lock:
            if job.request_id in self._jobs:  # raced duplicate
                return job.request_id
            self._jobs[job.request_id] = job
            self._n_pending += 1
        if self.journal is not None:
            self.journal.record_submit(job)
        self._intake.put(job)
        return job.request_id

    def status(self, request_id: str) -> JobStatus:
        job = self._get(request_id)
        with self._lock:  # job.status transitions happen under the lock
            return job.status

    def result(self, request_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until the job is terminal and return its result."""
        job = self._get(request_id)
        if not job._done.wait(timeout=timeout):
            raise TimeoutError(f"job {request_id} not terminal after {timeout}s")
        assert job.result is not None
        return job.result

    def cancel(self, request_id: str) -> bool:
        """Request cancellation; returns True if the job can still be skipped.

        Honoured at dequeue time: a job already executing (or terminal) is
        not interrupted, keeping its effects well-defined.
        """
        job = self._get(request_id)
        with self._lock:
            if job.status.terminal or job.status is JobStatus.RUNNING:
                return False
            job.cancel_requested = True
            return True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted job reached a terminal state."""
        deadline = None if timeout is None else self.clock() + timeout
        with self._all_done:
            while self._n_pending > 0:
                remaining = None if deadline is None else deadline - self.clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._all_done.wait(timeout=remaining)
        return True

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def _get(self, request_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(request_id)
        if job is None:
            raise JobNotFoundError(f"unknown request ID {request_id!r}")
        return job

    def _retry_after_hint(self) -> float:
        # The window plus an attempt's worth of backoff: by then the batcher
        # has flushed at least once and workers have made progress.
        return self.config.batch_window_s + self.config.backoff_cap_s

    # --------------------------------------------------------------- recovery
    @classmethod
    def recover(
        cls,
        registry: FilterRegistry,
        journal_dir,
        config: Optional[ServiceConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> "FilterService":
        """Rebuild a service from its journal after a crash.

        Finished jobs are preloaded into the idempotency store (resubmits
        still return the original results); accepted-but-unacknowledged
        jobs are re-executed against the registry's restored snapshots.
        Replayed jobs run without their original deadlines — the crash
        already blew them, and refusing the work would lose accepted jobs.
        """
        pending, finished = replay(journal_dir)
        service = cls(
            registry,
            config=config,
            journal_dir=journal_dir,
            fault_injector=fault_injector,
        )
        now = service.clock()
        with service._lock:
            for request_id, result in finished.items():
                job = Job(
                    request_id=request_id,
                    filter_name="<recovered>",
                    op="<recovered>",
                    keys=np.zeros(result.n_items, dtype=np.uint64),
                    values=None,
                    submitted_at=now,
                    status=result.status,
                    result=result,
                    finished_at=now,
                )
                # Pre-publication write (job enters _jobs on the next line,
                # already terminal): no waiter can exist yet.
                job._done = threading.Event()
                job._done.set()
                service._jobs[request_id] = job
        for record in pending:
            job = Job(
                request_id=record["request_id"],
                filter_name=record["filter"],
                op=record["op"],
                keys=record["keys"],
                values=record["values"],
                submitted_at=now,
            )
            # Pre-publication write: the replayed job is published under the
            # lock on the next line; no other thread holds it yet.
            job._done = threading.Event()
            with service._lock:
                service._jobs[job.request_id] = job
                service._n_pending += 1
            service._intake.put(job)
        return service

    # ------------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        while True:
            timeout = self._dispatch_timeout()
            try:
                item = self._intake.get(timeout=timeout)
            except queue.Empty:
                item = None
            now = self.clock()
            if item is _SHUTDOWN:
                for batch in self._batcher.flush():
                    self._work.put(batch)
                while self._retry_heap:
                    ready_at, _, batch = heapq.heappop(self._retry_heap)
                    delay = ready_at - self.clock()
                    if delay > 0:
                        time.sleep(delay)
                    self._work.put(batch)
                return
            if isinstance(item, Job):
                full = self._batcher.add(item, now)
                if full is not None:
                    self._work.put(full)
            elif isinstance(item, Batch):  # scheduled retry
                ready_at = item.opened_at
                heapq.heappush(
                    self._retry_heap, (ready_at, next(self._retry_seq), item)
                )
            for batch in self._batcher.due(now):
                self._work.put(batch)
            while self._retry_heap and self._retry_heap[0][0] <= now:
                _, _, batch = heapq.heappop(self._retry_heap)
                self._work.put(batch)

    def _dispatch_timeout(self) -> float:
        deadlines = [self.clock() + 0.05]
        next_due = self._batcher.next_due()
        if next_due is not None:
            deadlines.append(next_due)
        if self._retry_heap:
            deadlines.append(self._retry_heap[0][0])
        return max(0.0, min(deadlines) - self.clock())

    # ---------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            batch = self._work.get()
            if batch is _SHUTDOWN:
                return
            try:
                self._execute(batch)
            except BaseException as exc:  # noqa: BLE001 - never kill the pool
                self._finalize_batch(
                    batch,
                    JobStatus.FAILED,
                    error=f"unexpected worker error: {type(exc).__name__}: {exc}",
                )

    def _execute(self, batch: Batch) -> None:
        now = self.clock()
        admitted = self._admit_jobs(batch.jobs, now)
        with self._lock:
            # Batch fields are written under the lock even though batches
            # move between dispatcher and workers by queue handoff: the
            # handoff is a happens-before edge, but keeping a single
            # visible discipline lets the race detector check it.
            batch.jobs = admitted
            if admitted:
                batch.attempts += 1
                for job in admitted:
                    job.status = JobStatus.RUNNING
                    job.attempts = batch.attempts
                    if job.started_at is None:
                        job.started_at = now
        if not admitted:
            return
        try:
            self.faults.on_batch_start(batch.token())
            with self.registry.acquire(batch.filter_name) as entry:
                with entry.op_lock:
                    self._run_batch(entry, batch)
        except FilterFullError as exc:
            self._handle_capacity_failure(batch, exc)
        except TERMINAL_ERRORS as exc:
            self._finalize_batch(
                batch, JobStatus.FAILED, error=f"{type(exc).__name__}: {exc}"
            )
        except Exception as exc:  # noqa: BLE001 - classified below
            if is_retryable(exc) and batch.attempts < self.config.max_attempts:
                self._schedule_retry(batch)
            else:
                self._finalize_batch(
                    batch, JobStatus.FAILED, error=f"{type(exc).__name__}: {exc}"
                )

    def _admit_jobs(self, jobs: List[Job], now: float) -> List[Job]:
        """Drop cancelled/expired jobs before execution (effects: none)."""
        admitted = []
        # cancel() flips the flag under the lock; snapshot it the same way
        # (the lock cannot be held across _finalize_job, which re-takes it).
        with self._lock:
            cancelled = {job.request_id for job in jobs if job.cancel_requested}
        for job in jobs:
            if job.request_id in cancelled:
                self._finalize_job(job, JobStatus.CANCELLED, error="cancelled")
            elif job.expired(now):
                self._finalize_job(
                    job, JobStatus.EXPIRED,
                    error=f"deadline of {job.deadline_s}s passed before execution",
                )
            else:
                admitted.append(job)
        return admitted

    # ---------------------------------------------------------- batch execution
    def _run_batch(self, entry, batch: Batch) -> None:
        keys = np.concatenate([job.keys for job in batch.jobs])
        if batch.op == "insert":
            values = np.concatenate(
                [
                    job.values
                    if job.values is not None
                    else np.zeros(job.n_items, dtype=np.uint64)
                    for job in batch.jobs
                ]
            )
            mask = self._insert_with_growth(entry, batch, keys, values)
            self._finalize_insert(batch, mask)
            return
        filt = self.registry.ensure_resident(entry)
        if batch.op == "query":
            results = np.asarray(filt.bulk_query(keys), dtype=bool).astype(np.int64)
        elif batch.op == "count":
            results = np.asarray(filt.bulk_count(keys), dtype=np.int64)
        elif batch.op == "delete":
            results = self._delete_per_job(filt, batch)
        else:  # pragma: no cover - submit() validates operations
            raise UnsupportedOperationError(f"unknown operation {batch.op!r}")
        offset = 0
        for job in batch.jobs:
            data = results[offset : offset + job.n_items]
            offset += job.n_items
            self._finalize_job(
                job, JobStatus.SUCCEEDED,
                n_ok=job.n_items, data=[int(x) for x in data],
            )

    def _delete_per_job(self, filt: AbstractFilter, batch: Batch) -> np.ndarray:
        """Per-job deletes (bulk_delete reports one count per call)."""
        out = np.zeros(batch.n_keys, dtype=np.int64)
        offset = 0
        for job in batch.jobs:
            removed = int(filt.bulk_delete(job.keys))
            out[offset : offset + job.n_items] = 1 if removed == job.n_items else 0
            offset += job.n_items
        return out

    def _insert_with_growth(
        self, entry, batch: Batch, keys: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Insert the batch, growing the filter on capacity failures.

        Returns the per-key success mask.  Two paths keep retries safe:

        * filters with ``bulk_insert_mask`` report per-key placement without
          raising; unplaced keys are retried after each expansion;
        * filters whose ``bulk_insert`` is atomic on failure
          (``bulk_insert_atomic``) place nothing when they raise, so the
          whole batch is retried after expansion.

        Filters with neither property get one all-or-nothing attempt: a
        capacity failure there has ill-defined partial effects, so the
        service refuses to guess and fails the batch terminally.
        """
        filt = self.registry.ensure_resident(entry)
        has_mask = (
            type(filt).bulk_insert_mask is not AbstractFilter.bulk_insert_mask
            or filt.capabilities().point_insert
        )
        if has_mask:
            mask = np.asarray(filt.bulk_insert_mask(keys, values), dtype=bool)
            while not mask.all() and self._try_expand(entry, batch):
                filt = entry.filt
                todo = np.flatnonzero(~mask)
                sub = np.asarray(
                    filt.bulk_insert_mask(keys[todo], values[todo]), dtype=bool
                )
                mask[todo[sub]] = True
                if not sub.any():
                    break
            return mask
        while True:
            try:
                filt.bulk_insert(keys, values)
                return np.ones(keys.size, dtype=bool)
            except FilterFullError:
                if not getattr(filt, "bulk_insert_atomic", False):
                    raise  # partial effects unknowable: terminal failure
                if not self._try_expand(entry, batch):
                    return np.zeros(keys.size, dtype=bool)
                filt = entry.filt

    def _try_expand(self, entry, batch: Batch) -> bool:
        """Capacity policy: grow the filter via the lifecycle layer."""
        if batch.expands >= self.config.max_expands_per_batch:
            return False
        filt = self.registry.ensure_resident(entry)
        if not filt.capabilities().resizable:
            return False
        try:
            entry.filt = expand(filt)
        except (UnsupportedOperationError, ValueError):
            return False
        batch.expands += 1
        return True

    def _handle_capacity_failure(self, batch: Batch, exc: FilterFullError) -> None:
        """A FilterFullError surfaced at batch level.

        Reached by injected filter-full storms (raised before execution) and
        by non-growable filters: expand if warranted, then retry the batch —
        nothing was placed, so the retry cannot duplicate effects.  The
        error's occupancy context drives the growth decision: a filter that
        reports real pressure (high load factor) earns an expansion, while a
        transient storm with no occupancy snapshot is simply retried —
        doubling a half-empty filter for it would waste memory for nothing.
        """
        if batch.attempts < self.config.max_attempts:
            load = exc.load_factor
            if load is not None and load >= 0.5:
                try:
                    with self.registry.acquire(batch.filter_name) as entry:
                        with entry.op_lock:
                            self._try_expand(entry, batch)
                # audit: ignore[AUD105] - expansion is opportunistic: the batch
                # retries either way, and the retry path reports real errors
                except Exception:  # noqa: BLE001 - growth is best-effort here
                    pass
            self._schedule_retry(batch)
        else:
            self._finalize_batch(
                batch, JobStatus.FAILED, error=f"FilterFullError: {exc}"
            )

    # ------------------------------------------------------------ retry/backoff
    def _backoff_s(self, batch: Batch) -> float:
        base = self.config.backoff_base_s * (2 ** (batch.attempts - 1))
        jitter01 = zlib.crc32(f"jitter:{batch.token()}".encode()) / 2**32
        return min(self.config.backoff_cap_s, base) * (
            1.0 + self.config.backoff_jitter * jitter01
        )

    def _schedule_retry(self, batch: Batch) -> None:
        with self._lock:
            for job in batch.jobs:
                job.status = JobStatus.QUEUED
            batch.opened_at = self.clock() + self._backoff_s(batch)
        self._intake.put(batch)

    # ------------------------------------------------------------- finalization
    def _finalize_insert(self, batch: Batch, mask: np.ndarray) -> None:
        offset = 0
        for job in batch.jobs:
            job_mask = mask[offset : offset + job.n_items]
            offset += job.n_items
            n_ok = int(np.count_nonzero(job_mask))
            if n_ok == job.n_items:
                status = JobStatus.SUCCEEDED
            elif n_ok > 0:
                status = JobStatus.PARTIAL
            else:
                status = JobStatus.FAILED
            self._finalize_job(
                job, status,
                n_ok=n_ok,
                ok_mask=[bool(b) for b in job_mask],
                error=None if n_ok == job.n_items else "filter full",
            )

    def _finalize_batch(
        self, batch: Batch, status: JobStatus, error: Optional[str]
    ) -> None:
        for job in batch.jobs:
            self._finalize_job(job, status, error=error)

    def _finalize_job(
        self,
        job: Job,
        status: JobStatus,
        n_ok: int = 0,
        error: Optional[str] = None,
        ok_mask: Optional[List[bool]] = None,
        data: Optional[List[int]] = None,
    ) -> None:
        now = self.clock()
        result = JobResult(
            status=status,
            n_items=job.n_items,
            n_ok=n_ok,
            attempts=max(1, job.attempts),
            error=error,
            ok_mask=ok_mask,
            data=data,
            deadline_exceeded=job.deadline_at() is not None and now > job.deadline_at(),
        )
        with self._lock:
            if job.status.terminal:
                return  # first terminal transition wins
            job.status = status
            job.result = result
            job.finished_at = now
            self._n_pending -= 1
            self._all_done.notify_all()
        if self.journal is not None:
            self.journal.record_result(job)
        job._done.set()
