"""Append-only job journal: the service's crash-recovery log.

Every *accepted* job is journaled before it is queued (``submit`` records),
and every terminal outcome is journaled when it is reached (``result``
records).  After a crash, :func:`replay` pairs the two streams up:

* submit + result  -> the job finished; its result is preloaded into the
  idempotency store so resubmitting the request ID still returns the
  original outcome;
* submit, no result -> the job was accepted but never acknowledged; the
  recovering service re-executes it against the restored snapshots.

Records are JSON lines in ``journal.jsonl``.  Key payloads up to
``INLINE_KEYS`` items are stored inline; larger jobs spill their arrays to
``payloads/<request-id>.npz`` so the journal itself stays small even for
million-key jobs.  Journal appends are flushed + fsynced per record: an
accepted job survives the process.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from .jobs import Job, JobResult, JobStatus

JOURNAL_NAME = "journal.jsonl"
PAYLOAD_DIR = "payloads"

#: Jobs at or below this many keys store them inline in the JSON record.
INLINE_KEYS = 1024


class JobJournal:
    """Append-only journal under one directory; safe for concurrent appends."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / PAYLOAD_DIR).mkdir(exist_ok=True)
        self.path = self.directory / JOURNAL_NAME
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------- appends
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def record_submit(self, job: Job) -> None:
        record = {
            "type": "submit",
            "request_id": job.request_id,
            "filter": job.filter_name,
            "op": job.op,
            "n_keys": job.n_items,
            "deadline_s": job.deadline_s,
            "submitted_at": job.submitted_at,
        }
        if job.n_items <= INLINE_KEYS:
            record["keys"] = [int(k) for k in job.keys]
            if job.values is not None:
                record["values"] = [int(v) for v in job.values]
        else:
            payload_path = self.directory / PAYLOAD_DIR / f"{job.request_id}.npz"
            arrays = {"keys": job.keys}
            if job.values is not None:
                arrays["values"] = job.values
            with open(payload_path, "wb") as fh:
                np.savez(fh, **arrays)
            record["payload"] = payload_path.name
        self._append(record)

    def record_result(self, job: Job) -> None:
        assert job.result is not None
        record = {
            "type": "result",
            "request_id": job.request_id,
            **job.result.as_dict(),
        }
        mask = job.result.ok_mask
        if mask is not None:
            # The per-item mask is what lets a recovery rebuild *acked*
            # effects exactly (see :func:`acked_effects`).
            if len(mask) <= INLINE_KEYS:
                record["ok_mask"] = [bool(b) for b in mask]
            else:
                mask_path = (
                    self.directory / PAYLOAD_DIR / f"{job.request_id}.mask.npz"
                )
                with open(mask_path, "wb") as fh:
                    np.savez(fh, ok_mask=np.asarray(mask, dtype=bool))
                record["ok_mask_payload"] = mask_path.name
        self._append(record)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


# --------------------------------------------------------------------------
# replay
# --------------------------------------------------------------------------
def _load_payload(directory: pathlib.Path, record: dict) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    if "keys" in record:
        keys = np.asarray(record["keys"], dtype=np.uint64)
        values = (
            np.asarray(record["values"], dtype=np.uint64)
            if "values" in record
            else None
        )
        return keys, values
    with np.load(directory / PAYLOAD_DIR / record["payload"]) as payload:
        keys = payload["keys"]
        values = payload["values"] if "values" in payload.files else None
    return keys, values


def _read_records(directory: pathlib.Path) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """Parse the journal into raw ``(submits, results)`` record maps.

    Corrupt trailing lines (a crash mid-append) are tolerated: the journal
    is read up to the first unparsable line.
    """
    path = directory / JOURNAL_NAME
    submits: Dict[str, dict] = {}
    results: Dict[str, dict] = {}
    if not path.exists():
        return submits, results
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn final append; everything before it is intact
            if record.get("type") == "submit":
                submits[record["request_id"]] = record
            elif record.get("type") == "result":
                results[record["request_id"]] = record
    return submits, results


def _load_mask(directory: pathlib.Path, result: dict, n_items: int) -> np.ndarray:
    if "ok_mask" in result:
        return np.asarray(result["ok_mask"], dtype=bool)
    if "ok_mask_payload" in result:
        with np.load(directory / PAYLOAD_DIR / result["ok_mask_payload"]) as payload:
            return np.asarray(payload["ok_mask"], dtype=bool)
    # A fully-succeeded record needs no stored mask.
    return np.ones(n_items, dtype=bool)


def replay(directory) -> Tuple[List[dict], Dict[str, JobResult]]:
    """Read a journal back into ``(pending submits, finished results)``.

    ``pending`` holds the submit records (with key arrays re-attached under
    ``"keys"``/``"values"``) of jobs that never reached a terminal state;
    ``finished`` maps request IDs to their recorded :class:`JobResult`.
    """
    directory = pathlib.Path(directory)
    submits, results = _read_records(directory)
    finished: Dict[str, JobResult] = {}
    for request_id, record in results.items():
        finished[request_id] = JobResult(
            status=JobStatus(record["status"]),
            n_items=int(record["n_items"]),
            n_ok=int(record["n_ok"]),
            attempts=int(record["attempts"]),
            error=record.get("error"),
            ok_mask=(
                [bool(b) for b in record["ok_mask"]] if "ok_mask" in record else None
            ),
            deadline_exceeded=bool(record.get("deadline_exceeded")),
        )
    pending = []
    for request_id, record in submits.items():
        if request_id in finished:
            continue
        keys, values = _load_payload(directory, record)
        record = dict(record)
        record["keys"], record["values"] = keys, values
        pending.append(record)
    return pending, finished


def acked_effects(directory) -> Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Per-filter *acknowledged* insert effects recorded in the journal.

    Joins each insert submit record with its terminal result and keeps only
    the keys whose per-item mask says they were applied — exactly the state
    a recovery must rebuild into a filter whose snapshot was lost (torn
    file, restore-policy ``"recreate"``).  Returns ``{filter_name: (keys,
    values-or-None)}``.
    """
    directory = pathlib.Path(directory)
    submits, results = _read_records(directory)
    per_filter: Dict[str, List[Tuple[np.ndarray, Optional[np.ndarray]]]] = {}
    for request_id, submit in submits.items():
        if submit.get("op") != "insert":
            continue
        result = results.get(request_id)
        if result is None or result.get("status") not in ("succeeded", "partial"):
            continue
        keys, values = _load_payload(directory, submit)
        mask = _load_mask(directory, result, keys.size)
        per_filter.setdefault(submit["filter"], []).append(
            (keys[mask], values[mask] if values is not None else None)
        )
    effects: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
    for name, chunks in per_filter.items():
        keys = np.concatenate([c[0] for c in chunks])
        if all(c[1] is None for c in chunks):
            values = None
        else:
            values = np.concatenate(
                [
                    c[1] if c[1] is not None else np.zeros(c[0].size, dtype=np.uint64)
                    for c in chunks
                ]
            )
        effects[name] = (keys, values)
    return effects
