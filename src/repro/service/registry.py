"""Multi-tenant filter registry: named filters, memory accounting, LRU
eviction to snapshots, restore-on-demand.

The service's "millions of users" axis: thousands of named filters can be
registered, but only as many stay resident as the memory budget allows.
The registry tracks each resident filter's ``nbytes``; when the budget is
exceeded, least-recently-used unpinned filters are saved to snapshot files
(via the crash-safe :func:`repro.lifecycle.snapshot.save_filter`) and
dropped from memory, then transparently restored on the next access.

Concurrency contract:

* **Single-flight, fail-fast setup** — concurrent ``get_or_create`` calls
  for the same name build the filter exactly once; the losers wait on the
  winner and fail fast with the same error if construction fails (the slot
  is cleared so a later call may retry).
* **Pinning** — :meth:`acquire` pins an entry while a worker holds it, so
  eviction never snapshots a filter mid-mutation.
* **Per-filter serialization** — the simulated filters are not thread-safe;
  every entry carries an ``op_lock`` that workers hold for the duration of
  a batch, serializing mutations per filter while different filters proceed
  in parallel.
"""

from __future__ import annotations

import contextlib
import pathlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.base import AbstractFilter
from ..core.exceptions import SnapshotError
from ..lifecycle.snapshot import load_filter, save_filter
from .faults import NO_FAULTS, FaultInjector
from .jobs import UnknownFilterError


@dataclass
class _Entry:
    """Registry bookkeeping for one named filter."""

    name: str
    factory: Callable[[], AbstractFilter]
    filt: Optional[AbstractFilter] = None
    snapshot_path: Optional[pathlib.Path] = None
    pins: int = 0
    last_used: int = 0
    #: Serializes batch execution against this filter (filters are not
    #: thread-safe); held by workers for the duration of one batch.
    op_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Set once construction (the single-flight winner) finished, in either
    #: direction; ``error`` carries the failure for the fail-fast losers.
    built: threading.Event = field(default_factory=threading.Event)
    error: Optional[BaseException] = None
    #: True when a torn snapshot forced the ``"recreate"`` restore policy:
    #: the resident filter is an empty twin awaiting a journal refill.
    recreated: bool = False


class FilterRegistry:
    """Named filters with memory accounting and LRU snapshot eviction."""

    def __init__(
        self,
        snapshot_dir,
        memory_budget_bytes: int = 256 * 1024 * 1024,
        torn_restore_policy: str = "error",
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if torn_restore_policy not in ("error", "recreate"):
            raise ValueError(
                f"torn_restore_policy must be 'error' or 'recreate', "
                f"got {torn_restore_policy!r}"
            )
        self.snapshot_dir = pathlib.Path(snapshot_dir)
        self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.torn_restore_policy = torn_restore_policy
        self.faults = fault_injector or NO_FAULTS
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._clock = 0
        self.stats = {
            "evictions": 0,
            "restores": 0,
            "torn_restores": 0,
            "failed_evictions": 0,
        }

    # ----------------------------------------------------------- inventory
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(
                entry.filt.nbytes
                for entry in self._entries.values()
                if entry.filt is not None
            )

    def resident_names(self) -> List[str]:
        with self._lock:
            return sorted(
                name for name, e in self._entries.items() if e.filt is not None
            )

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def recreated_names(self) -> List[str]:
        """Filters rebuilt empty after a torn restore (they need a refill)."""
        with self._lock:
            return sorted(name for name, e in self._entries.items() if e.recreated)

    # ------------------------------------------------------------- create
    def get_or_create(self, name: str, factory: Callable[[], AbstractFilter]) -> None:
        """Register ``name``, building its filter exactly once (single-flight).

        Concurrent callers for the same name wait for the first builder; if
        it raises, every waiter fails fast with the same exception and the
        name is cleared so a later call can retry.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = _Entry(name=name, factory=factory)
                self._entries[name] = entry
                builder = True
            else:
                builder = False
        if not builder:
            entry.built.wait()
            if entry.error is not None:
                raise entry.error
            return
        try:
            filt = factory()
        except BaseException as exc:
            entry.error = exc
            with self._lock:
                self._entries.pop(name, None)
            entry.built.set()
            raise
        with self._lock:
            entry.filt = filt
            entry.last_used = self._next_tick()
        entry.built.set()
        self._evict_to_budget()

    def register_snapshot(
        self, name: str, factory: Callable[[], AbstractFilter], snapshot_path=None
    ) -> None:
        """Adopt an on-disk snapshot as a registered, non-resident filter.

        The recovery path: a restarted service re-registers each tenant
        against its last snapshot instead of building a fresh filter; the
        first :meth:`acquire` restores it (or, under the ``"recreate"``
        policy, rebuilds an empty twin for the journal replay to refill).
        """
        path = (
            pathlib.Path(snapshot_path)
            if snapshot_path is not None
            else self.snapshot_dir / f"{name}.rpro"
        )
        entry = _Entry(name=name, factory=factory, snapshot_path=path)
        entry.built.set()
        with self._lock:
            self._entries[name] = entry

    def _next_tick(self) -> int:
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------- access
    @contextlib.contextmanager
    def acquire(self, name: str):
        """Pin the named filter for use, restoring it from disk if evicted.

        Yields the :class:`_Entry`; callers take ``entry.op_lock`` around
        mutations and may replace ``entry.filt`` (e.g. after a capacity
        expansion) while pinned.
        """
        entry = self._pin(name)
        try:
            yield entry
        finally:
            with self._lock:
                entry.pins -= 1
            self._evict_to_budget()

    def _pin(self, name: str) -> _Entry:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownFilterError(f"no filter named {name!r} is registered")
        entry.built.wait()
        if entry.error is not None:
            raise entry.error
        with self._lock:
            entry.pins += 1
            entry.last_used = self._next_tick()
        # Restore outside the registry lock (loads can be large); the entry
        # op_lock makes concurrent restorers of the same filter single-flight.
        if entry.filt is None:
            with entry.op_lock:
                if entry.filt is None:
                    try:
                        self._restore(entry)
                    except BaseException:
                        with self._lock:
                            entry.pins -= 1
                        raise
        return entry

    def ensure_resident(self, entry: _Entry) -> AbstractFilter:
        """Restore ``entry`` if an in-flight eviction raced the pin.

        A pin taken *during* an eviction (the evictor holds its own pin, so
        ``pins == 0`` was already false-checked) keeps future evictions away
        but cannot stop the one in progress; callers therefore re-check
        residency under the ``op_lock`` they hold before touching the
        filter.
        """
        if entry.filt is None:
            self._restore(entry)
        assert entry.filt is not None
        return entry.filt

    def _restore(self, entry: _Entry) -> None:
        assert entry.snapshot_path is not None
        try:
            entry.filt = load_filter(entry.snapshot_path)
            self._bump("restores")
        except SnapshotError:
            self._bump("torn_restores")
            if self.torn_restore_policy == "error":
                raise
            # Recreate an empty filter of the same shape; the journal replay
            # layer above is responsible for refilling it.
            entry.filt = entry.factory()
            entry.recreated = True

    def _bump(self, stat: str) -> None:
        """Increment a counter under the registry lock.

        ``dict[key] += 1`` is a read-modify-write: two workers restoring
        different filters at once can lose one of the increments without
        the lock (op_lock only serializes per filter, not across filters).
        """
        with self._lock:
            self.stats[stat] += 1

    def replace(self, name: str, filt: AbstractFilter) -> None:
        """Swap the live filter object (after an out-of-place expansion).

        ``entry.filt`` is op_lock-protected everywhere else (restore, evict,
        in-batch expansion); swapping it under the registry lock alone could
        tear a filter out from under a worker mid-batch.  Look the entry up
        under the registry lock, then swap under its ``op_lock`` — in that
        order, matching the documented hierarchy (op_lock is never taken
        while holding the registry lock).
        """
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownFilterError(f"no filter named {name!r} is registered")
        with entry.op_lock:
            old = entry.filt
            entry.filt = filt
            # Replacing a filter that holds external resources (a sharded
            # filter's worker pool + shared-memory segments) must release
            # them, or the old segments leak until interpreter exit.  Guard
            # against same-object swaps: in-place growers return themselves.
            if old is not None and old is not filt and hasattr(old, "close"):
                old.close()

    # ------------------------------------------------------------ eviction
    def _evict_to_budget(self) -> None:
        while True:
            with self._lock:
                resident = sum(
                    e.filt.nbytes for e in self._entries.values() if e.filt is not None
                )
                if resident <= self.memory_budget_bytes:
                    return
                candidates = [
                    e
                    for e in self._entries.values()
                    if e.filt is not None and e.pins == 0 and e.built.is_set()
                ]
                if not candidates:
                    return
                victim = min(candidates, key=lambda e: e.last_used)
                # Hold the pin while snapshotting so a concurrent acquire
                # cannot mutate the filter mid-save.
                victim.pins += 1
            try:
                self._evict(victim)
            finally:
                with self._lock:
                    victim.pins -= 1

    def _evict(self, entry: _Entry) -> None:
        path = self.snapshot_dir / f"{entry.name}.rpro"
        with entry.op_lock:
            if entry.filt is None:
                return
            try:
                save_filter(entry.filt, path)
            except Exception:
                # A failed save must never lose data: keep the filter
                # resident and report the fault instead of evicting blind.
                self._bump("failed_evictions")
                return
            self.faults.on_snapshot_saved(entry.name, path)
            entry.snapshot_path = path
            evicted = entry.filt
            entry.filt = None
            # The snapshot is durable; release any external resources the
            # evicted filter held (worker pools, shared-memory segments).
            if hasattr(evicted, "close"):
                evicted.close()
            self._bump("evictions")

    def flush(self) -> None:
        """Snapshot every resident filter (shutdown/checkpoint path)."""
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.op_lock:
                if entry.filt is not None:
                    path = self.snapshot_dir / f"{entry.name}.rpro"
                    save_filter(entry.filt, path)
                    entry.snapshot_path = path

    def close_resident(self) -> None:
        """Release resident filters' external resources (shutdown path).

        Filters backed by OS resources that outlive the process — a sharded
        filter's ``/dev/shm`` segments and worker pool — must be closed
        explicitly, or the segments linger until every finalizer runs.  Each
        closable filter is snapshotted first (eviction semantics: durable
        before dropped), then closed and de-residented so a later access
        restores from disk instead of touching a closed object.  Heap-only
        filters have no ``close`` and are left resident untouched.
        """
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.op_lock:
                filt = entry.filt
                if filt is None or not hasattr(filt, "close"):
                    continue
                path = self.snapshot_dir / f"{entry.name}.rpro"
                try:
                    save_filter(filt, path)
                    entry.snapshot_path = path
                    entry.filt = None
                except Exception:
                    # An unsaveable filter still must not leak its segments;
                    # it stays formally resident so the data-loss is visible
                    # (acquire raises on the closed filter, not silently
                    # empty).
                    self._bump("failed_evictions")
                filt.close()
