"""Fault-tolerant bulk-job filter service.

The long-lived front end the paper's motivating deployment (MetaHipMer's
distributed k-mer sets) assumes: clients submit asynchronous bulk jobs of
keys against named filters and get robust semantics back — request-ID
idempotency, per-item partial success, bounded retries with backoff,
deadlines and cancellation, queue-depth backpressure, and journal-based
crash recovery — while a windowed batcher and a bounded worker pool turn
the small-job stream into the filters' vectorised bulk calls.

* :mod:`repro.service.jobs` — the job model: statuses, results, errors;
* :mod:`repro.service.registry` — multi-tenant filter registry with memory
  accounting, LRU eviction to snapshots, and restore-on-demand;
* :mod:`repro.service.batcher` — time/size-windowed batch coalescing;
* :mod:`repro.service.journal` — fsynced journal + crash replay;
* :mod:`repro.service.service` — the :class:`FilterService` itself;
* :mod:`repro.service.faults` — deterministic, seedable fault injection
  (worker crashes, slow batches, filter-full storms, torn snapshots);
* :mod:`repro.service.traffic` — the mixed-traffic chaos harness behind
  the ``service`` pipeline stage.
"""

from .batcher import Batch, WindowedBatcher
from .faults import (
    FaultConfig,
    FaultInjector,
    InjectedFault,
    TornWriteFault,
    WorkerCrashFault,
    torn_snapshot_writes,
)
from .jobs import (
    AdmissionError,
    Job,
    JobNotFoundError,
    JobResult,
    JobStatus,
    ServiceClosedError,
    ServiceError,
    UnknownFilterError,
)
from .journal import JobJournal, acked_effects, replay
from .registry import FilterRegistry
from .service import FilterService, ServiceConfig
from .traffic import TrafficConfig, run_traffic

__all__ = [
    "AdmissionError",
    "Batch",
    "FaultConfig",
    "FaultInjector",
    "FilterRegistry",
    "FilterService",
    "InjectedFault",
    "Job",
    "JobJournal",
    "JobNotFoundError",
    "JobResult",
    "JobStatus",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "TornWriteFault",
    "TrafficConfig",
    "UnknownFilterError",
    "WindowedBatcher",
    "WorkerCrashFault",
    "acked_effects",
    "replay",
    "run_traffic",
    "torn_snapshot_writes",
]
