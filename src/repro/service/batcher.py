"""Time/size-windowed batch coalescing.

Many small client jobs against the same filter are far cheaper executed as
one vectorised bulk call than as many tiny ones, so the service's dispatcher
funnels submissions through this batcher: jobs targeting the same
``(filter, op)`` pair accumulate in an open batch until either

* the batch reaches ``max_batch_keys`` total keys or ``max_batch_jobs``
  jobs (size trigger, returned immediately), or
* ``window_s`` elapses since the batch was opened (time trigger, collected
  by the dispatcher's periodic :meth:`due` sweep).

The batcher is a pure data structure — no threads, no clocks of its own —
so its coalescing behaviour is deterministic and directly unit-testable;
the dispatcher thread owns it and feeds it ``now`` timestamps.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .jobs import Job

_batch_seq = itertools.count()


@dataclass
class Batch:
    """A group of same-``(filter, op)`` jobs executed as one bulk call."""

    filter_name: str
    op: str
    jobs: List[Job] = field(default_factory=list)
    opened_at: float = 0.0
    seq: int = field(default_factory=lambda: next(_batch_seq))
    #: Execution attempts so far (shared by every job riding the batch).
    attempts: int = 0
    #: Capacity expansions already performed on behalf of this batch.
    expands: int = 0

    @property
    def n_keys(self) -> int:
        return sum(job.n_items for job in self.jobs)

    def token(self) -> str:
        """Stable fault/backoff token for the current attempt.

        Derived from the member request IDs (not the arrival-order seq), so
        a given set of jobs sees the same injected-fault schedule however
        the dispatcher happened to group or time them.
        """
        digest = zlib.crc32("|".join(j.request_id for j in self.jobs).encode())
        return f"{self.filter_name}:{self.op}:{digest:08x}#{self.attempts}"


class WindowedBatcher:
    """Coalesces jobs into :class:`Batch` es bounded by time and size."""

    def __init__(
        self,
        window_s: float = 0.002,
        max_batch_keys: int = 65536,
        max_batch_jobs: int = 32,
    ) -> None:
        self.window_s = float(window_s)
        self.max_batch_keys = int(max_batch_keys)
        self.max_batch_jobs = int(max_batch_jobs)
        self._open: Dict[Tuple[str, str], Batch] = {}

    def add(self, job: Job, now: float) -> Optional[Batch]:
        """Buffer ``job``; returns a batch if the size trigger fired."""
        key = (job.filter_name, job.op)
        batch = self._open.get(key)
        if batch is None:
            batch = Batch(filter_name=job.filter_name, op=job.op, opened_at=now)
            self._open[key] = batch
        batch.jobs.append(job)
        if batch.n_keys >= self.max_batch_keys or len(batch.jobs) >= self.max_batch_jobs:
            del self._open[key]
            return batch
        return None

    def due(self, now: float) -> List[Batch]:
        """Collect every open batch whose window has expired."""
        ready = []
        for key, batch in list(self._open.items()):
            if now - batch.opened_at >= self.window_s:
                ready.append(batch)
                del self._open[key]
        return ready

    def next_due(self) -> Optional[float]:
        """Earliest instant at which an open batch's window expires."""
        if not self._open:
            return None
        return min(batch.opened_at for batch in self._open.values()) + self.window_s

    def flush(self) -> List[Batch]:
        """Close and return every open batch (shutdown path)."""
        batches = list(self._open.values())
        self._open.clear()
        return batches

    @property
    def n_buffered(self) -> int:
        return sum(len(batch.jobs) for batch in self._open.values())
