"""Deterministic, seedable fault injection for the filter service.

Chaos testing a threaded service is only useful if the fault schedule is
reproducible, so this injector derives every decision from a **stable hash**
of ``(seed, site, token)`` instead of shared RNG state: whatever order the
worker threads reach the injection sites in, the same job attempt sees the
same fault.  ``token`` is typically ``"<request-id>#<attempt>"``, which makes
retries see fresh (but still deterministic) coin flips.

Sites:

* ``worker_crash`` — raises :class:`WorkerCrashFault` at batch start,
  *before any filter mutation*, simulating a worker process dying; the
  service retries the whole batch safely.
* ``slow_batch`` — sleeps before execution, simulating a straggling or
  briefly hung worker; drives the deadline/latency paths.
* ``filter_full`` — raises a synthetic
  :class:`~repro.core.exceptions.FilterFullError` before execution,
  simulating a filter-full storm; drives the grow-then-retry capacity
  policy.
* ``torn_snapshot`` — truncates a snapshot file after it is written,
  simulating disk corruption between a save and a later restore; drives the
  registry's restore-failure handling.
* ``shard_worker_kill`` — instructs a sharded filter's worker process to
  ``os._exit`` before touching its segment, simulating a pool process dying
  (SIGKILL-style: no cleanup runs); drives the pool-rebuild + retry path and
  the shared-memory leak guards.

The module also provides :func:`torn_snapshot_writes`, a context manager
that kills :func:`repro.lifecycle.snapshot.save_filter` mid-stream — the
harness behind the crash-safe-save test.
"""

from __future__ import annotations

import contextlib
import os
import time
import zlib
from dataclasses import dataclass
from typing import Dict

from ..core.exceptions import FilterFullError
from .jobs import RETRYABLE_ERRORS


class InjectedFault(Exception):
    """Base class for all injected faults (never raised spontaneously)."""


class WorkerCrashFault(InjectedFault):
    """Simulates a worker dying before it touched the filter."""


class TornWriteFault(InjectedFault):
    """Simulates the process being killed in the middle of a file write."""


# Worker crashes are transient by definition; register them with the job
# layer's retry classification (kept as a list there to avoid a dependency
# cycle between the job and fault modules).
RETRYABLE_ERRORS.append(WorkerCrashFault)


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates (per batch attempt / per snapshot write), all default off."""

    seed: int = 0
    worker_crash_rate: float = 0.0
    slow_batch_rate: float = 0.0
    slow_batch_s: float = 0.002
    filter_full_rate: float = 0.0
    torn_snapshot_rate: float = 0.0
    shard_worker_kill_rate: float = 0.0

    @property
    def any_enabled(self) -> bool:
        return any(
            rate > 0.0
            for rate in (
                self.worker_crash_rate,
                self.slow_batch_rate,
                self.filter_full_rate,
                self.torn_snapshot_rate,
                self.shard_worker_kill_rate,
            )
        )


class FaultInjector:
    """Deterministic fault source driven by :class:`FaultConfig`.

    Thread-safe by construction: decisions are pure functions of
    ``(seed, site, token)``; only the fired-count tally is shared, and it is
    a plain int dict updated under the GIL.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.fired: Dict[str, int] = {}

    def _fire(self, site: str, token: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        digest = zlib.crc32(f"{self.config.seed}:{site}:{token}".encode())
        if digest / 2**32 >= rate:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    def on_batch_start(self, token: str) -> None:
        """Injection site at the top of batch execution, before any mutation.

        Raising here is always safe to retry: the filter has not been
        touched, so a whole-batch re-execution cannot duplicate effects.
        """
        if self._fire("worker_crash", token, self.config.worker_crash_rate):
            raise WorkerCrashFault(f"injected worker crash ({token})")
        if self._fire("filter_full", token, self.config.filter_full_rate):
            # audit: ignore[AUD104] - synthetic storm: there is no real filter
            # behind it, so no occupancy snapshot exists to attach
            raise FilterFullError(f"injected filter-full storm ({token})")
        if self._fire("slow_batch", token, self.config.slow_batch_rate):
            time.sleep(self.config.slow_batch_s)

    def on_shard_task(self, token: str) -> bool:
        """Injection site before a shard task is submitted to the pool.

        Returning True instructs the :class:`~repro.sharding.sharded.
        ShardedFilter` to have that worker ``os._exit`` before attaching the
        segment — a *real* process death (breaking the whole pool), unlike
        ``worker_crash``'s in-thread exception.  The decision is made in the
        parent so the injector's tally stays in one process.
        """
        return self._fire(
            "shard_worker_kill", token, self.config.shard_worker_kill_rate
        )

    def on_snapshot_saved(self, token: str, path) -> bool:
        """Injection site after an eviction save: maybe tear the file.

        Returns True when the snapshot was torn (truncated to ~half), which
        a later restore must detect via the CRC and surface as a
        :class:`~repro.core.exceptions.SnapshotError`.
        """
        if not self._fire("torn_snapshot", token, self.config.torn_snapshot_rate):
            return False
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        return True


#: A do-nothing injector for the clean-traffic path.
NO_FAULTS = FaultInjector(FaultConfig())


@contextlib.contextmanager
def torn_snapshot_writes(kill_after_bytes: int):
    """Kill every snapshot save mid-stream while the context is active.

    Patches the write seam of :mod:`repro.lifecycle.snapshot` so that only
    ``kill_after_bytes`` bytes reach the temp file before a
    :class:`TornWriteFault` aborts the save — the moral equivalent of
    ``kill -9`` between two ``write(2)`` calls.  Because the save path is
    atomic (temp file + rename), the destination must be untouched.
    """
    from ..lifecycle import snapshot as snapshot_module

    original = snapshot_module._write_stream

    def killed_write(fh, data: bytes) -> None:
        fh.write(data[:kill_after_bytes])
        fh.flush()
        raise TornWriteFault(
            f"injected kill after {kill_after_bytes} of {len(data)} bytes"
        )

    snapshot_module._write_stream = killed_write
    try:
        yield
    finally:
        snapshot_module._write_stream = original
