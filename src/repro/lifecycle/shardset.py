"""Shard-set snapshots: one manifest + one snapshot file per shard.

A :class:`~repro.sharding.sharded.ShardedFilter` can already persist itself
through the ordinary single-file snapshot path (``filter.save(path)``: every
shard's sections land in one ``.rpro`` file under ``shard{i}/`` prefixes).
That is the right shape for small filters; for the paper's MetaHipMer-scale
use — shards sized near host memory, saved/restored by different ranks —
a *shard set* is the better layout:

* ``manifest.json`` — the sharded filter's ``snapshot_config`` plus the
  relative path and item count of each shard file (written last, atomically,
  so a torn save is detected by a missing/old manifest, mirroring the
  single-file format's write-then-rename discipline);
* ``shard0.rpro`` … ``shardN-1.rpro`` — each shard's table as an ordinary
  versioned snapshot of the *inner* class, checksummed like any other,
  loadable individually with :func:`repro.lifecycle.snapshot.load_filter`
  for repair or re-sharding-by-merge workflows;
* ``shard{i}.journal.npz`` — the parent-held key journal, present only for
  journaled (auto-resizing) TCF shard sets.

``save_shard_set`` / ``load_shard_set`` are deliberately *functions over
directories*, not a new binary format: every byte on disk is either the
existing snapshot format or JSON.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import SnapshotError
from ..gpusim.stats import StatsRecorder
from .snapshot import FORMAT_VERSION, _atomic_write, read_snapshot, save_filter

MANIFEST_NAME = "manifest.json"

#: Bumped when the manifest layout changes incompatibly.
SHARD_SET_VERSION = 1


def save_shard_set(filt, directory) -> Dict[str, object]:
    """Persist a sharded filter as a manifest plus per-shard snapshots.

    Returns the manifest dict.  ``directory`` is created if missing; the
    manifest is written last so a torn save never looks complete.
    """
    from ..sharding.sharded import ShardedFilter

    if not isinstance(filt, ShardedFilter):
        raise TypeError(f"save_shard_set needs a ShardedFilter, got {type(filt).__name__}")
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    filt._refresh_all()
    shards: List[Dict[str, object]] = []
    for i, twin in enumerate(filt._twins):
        shard_file = f"shard{i}.rpro"
        nbytes = save_filter(twin, os.path.join(directory, shard_file))
        entry: Dict[str, object] = {
            "file": shard_file,
            "n_items": int(twin.n_items),
            "nbytes": int(nbytes),
        }
        if filt._journals is not None:
            journal_file = f"shard{i}.journal.npz"
            from ..sharding.sharded import _journal_arrays

            journal_keys, journal_values = _journal_arrays(filt._journals[i])
            with open(os.path.join(directory, journal_file), "wb") as fh:
                np.savez(fh, keys=journal_keys, values=journal_values)
            entry["journal"] = journal_file
        shards.append(entry)
    manifest = {
        "format": "repro-shard-set",
        "version": SHARD_SET_VERSION,
        "snapshot_format_version": FORMAT_VERSION,
        "config": filt.snapshot_config(),
        "shards": shards,
    }
    _atomic_write(
        os.path.join(directory, MANIFEST_NAME),
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8") + b"\n",
    )
    return manifest


def read_manifest(directory) -> Dict[str, object]:
    """Read and validate a shard-set manifest."""
    path = os.path.join(os.fspath(directory), MANIFEST_NAME)
    try:
        with open(path, "rb") as fh:
            manifest = json.loads(fh.read().decode("utf-8"))
    except FileNotFoundError:
        raise SnapshotError(f"no shard-set manifest at {path}") from None
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"corrupt shard-set manifest at {path}: {exc}") from None
    if manifest.get("format") != "repro-shard-set":
        raise SnapshotError(f"{path} is not a shard-set manifest")
    if manifest.get("version") != SHARD_SET_VERSION:
        raise SnapshotError(
            f"shard-set version {manifest.get('version')} is not supported "
            f"(this build reads version {SHARD_SET_VERSION})"
        )
    if len(manifest.get("shards", ())) != manifest["config"]["n_shards"]:
        raise SnapshotError(
            f"manifest lists {len(manifest.get('shards', ()))} shard files for "
            f"{manifest['config']['n_shards']} shards"
        )
    return manifest


def load_shard_set(directory, recorder: Optional[StatsRecorder] = None):
    """Rebuild a :class:`ShardedFilter` from a shard-set directory.

    Each shard file is opened with the ordinary snapshot reader (magic,
    version and checksum enforced per shard) and restored straight into the
    rebuilt filter's shared segments.
    """
    from ..sharding.sharded import ShardedFilter, _journal_add

    directory = os.fspath(directory)
    manifest = read_manifest(directory)
    filt = ShardedFilter._from_snapshot_config(manifest["config"], recorder=recorder)
    try:
        for i, entry in enumerate(manifest["shards"]):
            header, state = read_snapshot(os.path.join(directory, entry["file"]))
            shard_class = f"{header['module']}.{header['class']}"
            expected = f"{filt._inner_class.__module__}.{filt._inner_class.__name__}"
            if shard_class != expected:
                raise SnapshotError(
                    f"shard {i} snapshot holds {shard_class}, expected {expected}"
                )
            filt._twins[i].restore_state(state)
            filt._twins[i].flush_shared()
            if filt._journals is not None:
                filt._journals[i] = {}
                if "journal" in entry:
                    with np.load(os.path.join(directory, entry["journal"])) as npz:
                        _journal_add(
                            filt._journals[i],
                            np.asarray(npz["keys"], dtype=np.uint64),
                            np.asarray(npz["values"], dtype=np.uint64),
                        )
    except BaseException:
        filt.close()
        raise
    return filt
