"""k-way filter merge: stream sorted fingerprint runs into a fresh table.

The quotient-filter families merge *exactly*: a CQF-layout table is a pure
function of its stored (fingerprint, count) multiset, so decoding each input
into its sorted fingerprint run, merging the runs with the same device
sort + reduce-by-key pipeline the map-reduce insert path uses
(:func:`repro.core.gqf.mapreduce.merge_sorted_runs`), and bulk-inserting the
result yields bit-for-bit the table a single filter fed the union would
have.  Counts are summed for counting filters; non-counting cores keep one
slot per duplicate, exactly as repeated inserts would.

The TCF family cannot re-derive keys from stored fingerprints, so two routes
exist:

* **journal merge** — when every input runs with ``auto_resize=True`` (and
  therefore carries a key journal), the union of journals is bulk-inserted
  into a fresh, larger auto-resizing filter.  Exact, and the only route that
  can grow the table.
* **same-geometry merge** — otherwise, all inputs must share one geometry;
  blocks merge slot-wise (a stored word stays valid in the same block index)
  and backing entries keep their bucket.  Raises
  :class:`~repro.core.exceptions.FilterFullError` if any block or bucket
  overflows, since spilled words cannot be re-routed without keys.

Duplicate values for one TCF key resolve by ``value_policy``: ``"all"``
keeps every stored copy (the default — what repeated inserts produce),
``"first"`` keeps the first in input order, ``"min"``/``"max"`` keep the
extreme value.  Policies apply within each storage class (per (block,
fingerprint) group in the table, per key in the backing store and journal);
a fingerprint shared by distinct keys cannot be split without the keys, the
same aliasing every fingerprint filter has.

Bloom-family filters merge by word-wise OR over identical geometries; the
summed ``n_items`` is an upper bound when the inputs share items (a Bloom
filter cannot count distinct insertions).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import AbstractFilter
from ..core.exceptions import FilterFullError, UnsupportedOperationError
from ..core.gqf.layout import QuotientFilterCore
from ..core.gqf.mapreduce import merge_sorted_runs
from ..core.tcf.backing import BackingTable
from ..core.tcf.config import EMPTY_SLOT, TOMBSTONE_SLOT
from ..core.tcf.lifecycle import TCFLifecycle
from ..gpusim.stats import StatsRecorder

VALUE_POLICIES = ("all", "first", "min", "max")


def merge(
    *filters: AbstractFilter,
    value_policy: str = "all",
    recorder: Optional[StatsRecorder] = None,
) -> AbstractFilter:
    """Merge ``filters`` into one fresh filter holding the union of items.

    All inputs must be instances of one filter class.  Returns a new filter
    (inputs are left untouched); the merge's sort/insert work is charged to
    the new filter's recorder, so merge cost is measurable.
    """
    if len(filters) < 2:
        raise ValueError("merge needs at least two filters")
    if value_policy not in VALUE_POLICIES:
        raise ValueError(f"value_policy must be one of {VALUE_POLICIES}")
    cls = type(filters[0])
    if any(type(f) is not cls for f in filters[1:]):
        names = sorted({type(f).__name__ for f in filters})
        raise ValueError(f"cannot merge different filter classes: {names}")
    if isinstance(filters[0], TCFLifecycle):
        return _merge_tcf(filters, value_policy, recorder)
    core = getattr(filters[0], "core", None)
    if isinstance(core, QuotientFilterCore):
        return _merge_gqf_family(filters, recorder)
    if hasattr(filters[0], "words") and hasattr(filters[0], "n_hashes"):
        return _merge_bloom_family(filters, recorder)
    raise UnsupportedOperationError(
        f"{cls.__name__} does not support merging"
    )


# ------------------------------------------------------------------ GQF family
def _merge_gqf_family(
    filters: Sequence[AbstractFilter], recorder: Optional[StatsRecorder]
) -> AbstractFilter:
    """Exact merge of quotient-filter-core filters via sorted-run k-way merge."""
    total_bits = {
        f.scheme.quotient_bits + f.scheme.remainder_bits for f in filters
    }
    if len(total_bits) != 1:
        raise ValueError(
            "quotient filters only merge when they share one total fingerprint "
            f"width (quotient + remainder bits); got {sorted(total_bits)}"
        )
    fingerprint_bits = total_bits.pop()
    runs: List[np.ndarray] = []
    counts: List[np.ndarray] = []
    for f in filters:
        quotients, remainders, item_counts = f.core.decoded_items()
        runs.append(f.scheme.join(quotients, remainders))
        counts.append(item_counts)

    rec = recorder if recorder is not None else StatsRecorder()
    unique, summed = merge_sorted_runs(runs, counts, rec)
    fps = unique.astype(np.uint64)

    config = filters[0].snapshot_config()
    quotient_bits = max(f.scheme.quotient_bits for f in filters)
    # Pre-size so the distinct union fits at a healthy load factor; keep a
    # grow-and-retry loop anyway (insert_sorted_batch is all-or-nothing, so
    # a failed attempt leaves nothing to clean up).
    while fps.size > 0.95 * (1 << quotient_bits):
        quotient_bits += 1
    while True:
        remainder_bits = fingerprint_bits - quotient_bits
        if remainder_bits < 1:
            raise FilterFullError(
                "merged filter cannot grow further: no remainder bits left "
                "to donate to the quotient",
                n_slots=1 << quotient_bits,
            )
        config["quotient_bits"] = quotient_bits
        config["remainder_bits"] = remainder_bits
        out = type(filters[0])._from_snapshot_config(config, recorder=rec)
        new_quotients = (fps >> np.uint64(remainder_bits)).astype(np.int64)
        new_remainders = fps & np.uint64((1 << remainder_bits) - 1)
        try:
            out.core.insert_sorted_batch(new_quotients, new_remainders, summed)
            return out
        except FilterFullError:
            quotient_bits += 1


# ------------------------------------------------------------------ TCF family
def _tcf_policy_winners(
    group_ids: np.ndarray, values: np.ndarray, policy: str
) -> np.ndarray:
    """Indices of the entries a dedup policy keeps (one per group)."""
    keep = []
    best: dict = {}
    for i, (group, value) in enumerate(zip(group_ids.tolist(), values.tolist())):
        if group not in best:
            best[group] = i
        elif policy == "min" and value < values[best[group]]:
            best[group] = i
        elif policy == "max" and value > values[best[group]]:
            best[group] = i
        # "first": the initial entry stands.
    keep = sorted(best.values())
    return np.asarray(keep, dtype=np.int64)


def _merge_tcf(
    filters: Sequence[AbstractFilter],
    value_policy: str,
    recorder: Optional[StatsRecorder],
) -> AbstractFilter:
    configs = {f.config for f in filters}
    if len(configs) != 1:
        raise ValueError("TCFs only merge when they share one TCFConfig")
    if all(f._journal is not None for f in filters):
        return _merge_tcf_journals(filters, value_policy, recorder)
    return _merge_tcf_tables(filters, value_policy, recorder)


def _merge_tcf_journals(
    filters: Sequence[AbstractFilter],
    value_policy: str,
    recorder: Optional[StatsRecorder],
) -> AbstractFilter:
    """Exact TCF merge through the key journals (all inputs auto-resizing)."""
    parts = [f._journal_arrays() for f in filters]
    keys = np.concatenate([p[0] for p in parts])
    values = np.concatenate([p[1] for p in parts])
    if value_policy != "all" and keys.size:
        keep = _tcf_policy_winners(keys, values, value_policy)
        keys, values = keys[keep], values[keep]
    out = type(filters[0])(
        sum(f.table.n_slots for f in filters),
        filters[0].config,
        recorder=recorder,
        auto_resize=True,
        auto_resize_at=filters[0].auto_resize_at,
    )
    if keys.size:
        out.bulk_insert(keys, values)
    return out


def _merge_tcf_tables(
    filters: Sequence[AbstractFilter],
    value_policy: str,
    recorder: Optional[StatsRecorder],
) -> AbstractFilter:
    """Same-geometry TCF merge: slot-wise blocks, bucket-wise backing."""
    geometries = {(f.table.n_blocks, f.backing.n_buckets) for f in filters}
    if len(geometries) != 1:
        raise ValueError(
            "TCFs without key journals only merge at one shared geometry; "
            "build them with auto_resize=True to merge across sizes"
        )
    first = filters[0]
    config = first.config
    out = type(first)(first.table.n_slots, config, recorder=recorder)
    block_size = config.block_size
    value_bits = config.value_bits
    out_rows = out.table.rows()
    dtype = out_rows.dtype
    live_slots = 0
    input_rows = [f.table.rows() for f in filters]
    for block in range(first.table.n_blocks):
        words_parts = []
        for rows in input_rows:
            row = rows[block]
            words_parts.append(row[(row != EMPTY_SLOT) & (row != TOMBSTONE_SLOT)])
        words = np.concatenate(words_parts)
        if value_policy != "all" and words.size:
            fingerprints = (words >> value_bits) if value_bits else words
            slot_values = (
                words & dtype.type((1 << value_bits) - 1)
                if value_bits
                else np.zeros(words.size, dtype=dtype)
            )
            keep = _tcf_policy_winners(fingerprints, slot_values, value_policy)
            words = words[keep]
        if words.size > block_size:
            raise FilterFullError(
                f"merged TCF block {block} overflows "
                f"({words.size} live words > {block_size} slots); stored "
                "fingerprints cannot be re-routed without keys — merge "
                "auto_resize filters instead",
                n_slots=first.table.n_slots,
                batch_offset=block,
            )
        # Rows stay ascending overall (the bulk TCF's searchsorted
        # invariant): empties sort in front of the live words.
        row = np.full(block_size, EMPTY_SLOT, dtype=dtype)
        row[block_size - words.size :] = np.sort(words)
        out_rows[block] = row
        live_slots += int(words.size)

    backing_items = _merge_backing(filters, out, value_policy)
    out._n_items = live_slots + backing_items
    out.backing._n_items = backing_items
    return out


def _merge_backing(
    filters: Sequence[AbstractFilter], out: AbstractFilter, value_policy: str
) -> int:
    """Bucket-preserving merge of the backing tables; returns live entries.

    An entry's bucket was on its key's probe path in the source and every
    earlier-round bucket was full there; merged buckets are supersets, so
    lookups still terminate correctly.  Policy-deduped losers become
    tombstones (not empties) to preserve the early-exit invariant.
    """
    width = BackingTable.BUCKET_WIDTH
    out_keys = out.backing.keys.peek()
    out_values = out.backing.values.peek()
    placed_flat: List[int] = []
    placed_key: List[int] = []
    placed_value: List[int] = []
    for f in filters:
        keys = f.backing.keys.peek()
        values = f.backing.values.peek()
        for index in np.flatnonzero((keys != EMPTY_SLOT) & (keys != TOMBSTONE_SLOT)):
            bucket = int(index) // width
            start = bucket * width
            window = out_keys[start : start + width]
            free = np.flatnonzero(
                (window == EMPTY_SLOT) | (window == TOMBSTONE_SLOT)
            )
            if free.size == 0:
                raise FilterFullError(
                    f"merged TCF backing bucket {bucket} overflows; merge "
                    "auto_resize filters instead",
                    n_slots=out.backing.n_slots,
                )
            flat = start + int(free[0])
            out_keys[flat] = keys[index]
            out_values[flat] = values[index]
            placed_flat.append(flat)
            placed_key.append(int(keys[index]))
            placed_value.append(int(values[index]))
    count = len(placed_flat)
    if value_policy != "all" and count:
        keep = set(
            _tcf_policy_winners(
                np.asarray(placed_key, dtype=np.uint64),
                np.asarray(placed_value, dtype=np.uint64),
                value_policy,
            ).tolist()
        )
        for i, flat in enumerate(placed_flat):
            if i not in keep:
                out_keys[flat] = np.uint64(TOMBSTONE_SLOT)
                out_values[flat] = np.uint64(0)
                count -= 1
    return count


# ---------------------------------------------------------------- Bloom family
def _merge_bloom_family(
    filters: Sequence[AbstractFilter], recorder: Optional[StatsRecorder]
) -> AbstractFilter:
    """Word-wise OR of identical-geometry Bloom-family filters.

    ``n_items`` sums the inputs' counts — an upper bound when they share
    items, the best a Bloom filter can report.
    """
    configs = {
        (f.snapshot_config()["n_hashes"], f.words.peek().shape) for f in filters
    }
    first = filters[0]
    if len({f.n_bits for f in filters}) != 1 or len(configs) != 1:
        raise ValueError("Bloom filters only merge at one shared geometry")
    out = type(first)._from_snapshot_config(first.snapshot_config(), recorder=recorder)
    merged = first.words.peek().copy()
    for f in filters[1:]:
        merged |= f.words.peek()
    state = {
        "words": merged,
        "scalars": np.array([sum(f.n_items for f in filters)], dtype=np.int64),
    }
    out.restore_state(state)
    return out
