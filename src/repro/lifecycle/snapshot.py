"""Versioned, checksummed binary snapshots for every filter class.

Layout of a snapshot file::

    prelude   32 bytes, little-endian: 8-byte magic, u32 format version,
              u32 flags (reserved), u64 header length, u64 CRC-32 of
              everything after the prelude.
    header    UTF-8 JSON: the filter's class/module, its
              ``snapshot_config()`` (constructor arguments for an empty
              twin), and one descriptor per state section
              ``{name, dtype, shape, offset, nbytes}`` with offsets
              relative to the start of the data region.
    data      the ``snapshot_state()`` arrays, each 64-byte aligned so the
              file can be ``np.memmap``-ed and every section viewed
              zero-copy at its native dtype.

The CRC covers the header and all section bytes, so truncated or corrupted
files fail loudly at load time with :class:`~repro.core.exceptions.
SnapshotError` instead of restoring a silently wrong filter.
"""

from __future__ import annotations

import importlib
import json
import os
import struct
import zlib
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..core.base import AbstractFilter, FilterState
from ..core.exceptions import SnapshotError
from ..gpusim.stats import StatsRecorder

#: File magic: identifies a repro filter snapshot.
MAGIC = b"RPROSNAP"
#: Bumped whenever the binary layout or any filter's section set changes
#: incompatibly; the golden-snapshot fixture test catches silent breaks.
FORMAT_VERSION = 1
#: Section alignment, chosen so memmap views are aligned for every dtype.
ALIGNMENT = 64

_PRELUDE = struct.Struct("<8sIIQQ")


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def save_filter(filt: AbstractFilter, path) -> int:
    """Write ``filt`` to ``path`` in the snapshot format; returns bytes written."""
    if not isinstance(filt, FilterState):
        raise SnapshotError(
            f"{type(filt).__name__} does not implement the FilterState protocol"
        )
    sections = []
    blobs = []
    offset = 0
    for name, array in filt.snapshot_state().items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        sections.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
        )
        blobs.append((offset, array.tobytes()))
        offset += int(array.nbytes)
    header = {
        "class": type(filt).__name__,
        "module": type(filt).__module__,
        "format_version": FORMAT_VERSION,
        "config": filt.snapshot_config(),
        "sections": sections,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PRELUDE.size + len(header_bytes))
    total = data_start + offset
    buf = bytearray(total)
    buf[_PRELUDE.size : _PRELUDE.size + len(header_bytes)] = header_bytes
    for section_offset, blob in blobs:
        start = data_start + section_offset
        buf[start : start + len(blob)] = blob
    checksum = zlib.crc32(bytes(buf[_PRELUDE.size :]))
    buf[: _PRELUDE.size] = _PRELUDE.pack(
        MAGIC, FORMAT_VERSION, 0, len(header_bytes), checksum
    )
    with open(os.fspath(path), "wb") as fh:
        fh.write(buf)
    return total


def read_snapshot(path) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Parse a snapshot into ``(header, {section name: array})``.

    The file is ``np.memmap``-ed copy-on-write and each section returned as
    a zero-copy view at its native dtype; mutating a view never touches the
    file.  Raises :class:`SnapshotError` on bad magic, unsupported versions,
    truncation, or checksum mismatch.
    """
    try:
        buf = np.memmap(os.fspath(path), dtype=np.uint8, mode="c")
    except ValueError as exc:  # zero-length file
        raise SnapshotError(f"not a snapshot (empty file): {path}") from exc
    if buf.size < _PRELUDE.size:
        raise SnapshotError(f"truncated snapshot (no prelude): {path}")
    magic, version, _flags, header_len, checksum = _PRELUDE.unpack(
        bytes(buf[: _PRELUDE.size])
    )
    if magic != MAGIC:
        raise SnapshotError(f"not a repro filter snapshot (bad magic): {path}")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if buf.size < _PRELUDE.size + header_len:
        raise SnapshotError(f"truncated snapshot (incomplete header): {path}")
    if zlib.crc32(buf[_PRELUDE.size :]) != checksum:
        raise SnapshotError(
            f"snapshot checksum mismatch (truncated or corrupted file): {path}"
        )
    try:
        header = json.loads(bytes(buf[_PRELUDE.size : _PRELUDE.size + header_len]))
    except ValueError as exc:
        raise SnapshotError(f"unreadable snapshot header: {path}") from exc
    data_start = _align(_PRELUDE.size + int(header_len))
    arrays: Dict[str, np.ndarray] = {}
    for section in header["sections"]:
        start = data_start + int(section["offset"])
        end = start + int(section["nbytes"])
        if end > buf.size:
            raise SnapshotError(
                f"truncated snapshot (section {section['name']!r} incomplete): {path}"
            )
        arrays[section["name"]] = (
            buf[start:end].view(np.dtype(section["dtype"])).reshape(section["shape"])
        )
    return header, arrays


def _resolve_class(module: str, name: str) -> Type[AbstractFilter]:
    if not module.startswith("repro."):
        raise SnapshotError(
            f"snapshot names a class outside the repro package: {module}.{name}"
        )
    try:
        cls = getattr(importlib.import_module(module), name)
    except (ImportError, AttributeError) as exc:
        raise SnapshotError(f"snapshot names an unknown class {module}.{name}") from exc
    if not (isinstance(cls, type) and issubclass(cls, AbstractFilter)):
        raise SnapshotError(f"{module}.{name} is not a filter class")
    return cls


def load_filter(
    path,
    expected_class: Optional[Type[AbstractFilter]] = None,
    recorder: Optional[StatsRecorder] = None,
) -> AbstractFilter:
    """Restore the filter stored at ``path``.

    ``expected_class`` (set when loading through a concrete class's
    ``.load``) guards against restoring a snapshot of a different filter
    type; ``recorder`` attaches a stats recorder to the restored filter
    (a fresh one is created otherwise).
    """
    header, arrays = read_snapshot(path)
    cls = _resolve_class(header["module"], header["class"])
    if expected_class is not None and not issubclass(cls, expected_class):
        raise SnapshotError(
            f"snapshot holds a {cls.__name__}, not a {expected_class.__name__}"
        )
    filt = cls._from_snapshot_config(header["config"], recorder=recorder)
    filt.restore_state(arrays)
    return filt
