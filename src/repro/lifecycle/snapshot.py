"""Versioned, checksummed binary snapshots for every filter class.

Layout of a snapshot file::

    prelude   32 bytes, little-endian: 8-byte magic, u32 format version,
              u32 flags (reserved), u64 header length, u64 CRC-32 of
              everything after the prelude.
    header    UTF-8 JSON: the filter's class/module, its
              ``snapshot_config()`` (constructor arguments for an empty
              twin), and one descriptor per state section
              ``{name, dtype, shape, offset, nbytes}`` with offsets
              relative to the start of the data region.
    data      the ``snapshot_state()`` arrays, each 64-byte aligned so the
              file can be ``np.memmap``-ed and every section viewed
              zero-copy at its native dtype.

The CRC covers the header and all section bytes, so truncated or corrupted
files fail loudly at load time with :class:`~repro.core.exceptions.
SnapshotError` instead of restoring a silently wrong filter.
"""

from __future__ import annotations

import importlib
import json
import os
import struct
import tempfile
import zlib
from typing import Dict, Optional, Tuple, Type

import numpy as np

from ..core.base import AbstractFilter, FilterState
from ..core.exceptions import SnapshotError
from ..gpusim.stats import StatsRecorder

#: File magic: identifies a repro filter snapshot.
MAGIC = b"RPROSNAP"
#: Bumped whenever the binary layout or any filter's section set changes
#: incompatibly; the golden-snapshot fixture test catches silent breaks.
FORMAT_VERSION = 1
#: Section alignment, chosen so memmap views are aligned for every dtype.
ALIGNMENT = 64

_PRELUDE = struct.Struct("<8sIIQQ")


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _write_stream(fh, data: bytes) -> None:
    """Single seam through which snapshot bytes reach the file.

    Exists so the fault-injection harness (:func:`repro.service.faults.
    torn_snapshot_writes`) can kill a save mid-stream and prove the atomic
    rename protects the previous snapshot.
    """
    fh.write(data)


def _atomic_write(path, data: bytes) -> None:
    """Write ``data`` to ``path`` crash-safely.

    The bytes go to a same-directory temp file (so the final ``os.replace``
    is a same-filesystem atomic rename), are fsynced, and only then moved
    onto the destination — an interrupted save can never leave a torn
    snapshot behind, only the old file or the complete new one.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            _write_stream(fh, data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def save_filter(filt: AbstractFilter, path) -> int:
    """Write ``filt`` to ``path`` in the snapshot format; returns bytes written.

    The write is crash-safe: bytes land in a same-directory temp file that is
    atomically renamed onto ``path``, so an interrupted save leaves any
    previous snapshot at ``path`` intact.
    """
    if not isinstance(filt, FilterState):
        raise SnapshotError(
            f"{type(filt).__name__} does not implement the FilterState protocol"
        )
    sections = []
    blobs = []
    offset = 0
    for name, array in filt.snapshot_state().items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        sections.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
        )
        blobs.append((offset, array.tobytes()))
        offset += int(array.nbytes)
    header = {
        "class": type(filt).__name__,
        "module": type(filt).__module__,
        "format_version": FORMAT_VERSION,
        "config": filt.snapshot_config(),
        "sections": sections,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(_PRELUDE.size + len(header_bytes))
    total = data_start + offset
    buf = bytearray(total)
    buf[_PRELUDE.size : _PRELUDE.size + len(header_bytes)] = header_bytes
    for section_offset, blob in blobs:
        start = data_start + section_offset
        buf[start : start + len(blob)] = blob
    checksum = zlib.crc32(bytes(buf[_PRELUDE.size :]))
    buf[: _PRELUDE.size] = _PRELUDE.pack(
        MAGIC, FORMAT_VERSION, 0, len(header_bytes), checksum
    )
    _atomic_write(path, bytes(buf))
    return total


def read_snapshot(path) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Parse a snapshot into ``(header, {section name: array})``.

    The file is ``np.memmap``-ed copy-on-write and each section returned as
    a zero-copy view at its native dtype; mutating a view never touches the
    file.  Raises :class:`SnapshotError` on bad magic, unsupported versions,
    truncation, or checksum mismatch.
    """
    try:
        buf = np.memmap(os.fspath(path), dtype=np.uint8, mode="c")
    except ValueError as exc:  # zero-length file
        raise SnapshotError(f"not a snapshot (empty file): {path}") from exc
    if buf.size < _PRELUDE.size:
        raise SnapshotError(f"truncated snapshot (no prelude): {path}")
    magic, version, _flags, header_len, checksum = _PRELUDE.unpack(
        bytes(buf[: _PRELUDE.size])
    )
    if magic != MAGIC:
        raise SnapshotError(f"not a repro filter snapshot (bad magic): {path}")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if buf.size < _PRELUDE.size + header_len:
        raise SnapshotError(f"truncated snapshot (incomplete header): {path}")
    if zlib.crc32(buf[_PRELUDE.size :]) != checksum:
        raise SnapshotError(
            f"snapshot checksum mismatch (truncated or corrupted file): {path}"
        )
    try:
        header = json.loads(bytes(buf[_PRELUDE.size : _PRELUDE.size + header_len]))
    except ValueError as exc:
        raise SnapshotError(f"unreadable snapshot header: {path}") from exc
    data_start = _align(_PRELUDE.size + int(header_len))
    arrays: Dict[str, np.ndarray] = {}
    sections = header.get("sections")
    if not isinstance(sections, list):
        raise SnapshotError(f"snapshot header carries no section list: {path}")
    for section in sections:
        arrays[section["name"]] = _view_section(buf, data_start, section, path)
    return header, arrays


def _view_section(
    buf: np.ndarray, data_start: int, section: dict, path
) -> np.ndarray:
    """Validate one header section descriptor and return its memmap view.

    Every geometry claim in the descriptor — offset, byte count, dtype and
    shape — is checked against the actual file size *before* a view is
    created, so a crafted or truncated header raises :class:`SnapshotError`
    instead of a raw ``ValueError`` or an out-of-bounds view.
    """
    name = section.get("name", "<unnamed>")
    try:
        offset = int(section["offset"])
        nbytes = int(section["nbytes"])
        dtype = np.dtype(section["dtype"])
        shape = tuple(int(dim) for dim in section["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"malformed snapshot section {name!r} descriptor: {path}"
        ) from exc
    if offset < 0 or nbytes < 0 or any(dim < 0 for dim in shape):
        raise SnapshotError(
            f"snapshot section {name!r} has negative geometry: {path}"
        )
    n_elements = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if n_elements * dtype.itemsize != nbytes:
        raise SnapshotError(
            f"snapshot section {name!r} claims {nbytes} bytes but its "
            f"dtype/shape describe {n_elements * dtype.itemsize}: {path}"
        )
    start = data_start + offset
    end = start + nbytes
    if end > buf.size:
        raise SnapshotError(
            f"truncated snapshot (section {name!r} incomplete): {path}"
        )
    try:
        return buf[start:end].view(dtype).reshape(shape)
    except ValueError as exc:
        raise SnapshotError(
            f"snapshot section {name!r} cannot be viewed as "
            f"{dtype.str}{list(shape)}: {path}"
        ) from exc


def _resolve_class(module: str, name: str) -> Type[AbstractFilter]:
    if not module.startswith("repro."):
        raise SnapshotError(
            f"snapshot names a class outside the repro package: {module}.{name}"
        )
    try:
        cls = getattr(importlib.import_module(module), name)
    except (ImportError, AttributeError) as exc:
        raise SnapshotError(f"snapshot names an unknown class {module}.{name}") from exc
    if not (isinstance(cls, type) and issubclass(cls, AbstractFilter)):
        raise SnapshotError(f"{module}.{name} is not a filter class")
    return cls


def load_filter(
    path,
    expected_class: Optional[Type[AbstractFilter]] = None,
    recorder: Optional[StatsRecorder] = None,
) -> AbstractFilter:
    """Restore the filter stored at ``path``.

    ``expected_class`` (set when loading through a concrete class's
    ``.load``) guards against restoring a snapshot of a different filter
    type; ``recorder`` attaches a stats recorder to the restored filter
    (a fresh one is created otherwise).
    """
    header, arrays = read_snapshot(path)
    cls = _resolve_class(header["module"], header["class"])
    if expected_class is not None and not issubclass(cls, expected_class):
        raise SnapshotError(
            f"snapshot holds a {cls.__name__}, not a {expected_class.__name__}"
        )
    filt = cls._from_snapshot_config(header["config"], recorder=recorder)
    filt.restore_state(arrays)
    return filt
