"""Filter lifecycle layer: snapshots, k-way merge, and online resize.

The paper's headline application (the MetaHipMer k-mer pipeline) assumes
filters that outlive a single kernel launch: they are saved to disk, shipped
between nodes, merged, and grown.  This package provides those primitives on
top of the core filters:

* :mod:`repro.lifecycle.snapshot` — a versioned, checksummed binary snapshot
  format (``save_filter``/``load_filter``), surfaced as ``filter.save(path)``
  / ``FilterClass.load(path)`` on every filter;
* :mod:`repro.lifecycle.merge` — ``merge(*filters)`` streaming k sorted
  fingerprint runs into a fresh table (counts summed for counting filters,
  values resolved by policy for the TCF);
* :mod:`repro.lifecycle.resize` — ``expand(filter)`` plus the machinery
  behind the filters' ``auto_resize=True`` mode (quotient extension for the
  GQF family, double-and-rehash for the TCF family).
"""

from .merge import merge
from .resize import expand
from .shardset import load_shard_set, read_manifest, save_shard_set
from .snapshot import (
    FORMAT_VERSION,
    load_filter,
    read_snapshot,
    save_filter,
)

__all__ = [
    "FORMAT_VERSION",
    "expand",
    "load_filter",
    "load_shard_set",
    "merge",
    "read_manifest",
    "read_snapshot",
    "save_filter",
    "save_shard_set",
]
