"""Online resize entry point: grow any resizable filter by one policy.

Two growth mechanisms exist in the repo, matching the two filter families:

* **Quotient extension** (GQF family, CPU CQF): the total fingerprint width
  ``p = q + r`` is fixed, so bits move from the remainder to the quotient —
  every stored ``p``-bit fingerprint re-splits exactly under the wider
  quotient and the table doubles per donated bit.  Exact, no keys needed.
* **Double-and-rehash** (TCF family): the potc fingerprint derivation is not
  invertible, so growth replays the key journal kept by auto-resizing TCFs
  into a doubled table.  Filters built without ``auto_resize=True`` carry no
  journal and cannot grow.

:func:`expand` dispatches between them.  The SQF/RSQF baselines are excluded
by construction (their packed layouts support only 5- or 13-bit remainders,
so quotient extension would leave an unsupported width — the same rigidity
the paper calls out), as are the Bloom baselines (a bit array's hash indices
are modulo its size; there is no lossless rehash without the keys).

Auto-resize is the same machinery triggered from inside ``insert`` /
``bulk_insert`` at a configurable load factor; ``expand`` is the explicit
form for callers that want to schedule growth themselves.
"""

from __future__ import annotations

from ..core.base import AbstractFilter
from ..core.exceptions import CapacityLimitError, UnsupportedOperationError
from ..core.gqf.layout import QuotientFilterCore
from ..core.tcf.lifecycle import TCFLifecycle


def expand(filt: AbstractFilter, extra_quotient_bits: int = 1) -> AbstractFilter:
    """Grow ``filt``, returning the expanded filter.

    GQF-family filters return a **new** filter with ``2**extra_quotient_bits``
    times the slots (the input is left untouched); TCF-family filters grow
    **in place** through their key journal (``extra_quotient_bits`` counts
    doublings) and return the same object.  Raises
    :class:`~repro.core.exceptions.UnsupportedOperationError` for filters
    whose structure cannot grow.
    """
    if extra_quotient_bits < 1:
        raise ValueError("expand must grow the filter")
    if isinstance(filt, TCFLifecycle):
        if not filt._can_grow():
            raise UnsupportedOperationError(
                f"{type(filt).__name__} keeps no key journal (built without "
                "auto_resize=True): its stored fingerprints cannot be "
                "re-derived, so the table cannot be rehashed larger"
            )
        for _ in range(extra_quotient_bits):
            filt._grow()
        return filt
    if hasattr(filt, "resized"):
        return filt.resized(extra_quotient_bits)
    core = getattr(filt, "core", None)
    if isinstance(core, QuotientFilterCore):
        return _expand_core_filter(filt, extra_quotient_bits)
    raise UnsupportedOperationError(
        f"{type(filt).__name__} does not support resizing"
    )


def _expand_core_filter(
    filt: AbstractFilter, extra_quotient_bits: int
) -> AbstractFilter:
    """Generic quotient extension for core-backed filters without resized().

    Works for any filter whose ``snapshot_config`` carries ``quotient_bits``
    and ``remainder_bits`` and whose constructor accepts the widened pair;
    the SQF/RSQF constructors reject remainder widths their packing cannot
    hold, which is exactly the rigidity that makes them non-resizable.
    """
    config = filt.snapshot_config()
    if "quotient_bits" not in config or "remainder_bits" not in config:
        raise UnsupportedOperationError(
            f"{type(filt).__name__} does not expose a quotient geometry to extend"
        )
    if config["remainder_bits"] - extra_quotient_bits < 1:
        raise ValueError("not enough remainder bits to donate to the quotient")
    config["quotient_bits"] += extra_quotient_bits
    config["remainder_bits"] -= extra_quotient_bits
    try:
        out = type(filt)._from_snapshot_config(config, recorder=filt.recorder)
    except CapacityLimitError as exc:
        # SQF/RSQF packings hold only fixed remainder widths, so donating
        # bits to the quotient leaves a width they cannot store.
        raise UnsupportedOperationError(
            f"{type(filt).__name__} cannot be resized: its packed layout "
            f"does not support a {config['remainder_bits']}-bit remainder "
            f"({exc})"
        ) from exc
    out.core = filt.core.extended(extra_quotient_bits, name=filt.core.slots.name)
    return out
