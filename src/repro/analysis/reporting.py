"""Plain-text table/figure formatting for the benchmark harness.

The benchmarks print their results in the same rows/series the paper
reports.  Since the environment has no plotting stack, "figures" are rendered
as aligned text tables (one row per filter size, one column per filter),
which is sufficient to compare shapes and crossovers against the paper.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from .throughput import BenchmarkPoint


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "-"
        if isinstance(cell, float):
            return float_format.format(cell)
        if cell is None:
            return "-"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_figure_series(
    results: Mapping[str, List[BenchmarkPoint]],
    phase: str,
    title: str,
    unit: str = "B ops/s",
    scale: float = 1e-9,
) -> str:
    """Render one sub-figure (throughput vs size, one column per filter)."""
    all_sizes = sorted({p.lg_capacity for series in results.values() for p in series})
    filter_keys = list(results.keys())
    headers = ["filter size (log2)"] + [
        (results[k][0].display_name if results[k] else k) for k in filter_keys
    ]
    rows: List[List[object]] = []
    for lg in all_sizes:
        row: List[object] = [lg]
        for key in filter_keys:
            match = next((p for p in results[key] if p.lg_capacity == lg), None)
            if match is None or phase not in match.estimates:
                row.append(None)
            else:
                row.append(match.estimates[phase].throughput_ops_per_s * scale)
        rows.append(row)
    return format_table(headers, rows, title=f"{title} [{unit}]")


def format_boolean_matrix(
    matrix: Mapping[str, Mapping[str, bool]],
    columns: Sequence[str],
    title: str,
) -> str:
    """Render a capability matrix (Table 1)."""
    headers = ["filter"] + list(columns)
    rows = [[name] + [bool(row[c]) for c in columns] for name, row in matrix.items()]
    return format_table(headers, rows, title=title)


def format_dict_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows with a fixed column order."""
    table_rows = [[row.get(c) for c in columns] for row in rows]
    return format_table(columns, table_rows, float_format=float_format, title=title)
