"""Throughput benchmark harness (Figures 3-6, Tables 4-5).

The harness separates *functional simulation* from *performance estimation*:

1. a filter is built at a reduced **simulation scale** (a few thousand
   slots), filled to the paper's recommended load factor and exercised for
   each phase (inserts, positive queries, random queries, deletes) while the
   stats recorder counts hardware events;
2. the per-operation event averages are fed to
   :func:`repro.gpusim.perfmodel.estimate_time` together with the **nominal**
   experiment parameters (filter size 2^22…2^30, item count, structure
   footprint, exposed parallelism) and the target
   :class:`~repro.gpusim.device.GPUSpec`.

This sampling approach keeps the pure-Python functional simulation tractable
while preserving the performance-relevant behaviour: per-operation event
counts are load-factor-dependent, not size-dependent, whereas L2 residency
and thread saturation depend on the *nominal* size and are handled by the
perf model.  The one paper experiment where the simulation scale is raised is
the SQF/RSQF 2^26 capacity cliff, which is a hard limit enforced functionally
(oversized configurations raise ``CapacityLimitError`` and the sweep simply
stops, reproducing the truncated curves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.base import AbstractFilter
from ..core.exceptions import FilterFullError
from ..gpusim.device import GPUSpec
from ..gpusim.perfmodel import PerfEstimate, estimate_time
from ..gpusim.stats import KernelStats, StatsRecorder
from ..workloads.generators import uniform_workload

#: Default simulation scale: log2 of the number of slots actually built.
DEFAULT_SIM_LG = 12
#: Default number of queries simulated per phase.
DEFAULT_SIM_QUERIES = 2048

#: Phases measured for the point/bulk API benchmarks.
PHASE_INSERT = "insert"
PHASE_POSITIVE = "positive_query"
PHASE_RANDOM = "random_query"
PHASE_DELETE = "delete"
STANDARD_PHASES = (PHASE_INSERT, PHASE_POSITIVE, PHASE_RANDOM)


@dataclass
class FilterAdapter:
    """Uniform driver interface for one filter in the benchmark harness.

    Attributes
    ----------
    key:
        Short machine-readable identifier ("tcf", "gqf", "bf", ...).
    display_name:
        Name used in tables and figures.
    api:
        "point" or "bulk" — controls which benchmark family includes it and
        whether phases run through the point loop or the bulk entry points.
    build:
        ``build(capacity, recorder) -> AbstractFilter`` at simulation scale.
    nominal_bytes:
        ``nominal_bytes(capacity) -> int`` footprint at nominal scale.
    active_threads:
        ``active_threads(phase, nominal_ops, nominal_capacity) -> int``.
    load_factor:
        Fill target for the insert phase.
    lock_serialization:
        Optional ``(phase, nominal_ops, nominal_capacity) -> float`` giving
        the average number of threads contending per lock (point GQF).
    warp_cycles:
        Optional ``(phase) -> float`` returning the per-operation warp
        scheduler cycles (cooperative-group block scans; see
        :func:`repro.gpusim.perfmodel.cg_warp_cycles`).
    max_lg_capacity:
        Implementation limit on the filter size exponent (SQF/RSQF: 26).
    supports_delete:
        Whether the delete phase can be measured.
    configure:
        Optional hook called with the built filter and the nominal capacity
        (used e.g. to set the point GQF's simulated concurrency).
    """

    key: str
    display_name: str
    api: str
    build: Callable[[int, StatsRecorder], AbstractFilter]
    nominal_bytes: Callable[[int], int]
    active_threads: Callable[[str, int, int], int]
    load_factor: float = 0.9
    lock_serialization: Optional[Callable[[str, int, int], float]] = None
    warp_cycles: Optional[Callable[[str], float]] = None
    max_lg_capacity: Optional[int] = None
    supports_delete: bool = False
    configure: Optional[Callable[[AbstractFilter, int], None]] = None


@dataclass
class PhaseMeasurement:
    """Raw functional-simulation result for one phase."""

    phase: str
    stats: KernelStats
    simulated_ops: int


@dataclass
class BenchmarkPoint:
    """One (filter, device, size) benchmark result.

    ``estimates`` maps phase name to a :class:`PerfEstimate`; ``meta`` holds
    bookkeeping such as the measured load factor and simulation scale.
    """

    filter_key: str
    display_name: str
    device: str
    lg_capacity: int
    estimates: Dict[str, PerfEstimate] = field(default_factory=dict)
    meta: Dict[str, float] = field(default_factory=dict)

    def throughput_bops(self, phase: str) -> float:
        """Billions of operations per second for a phase (0 if missing)."""
        est = self.estimates.get(phase)
        return est.throughput_bops if est else 0.0


# --------------------------------------------------------------------------
# functional phase measurement
# --------------------------------------------------------------------------
def _fill_filter(
    filt: AbstractFilter,
    keys: np.ndarray,
    recorder: StatsRecorder,
) -> int:
    """Insert keys (phase-scoped) until exhaustion or the filter fills.

    Point and bulk filters alike are driven through their batched entry
    points: the point filters' ``bulk_*`` methods are point-style kernels
    (one cooperative group per item) whose simulated hardware events are
    calibrated exactly to the per-item loop, so the measured per-operation
    costs are unchanged while the functional simulation runs vectorised.
    """
    inserted = 0
    with recorder.section(PHASE_INSERT) as stats:
        try:
            inserted = filt.bulk_insert(keys)
        except FilterFullError:
            # The batched paths fill the structure before raising; distinct
            # stored items is the best available insert count here.
            inserted = int(filt.n_items)
        stats.operations += inserted
    return inserted


def _run_queries(
    filt: AbstractFilter,
    keys: np.ndarray,
    phase: str,
    recorder: StatsRecorder,
) -> int:
    with recorder.section(phase) as stats:
        filt.bulk_query(keys)
        stats.operations += int(keys.size)
    return int(keys.size)


def _run_deletes(
    filt: AbstractFilter,
    keys: np.ndarray,
    recorder: StatsRecorder,
) -> int:
    with recorder.section(PHASE_DELETE) as stats:
        removed = filt.bulk_delete(keys)
        stats.operations += int(keys.size)
    return removed


def measure_phases(
    adapter: FilterAdapter,
    sim_capacity: int,
    phases: Sequence[str] = STANDARD_PHASES,
    n_queries: int = DEFAULT_SIM_QUERIES,
    seed: int = 0xC0FFEE,
) -> Dict[str, PhaseMeasurement]:
    """Run the functional simulation of every requested phase.

    Returns per-phase event counts.  The filter is filled once (the insert
    phase) and then queried/deleted at full load, mirroring the paper's
    microbenchmark methodology.
    """
    recorder = StatsRecorder()
    filt = adapter.build(sim_capacity, recorder)
    n_insert = max(64, int(adapter.load_factor * sim_capacity))
    workload = uniform_workload(n_insert, min(n_queries, n_insert), seed)

    inserted = _fill_filter(filt, workload.insert_keys, recorder)
    measurements: Dict[str, PhaseMeasurement] = {}
    measurements[PHASE_INSERT] = PhaseMeasurement(
        PHASE_INSERT, recorder.section_stats(PHASE_INSERT).copy(), max(1, inserted)
    )

    if PHASE_POSITIVE in phases:
        n = _run_queries(filt, workload.positive_queries, PHASE_POSITIVE, recorder)
        measurements[PHASE_POSITIVE] = PhaseMeasurement(
            PHASE_POSITIVE, recorder.section_stats(PHASE_POSITIVE).copy(), n
        )
    if PHASE_RANDOM in phases:
        n = _run_queries(filt, workload.random_queries, PHASE_RANDOM, recorder)
        measurements[PHASE_RANDOM] = PhaseMeasurement(
            PHASE_RANDOM, recorder.section_stats(PHASE_RANDOM).copy(), n
        )
    if PHASE_DELETE in phases and adapter.supports_delete:
        delete_keys = workload.insert_keys[:inserted][: n_queries]
        n = _run_deletes(filt, delete_keys, recorder)
        measurements[PHASE_DELETE] = PhaseMeasurement(
            PHASE_DELETE, recorder.section_stats(PHASE_DELETE).copy(), max(1, int(delete_keys.size))
        )

    # Record the achieved load factor for reporting.
    measurements[PHASE_INSERT].stats.operations = max(1, inserted)
    return measurements


# --------------------------------------------------------------------------
# perf-model evaluation
# --------------------------------------------------------------------------
def evaluate_point(
    adapter: FilterAdapter,
    measurements: Dict[str, PhaseMeasurement],
    device: GPUSpec,
    lg_capacity: int,
) -> BenchmarkPoint:
    """Convert phase measurements into nominal-scale throughput estimates."""
    nominal_capacity = 1 << lg_capacity
    nominal_ops = max(1, int(adapter.load_factor * nominal_capacity))
    structure_bytes = adapter.nominal_bytes(nominal_capacity)
    point = BenchmarkPoint(
        filter_key=adapter.key,
        display_name=adapter.display_name,
        device=device.name,
        lg_capacity=lg_capacity,
        meta={"structure_bytes": float(structure_bytes)},
    )
    for phase, measurement in measurements.items():
        phase_ops = nominal_ops
        threads = adapter.active_threads(phase, phase_ops, nominal_capacity)
        serialization = (
            adapter.lock_serialization(phase, phase_ops, nominal_capacity)
            if adapter.lock_serialization
            else 0.0
        )
        warp_cycles = adapter.warp_cycles(phase) if adapter.warp_cycles else 0.0
        estimate = estimate_time(
            measurement.stats,
            n_ops=phase_ops,
            device=device,
            structure_bytes=structure_bytes,
            active_threads=threads,
            simulated_ops=measurement.simulated_ops,
            lock_serialization=serialization,
            warp_cycles_per_op=warp_cycles,
        )
        point.estimates[phase] = estimate
    return point


def run_size_sweep(
    adapter: FilterAdapter,
    device: GPUSpec,
    lg_capacities: Iterable[int],
    phases: Sequence[str] = STANDARD_PHASES,
    sim_lg: int = DEFAULT_SIM_LG,
    n_queries: int = DEFAULT_SIM_QUERIES,
    seed: int = 0xC0FFEE,
) -> List[BenchmarkPoint]:
    """Figure 3/4 style sweep: throughput vs filter size for one filter.

    The functional simulation runs once (at ``2**sim_lg`` capacity) and the
    perf model is evaluated for every nominal size; sizes beyond the filter's
    implementation limit (SQF/RSQF) are skipped, reproducing the truncated
    curves in the paper's figures.
    """
    lg_list = sorted(set(int(x) for x in lg_capacities))
    sim_capacity = 1 << min(sim_lg, min(lg_list))
    measurements = measure_phases(adapter, sim_capacity, phases, n_queries, seed)
    results: List[BenchmarkPoint] = []
    for lg in lg_list:
        if adapter.max_lg_capacity is not None and lg > adapter.max_lg_capacity:
            continue
        results.append(evaluate_point(adapter, measurements, device, lg))
    return results


def sweep_many(
    adapters: Sequence[FilterAdapter],
    device: GPUSpec,
    lg_capacities: Iterable[int],
    phases: Sequence[str] = STANDARD_PHASES,
    sim_lg: int = DEFAULT_SIM_LG,
    n_queries: int = DEFAULT_SIM_QUERIES,
) -> Dict[str, List[BenchmarkPoint]]:
    """Run :func:`run_size_sweep` for several filters; keyed by adapter key."""
    return {
        adapter.key: run_size_sweep(adapter, device, lg_capacities, phases, sim_lg, n_queries)
        for adapter in adapters
    }


def single_point(
    adapter: FilterAdapter,
    device: GPUSpec,
    lg_capacity: int,
    phases: Sequence[str] = STANDARD_PHASES,
    sim_lg: int = DEFAULT_SIM_LG,
    n_queries: int = DEFAULT_SIM_QUERIES,
) -> BenchmarkPoint:
    """Convenience wrapper: one filter at one nominal size (Table 4)."""
    results = run_size_sweep(
        adapter, device, [lg_capacity], phases, sim_lg, n_queries
    )
    if not results:
        raise ValueError(
            f"{adapter.display_name} cannot be sized to 2^{lg_capacity}"
        )
    return results[0]
