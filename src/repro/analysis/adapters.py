"""Standard :class:`~repro.analysis.throughput.FilterAdapter` definitions.

One adapter per filter/API combination appearing in the paper's evaluation:

* point API (Figure 3): TCF, GQF, BF, BBF;
* bulk API (Figure 4): bulk TCF, bulk GQF, SQF, RSQF;
* deletions (Figure 6): TCF, bulk GQF, SQF;
* CPU comparison (Table 4): CPU CQF, CPU VQF (plus the GPU point filters).

Each adapter knows how to build its filter at simulation scale, how big the
nominal structure would be, and how many device threads its kernels expose —
the three ingredients the performance model needs beyond the measured
per-operation hardware events.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..baselines import (
    BlockedBloomFilter,
    BloomFilter,
    CPUCountingQuotientFilter,
    CPUVectorQuotientFilter,
    RankSelectQuotientFilter,
    StandardQuotientFilter,
)
from ..core.tcf import BULK_TCF_DEFAULT, POINT_TCF_DEFAULT, BulkTCF, PointTCF, TCFConfig
from ..core.gqf import BulkGQF, PointGQF
from ..core.gqf.regions import DEFAULT_REGION_SLOTS
from ..gpusim.stats import StatsRecorder
from .throughput import PHASE_INSERT, PHASE_DELETE, FilterAdapter

#: Region size used when building GQF instances at simulation scale; the
#: nominal-thread computations below always use the paper's 8192-slot regions.
SIM_REGION_SLOTS = 1024


# --------------------------------------------------------------------------
# point-API adapters (Figure 3)
# --------------------------------------------------------------------------
def point_tcf_adapter(config: TCFConfig = POINT_TCF_DEFAULT) -> FilterAdapter:
    """Point TCF: one cooperative group per item."""
    from ..gpusim.perfmodel import cg_warp_cycles

    def build(capacity: int, recorder: StatsRecorder) -> PointTCF:
        return PointTCF.for_capacity(capacity, config, recorder)

    def nominal_bytes(capacity: int) -> int:
        n_slots = int(np.ceil(capacity / config.max_load_factor))
        return PointTCF.nominal_nbytes(n_slots, config)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        return n_ops * config.cg_size

    def warp_cycles(phase: str) -> float:
        # Inserts mostly shortcut to the primary block; queries probe up to
        # two blocks (plus the backing bucket for misses).
        blocks_probed = {PHASE_INSERT: 1.25, PHASE_DELETE: 1.5}.get(phase, 1.75)
        return cg_warp_cycles(config.block_size, config.cg_size, blocks_probed)

    return FilterAdapter(
        key=f"tcf-{config.label}-cg{config.cg_size}" if config is not POINT_TCF_DEFAULT else "tcf",
        display_name="TCF",
        api="point",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=config.max_load_factor,
        warp_cycles=warp_cycles,
        supports_delete=True,
    )


def point_gqf_adapter(remainder_bits: int = 8) -> FilterAdapter:
    """Point GQF: one thread per item, two region locks per insert."""

    def build(capacity: int, recorder: StatsRecorder) -> PointGQF:
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, capacity)))))
        filt = PointGQF(quotient_bits, remainder_bits, SIM_REGION_SLOTS, recorder)
        # Lock contention is charged analytically (lock_serialization below)
        # at nominal scale, so the functional simulation runs uncontended.
        filt.set_concurrency(0)
        return filt

    def nominal_bytes(capacity: int) -> int:
        return PointGQF.nominal_nbytes(capacity, remainder_bits)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        return n_ops

    def lock_serialization(phase: str, n_ops: int, capacity: int) -> float:
        if phase not in (PHASE_INSERT, PHASE_DELETE):
            return 0.0
        n_regions = max(1, capacity // DEFAULT_REGION_SLOTS)
        concurrent = min(n_ops, 82_000)
        return min(64.0, concurrent / n_regions)

    def warp_cycles(phase: str) -> float:
        # Per-thread issue work: metadata rank/select plus the run scan for
        # queries; add the Robin-Hood shift loop and locking for inserts.
        return 120.0 if phase in (PHASE_INSERT, PHASE_DELETE) else 60.0

    return FilterAdapter(
        key="gqf",
        display_name="GQF",
        api="point",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.85,
        lock_serialization=lock_serialization,
        warp_cycles=warp_cycles,
        supports_delete=True,
    )


def bloom_adapter() -> FilterAdapter:
    """GPU Bloom filter: one thread per item, k random cache lines per op."""

    def build(capacity: int, recorder: StatsRecorder) -> BloomFilter:
        return BloomFilter.for_capacity(capacity, recorder=recorder)

    def nominal_bytes(capacity: int) -> int:
        return BloomFilter.nominal_nbytes(capacity)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        return n_ops

    def warp_cycles(phase: str) -> float:
        # Seven hash evaluations and probes per insert/positive query; random
        # queries usually stop after the first zero bit.
        return 15.0 if phase == "random_query" else 45.0

    return FilterAdapter(
        key="bf",
        display_name="Bloom",
        api="point",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.9,
        warp_cycles=warp_cycles,
        supports_delete=False,
    )


def blocked_bloom_adapter() -> FilterAdapter:
    """Blocked Bloom filter: one thread per item, a single line per op."""

    def build(capacity: int, recorder: StatsRecorder) -> BlockedBloomFilter:
        return BlockedBloomFilter.for_capacity(capacity, recorder=recorder)

    def nominal_bytes(capacity: int) -> int:
        return BlockedBloomFilter.nominal_nbytes(capacity)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        return n_ops

    def warp_cycles(phase: str) -> float:
        # One line load, one 64-bit lane, k bit tests.
        return 25.0

    return FilterAdapter(
        key="bbf",
        display_name="Blocked Bloom",
        api="point",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.9,
        warp_cycles=warp_cycles,
        supports_delete=False,
    )


# --------------------------------------------------------------------------
# bulk-API adapters (Figure 4)
# --------------------------------------------------------------------------
def bulk_tcf_adapter(config: TCFConfig = BULK_TCF_DEFAULT) -> FilterAdapter:
    """Bulk TCF: sorted batch, one cooperative group per block."""

    def build(capacity: int, recorder: StatsRecorder) -> BulkTCF:
        return BulkTCF.for_capacity(capacity, config, recorder)

    def nominal_bytes(capacity: int) -> int:
        n_slots = int(np.ceil(capacity / config.max_load_factor))
        return BulkTCF.nominal_nbytes(n_slots, config)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        n_blocks = int(np.ceil(capacity / config.max_load_factor / config.block_size))
        if phase == PHASE_INSERT:
            return n_blocks * config.cg_size
        return n_ops

    return FilterAdapter(
        key="bulk-tcf",
        display_name="TCF",
        api="bulk",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=config.max_load_factor,
        supports_delete=True,
    )


def bulk_gqf_adapter(remainder_bits: int = 8, use_mapreduce: bool = False) -> FilterAdapter:
    """Bulk GQF: even-odd regions, one thread per region per phase."""

    def build(capacity: int, recorder: StatsRecorder) -> BulkGQF:
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, capacity)))))
        return BulkGQF(
            quotient_bits,
            remainder_bits,
            SIM_REGION_SLOTS,
            use_mapreduce=use_mapreduce,
            recorder=recorder,
        )

    def nominal_bytes(capacity: int) -> int:
        return BulkGQF.nominal_nbytes(capacity, remainder_bits)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        n_regions = max(1, capacity // DEFAULT_REGION_SLOTS)
        if phase in (PHASE_INSERT, PHASE_DELETE):
            return max(1, n_regions // 2)
        return n_ops

    return FilterAdapter(
        key="bulk-gqf" + ("-mr" if use_mapreduce else ""),
        display_name="GQF",
        api="bulk",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.85,
        supports_delete=True,
    )


def sqf_adapter(remainder_bits: int = 5) -> FilterAdapter:
    """Geil SQF: bulk merge insert, one thread per 4096-slot segment."""

    def build(capacity: int, recorder: StatsRecorder) -> StandardQuotientFilter:
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, capacity)))))
        return StandardQuotientFilter(quotient_bits, remainder_bits, recorder)

    def nominal_bytes(capacity: int) -> int:
        return StandardQuotientFilter.nominal_nbytes(capacity, remainder_bits)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        if phase == PHASE_INSERT:
            return max(1, capacity // 4096)
        if phase == PHASE_DELETE:
            # Geil et al.'s delete path is not parallelised: items are removed
            # one at a time with full Robin-Hood left-shifting, which is why
            # Figure 6 shows the SQF two orders of magnitude behind the GQF.
            return 32
        return n_ops

    return FilterAdapter(
        key="sqf",
        display_name="SQF",
        api="bulk",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.85,
        max_lg_capacity=StandardQuotientFilter.max_quotient_bits(remainder_bits),
        supports_delete=True,
    )


def rsqf_adapter(remainder_bits: int = 5) -> FilterAdapter:
    """Geil RSQF: fast bulk queries, unoptimised (serialised) inserts."""

    def build(capacity: int, recorder: StatsRecorder) -> RankSelectQuotientFilter:
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, capacity)))))
        return RankSelectQuotientFilter(quotient_bits, remainder_bits, recorder)

    def nominal_bytes(capacity: int) -> int:
        return RankSelectQuotientFilter.nominal_nbytes(capacity, remainder_bits)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        if phase == PHASE_INSERT:
            return 1
        return n_ops

    return FilterAdapter(
        key="rsqf",
        display_name="RSQF",
        api="bulk",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.85,
        max_lg_capacity=StandardQuotientFilter.max_quotient_bits(remainder_bits),
        supports_delete=False,
    )


# --------------------------------------------------------------------------
# CPU adapters (Table 4)
# --------------------------------------------------------------------------
def cpu_cqf_adapter(remainder_bits: int = 8) -> FilterAdapter:
    """CPU CQF on KNL: 272 threads, lock-contended concurrent inserts."""

    def build(capacity: int, recorder: StatsRecorder) -> CPUCountingQuotientFilter:
        quotient_bits = max(3, int(np.ceil(np.log2(max(8, capacity)))))
        return CPUCountingQuotientFilter(quotient_bits, remainder_bits, recorder=recorder)

    def nominal_bytes(capacity: int) -> int:
        return CPUCountingQuotientFilter.nominal_nbytes(capacity, remainder_bits)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        # Concurrent inserts serialise on the shifting work and the region
        # locks; queries scale to all 272 hardware threads.
        if phase in (PHASE_INSERT, PHASE_DELETE):
            return 2
        return 272

    return FilterAdapter(
        key="cpu-cqf",
        display_name="CQF (CPU)",
        api="point",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.85,
        supports_delete=True,
    )


def cpu_vqf_adapter() -> FilterAdapter:
    """CPU VQF on KNL: 272 threads, two-block POTC structure."""

    def build(capacity: int, recorder: StatsRecorder) -> CPUVectorQuotientFilter:
        return CPUVectorQuotientFilter.for_capacity(capacity, recorder)

    def nominal_bytes(capacity: int) -> int:
        return CPUVectorQuotientFilter.nominal_nbytes(capacity)

    def active_threads(phase: str, n_ops: int, capacity: int) -> int:
        return 272

    return FilterAdapter(
        key="cpu-vqf",
        display_name="VQF (CPU)",
        api="point",
        build=build,
        nominal_bytes=nominal_bytes,
        active_threads=active_threads,
        load_factor=0.9,
        supports_delete=True,
    )


# --------------------------------------------------------------------------
# registries
# --------------------------------------------------------------------------
def point_api_adapters() -> Dict[str, FilterAdapter]:
    """The four point-API filters of Figure 3."""
    adapters = [
        point_tcf_adapter(),
        point_gqf_adapter(),
        bloom_adapter(),
        blocked_bloom_adapter(),
    ]
    return {a.key: a for a in adapters}


def bulk_api_adapters() -> Dict[str, FilterAdapter]:
    """The four bulk-API filters of Figure 4."""
    adapters = [
        bulk_tcf_adapter(),
        bulk_gqf_adapter(),
        sqf_adapter(),
        rsqf_adapter(),
    ]
    return {a.key: a for a in adapters}


def deletion_adapters() -> Dict[str, FilterAdapter]:
    """The filters compared for deletions in Figure 6."""
    adapters = [
        bulk_gqf_adapter(),
        sqf_adapter(),
        point_tcf_adapter(),
    ]
    return {a.key: a for a in adapters}


def cpu_vs_gpu_adapters() -> Dict[str, FilterAdapter]:
    """The four filters of Table 4 (CPU CQF/VQF vs GPU GQF/TCF)."""
    adapters = [
        cpu_cqf_adapter(),
        point_gqf_adapter(),
        cpu_vqf_adapter(),
        point_tcf_adapter(),
    ]
    return {a.key: a for a in adapters}
