"""Drivers that regenerate the paper's figures (3, 4, 5 and 6).

Each function returns plain data structures (lists of
:class:`~repro.analysis.throughput.BenchmarkPoint` or dictionaries of
series) that the ``benchmarks/`` harness prints in the same rows/series the
paper plots.  Keeping the drivers inside the library means the examples and
tests exercise exactly the code the benchmarks run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.tcf import FIGURE5_CG_SIZES, FIGURE5_VARIANTS, TCFConfig
from ..gpusim.device import A100, V100, GPUSpec
from . import adapters as adapter_registry
from .throughput import (
    DEFAULT_SIM_LG,
    PHASE_DELETE,
    PHASE_INSERT,
    STANDARD_PHASES,
    BenchmarkPoint,
    run_size_sweep,
    sweep_many,
)

#: Filter-size sweep used by Figures 3, 4 and 6 (log2 of the capacity).
PAPER_SIZE_SWEEP: Tuple[int, ...] = (22, 24, 26, 28, 30)
#: The two evaluation machines.
PAPER_DEVICES: Tuple[GPUSpec, ...] = (V100, A100)


# --------------------------------------------------------------------------
# Figures 3 and 4: point / bulk API throughput vs filter size
# --------------------------------------------------------------------------
def figure3_point_api(
    device: GPUSpec,
    lg_capacities: Sequence[int] = PAPER_SIZE_SWEEP,
    sim_lg: int = DEFAULT_SIM_LG,
    n_queries: int = 2048,
) -> Dict[str, List[BenchmarkPoint]]:
    """Figure 3 (one device): point-API insert/positive/random throughput.

    Returns ``{filter_key: [BenchmarkPoint per size]}`` for the TCF, GQF,
    Bloom and blocked Bloom filters.
    """
    return sweep_many(
        list(adapter_registry.point_api_adapters().values()),
        device,
        lg_capacities,
        STANDARD_PHASES,
        sim_lg,
        n_queries,
    )


def figure4_bulk_api(
    device: GPUSpec,
    lg_capacities: Sequence[int] = PAPER_SIZE_SWEEP,
    sim_lg: int = DEFAULT_SIM_LG,
    n_queries: int = 2048,
) -> Dict[str, List[BenchmarkPoint]]:
    """Figure 4 (one device): bulk-API throughput for TCF/GQF/SQF/RSQF."""
    return sweep_many(
        list(adapter_registry.bulk_api_adapters().values()),
        device,
        lg_capacities,
        STANDARD_PHASES,
        sim_lg,
        n_queries,
    )


# --------------------------------------------------------------------------
# Figure 5: cooperative-group-size sweep over TCF variants
# --------------------------------------------------------------------------
def figure5_cg_sweep(
    device: GPUSpec = V100,
    lg_capacity: int = 28,
    variants: Optional[Dict[str, TCFConfig]] = None,
    cg_sizes: Sequence[int] = FIGURE5_CG_SIZES,
    sim_lg: int = 11,
    n_queries: int = 1024,
) -> Dict[str, Dict[int, BenchmarkPoint]]:
    """Figure 5: TCF throughput vs cooperative-group size per variant.

    Returns ``{variant_label: {cg_size: BenchmarkPoint}}``; each benchmark
    point carries insert, positive-query and random-query estimates for a
    filter sized to ``2**lg_capacity``.
    """
    variants = variants if variants is not None else FIGURE5_VARIANTS
    results: Dict[str, Dict[int, BenchmarkPoint]] = {}
    for label, base_config in variants.items():
        per_cg: Dict[int, BenchmarkPoint] = {}
        for cg_size in cg_sizes:
            config = base_config.with_cg_size(int(cg_size))
            adapter = adapter_registry.point_tcf_adapter(config)
            points = run_size_sweep(
                adapter, device, [lg_capacity], STANDARD_PHASES, sim_lg, n_queries
            )
            per_cg[int(cg_size)] = points[0]
        results[label] = per_cg
    return results


def figure5_optimal_cg(
    results: Dict[str, Dict[int, BenchmarkPoint]], phase: str = PHASE_INSERT
) -> Dict[str, int]:
    """The best cooperative-group size per variant (paper: 4 for most)."""
    best: Dict[str, int] = {}
    for label, per_cg in results.items():
        best[label] = max(per_cg, key=lambda cg: per_cg[cg].throughput_bops(phase))
    return best


# --------------------------------------------------------------------------
# Figure 6: deletion throughput
# --------------------------------------------------------------------------
def figure6_deletions(
    device: GPUSpec = V100,
    lg_capacities: Sequence[int] = PAPER_SIZE_SWEEP,
    sim_lg: int = DEFAULT_SIM_LG,
    n_queries: int = 2048,
) -> Dict[str, List[BenchmarkPoint]]:
    """Figure 6: deletion throughput of the bulk GQF, SQF and TCF.

    The SQF series stops at 2^26 (its capacity limit), as in the paper.
    """
    phases = (PHASE_INSERT, PHASE_DELETE)
    return sweep_many(
        list(adapter_registry.deletion_adapters().values()),
        device,
        lg_capacities,
        phases,
        sim_lg,
        n_queries,
    )


# --------------------------------------------------------------------------
# headline-claim helpers (used by EXPERIMENTS.md and tests)
# --------------------------------------------------------------------------
def speedup_over(
    results: Dict[str, List[BenchmarkPoint]],
    numerator_key: str,
    denominator_key: str,
    phase: str,
) -> List[float]:
    """Per-size speed-up of one filter over another for a phase."""
    num = {p.lg_capacity: p for p in results.get(numerator_key, [])}
    den = {p.lg_capacity: p for p in results.get(denominator_key, [])}
    out: List[float] = []
    for lg in sorted(set(num) & set(den)):
        denominator = den[lg].throughput_bops(phase)
        if denominator > 0:
            out.append(num[lg].throughput_bops(phase) / denominator)
    return out
