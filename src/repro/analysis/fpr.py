"""Empirical false-positive-rate and bits-per-item measurement (Table 2).

Table 2 reports, for every filter configured as in the Figure 3/4
experiments, the *measured* false-positive rate and the bits per item at the
benchmark fill level.  The measurement procedure is the standard one: fill
the filter with one key set, query a disjoint key set, and count how many of
those "absent" keys the filter claims to contain.

Bits per item is the structure's footprint divided by the number of items it
holds at its recommended load factor — space that the design reserves but
does not fill (e.g. the 10 % headroom of the TCF) is charged to the filter,
exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..baselines import (
    BlockedBloomFilter,
    BloomFilter,
    RankSelectQuotientFilter,
    StandardQuotientFilter,
)
from ..core.base import AbstractFilter
from ..core.exceptions import FilterFullError
from ..core.tcf import BULK_TCF_DEFAULT, POINT_TCF_DEFAULT, BulkTCF, PointTCF
from ..core.gqf import PointGQF
from ..gpusim.stats import StatsRecorder
from ..hashing.xorwow import generate_disjoint_keys, generate_keys


@dataclass
class AccuracyResult:
    """Measured accuracy and space of one filter configuration."""

    name: str
    false_positive_rate: float
    bits_per_item: float
    n_items: int
    n_negative_queries: int
    n_false_positives: int
    design_fp_rate: float

    def as_row(self) -> Dict[str, float]:
        return {
            "filter": self.name,
            "fp_rate_percent": 100.0 * self.false_positive_rate,
            "bits_per_item": self.bits_per_item,
            "design_fp_percent": 100.0 * self.design_fp_rate,
        }


def measure_accuracy(
    filt: AbstractFilter,
    n_items: int,
    n_negative: int = 20_000,
    seed: int = 0xACC,
    bulk: bool = False,
) -> AccuracyResult:
    """Fill ``filt`` with ``n_items`` keys and measure FP rate and BPI.

    The inserted count is derived from the filter's own item count before
    and after the fill, so a bulk insert that raises
    :class:`~repro.core.exceptions.FilterFullError` mid-batch still reports
    how many keys actually landed (the bulk APIs fill the table before
    raising).  Negative queries are drawn disjoint from the *whole* insert
    key set — a partially-filled bulk batch is not a prefix of ``keys``, so
    excluding only a prefix would count true positives as false positives.
    """
    keys = generate_keys(n_items, seed)

    def stored_items() -> int:
        # Counting filters report n_items as *distinct* fingerprints, which
        # silently merges key pairs that collide to one fingerprint; their
        # multiset cardinality counts every inserted key, like the per-key
        # loop counter used to.
        return int(getattr(filt, "total_count", filt.n_items))

    items_before = stored_items()
    try:
        if bulk:
            filt.bulk_insert(keys)
        else:
            for key in keys:
                filt.insert(int(key))
    except FilterFullError:
        pass
    inserted = stored_items() - items_before
    negatives = generate_disjoint_keys(n_negative, seed ^ 0xFA15E, keys)
    if bulk:
        hits = int(np.count_nonzero(filt.bulk_query(negatives)))
    else:
        hits = sum(1 for key in negatives if filt.query(int(key)))
    fp_rate = hits / n_negative if n_negative else 0.0
    bpi = 8.0 * filt.nbytes / max(1, inserted)
    return AccuracyResult(
        name=filt.name,
        false_positive_rate=fp_rate,
        bits_per_item=bpi,
        n_items=inserted,
        n_negative_queries=n_negative,
        n_false_positives=hits,
        design_fp_rate=filt.false_positive_rate,
    )


def table2_configurations(lg_capacity: int = 16) -> List[Dict]:
    """The filter configurations evaluated in Table 2.

    Every filter is configured as in the throughput experiments: target
    false-positive rate ~0.1 %, sized for ``2**lg_capacity`` items.
    """
    capacity = 1 << lg_capacity

    def tcf_factory() -> AbstractFilter:
        return PointTCF.for_capacity(capacity, POINT_TCF_DEFAULT, StatsRecorder())

    def bulk_tcf_factory() -> AbstractFilter:
        return BulkTCF.for_capacity(capacity, BULK_TCF_DEFAULT, StatsRecorder())

    def gqf_factory() -> AbstractFilter:
        quotient_bits = int(np.ceil(np.log2(capacity)))
        return PointGQF(quotient_bits, 8, 1024, StatsRecorder())

    def bf_factory() -> AbstractFilter:
        return BloomFilter.for_capacity(capacity, recorder=StatsRecorder())

    def bbf_factory() -> AbstractFilter:
        return BlockedBloomFilter.for_capacity(capacity, recorder=StatsRecorder())

    def sqf_factory() -> AbstractFilter:
        quotient_bits = int(np.ceil(np.log2(capacity)))
        return StandardQuotientFilter(quotient_bits, 5, StatsRecorder())

    def rsqf_factory() -> AbstractFilter:
        quotient_bits = int(np.ceil(np.log2(capacity)))
        return RankSelectQuotientFilter(quotient_bits, 5, StatsRecorder())

    return [
        {"name": "GQF", "factory": gqf_factory, "bulk": False, "load": 0.85,
         "paper_fp": 0.19, "paper_bpi": 10.68},
        {"name": "BF", "factory": bf_factory, "bulk": False, "load": 0.9,
         "paper_fp": 0.15, "paper_bpi": 10.10},
        {"name": "SQF", "factory": sqf_factory, "bulk": True, "load": 0.85,
         "paper_fp": 1.17, "paper_bpi": 9.70},
        {"name": "RSQF", "factory": rsqf_factory, "bulk": True, "load": 0.85,
         "paper_fp": 1.55, "paper_bpi": 7.87},
        {"name": "Bulk TCF", "factory": bulk_tcf_factory, "bulk": True, "load": 0.9,
         "paper_fp": 0.36, "paper_bpi": 16.0},
        {"name": "TCF", "factory": tcf_factory, "bulk": False, "load": 0.9,
         "paper_fp": 0.24, "paper_bpi": 16.7},
        {"name": "BBF", "factory": bbf_factory, "bulk": False, "load": 0.9,
         "paper_fp": 1.0, "paper_bpi": 9.73},
    ]


def run_table2(
    lg_capacity: int = 16,
    n_negative: int = 20_000,
    seed: int = 0xACC,
) -> List[Dict]:
    """Reproduce Table 2: measured FP rate and BPI for every filter.

    Returns one row per filter with measured and paper-reported values so
    EXPERIMENTS.md can present them side by side.
    """
    rows: List[Dict] = []
    for config in table2_configurations(lg_capacity):
        filt = config["factory"]()
        n_items = int(config["load"] * (1 << lg_capacity))
        result = measure_accuracy(filt, n_items, n_negative, seed, config["bulk"])
        row = result.as_row()
        row["filter"] = config["name"]
        row["paper_fp_percent"] = config["paper_fp"]
        row["paper_bits_per_item"] = config["paper_bpi"]
        rows.append(row)
    return rows
