"""Benchmark harness: regenerates every table and figure of the paper."""

from . import adapters, api_matrix, figures, fpr, reporting, tables
from .throughput import (
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_POSITIVE,
    PHASE_RANDOM,
    STANDARD_PHASES,
    BenchmarkPoint,
    FilterAdapter,
    measure_phases,
    run_size_sweep,
    single_point,
    sweep_many,
)

__all__ = [
    "adapters",
    "api_matrix",
    "figures",
    "fpr",
    "reporting",
    "tables",
    "PHASE_DELETE",
    "PHASE_INSERT",
    "PHASE_POSITIVE",
    "PHASE_RANDOM",
    "STANDARD_PHASES",
    "BenchmarkPoint",
    "FilterAdapter",
    "measure_phases",
    "run_size_sweep",
    "single_point",
    "sweep_many",
]
