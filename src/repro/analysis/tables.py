"""Drivers that regenerate the paper's tables (1, 3, 4 and 5).

Table 2 lives in :mod:`repro.analysis.fpr` and Table 1 in
:mod:`repro.analysis.api_matrix`; this module covers the remaining two
evaluation tables:

* **Table 4** — CPU (CQF, VQF on KNL) vs GPU (point GQF, point TCF on V100)
  throughput at a 2^28 filter size;
* **Table 5** — GQF counting throughput for datasets with different count
  distributions (UR, UR-count, Zipfian-count with and without the map-reduce
  optimisation, and a k-mer dataset), across filter sizes 2^22…2^28.

Table 3 (MetaHipMer memory) is produced by :mod:`repro.apps.metahipmer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.gqf import BulkGQF
from ..core.gqf.regions import DEFAULT_REGION_SLOTS
from ..gpusim.device import KNL, V100, GPUSpec
from ..gpusim.perfmodel import estimate_time
from ..gpusim.stats import StatsRecorder
from ..hashing.fingerprints import FingerprintScheme
from ..workloads import kmer as kmer_workloads
from ..workloads.generators import (
    CountingDataset,
    uniform_count_dataset,
    uniform_random_dataset,
    zipfian_count_dataset,
)
from . import adapters as adapter_registry
from .throughput import (
    PHASE_INSERT,
    PHASE_POSITIVE,
    PHASE_RANDOM,
    STANDARD_PHASES,
    single_point,
)

#: Sizes (log2) reported in Table 5.
TABLE5_SIZES: Sequence[int] = (22, 24, 26, 28)
#: Dataset columns of Table 5, in the paper's order.
TABLE5_DATASETS: Sequence[str] = (
    "UR",
    "UR count",
    "Zipfian count",
    "Zipfian count (MR)",
    "k-mer count",
)


# --------------------------------------------------------------------------
# Table 4: CPU vs GPU
# --------------------------------------------------------------------------
#: Paper-reported Table 4 throughput (million ops/s) for reference columns.
PAPER_TABLE4 = {
    "CQF (CPU)": {"insert": 2.2, "positive_query": 320.9, "random_query": 368.0},
    "GQF": {"insert": 129.7, "positive_query": 2118.4, "random_query": 3369.0},
    "VQF (CPU)": {"insert": 247.2, "positive_query": 332.0, "random_query": 333.8},
    "TCF": {"insert": 1273.8, "positive_query": 4340.9, "random_query": 1994.3},
}


def run_table4(
    lg_capacity: int = 28,
    sim_lg: int = 12,
    n_queries: int = 2048,
) -> List[Dict]:
    """Table 4: aggregate throughput of CPU and GPU filter versions.

    CPU filters are evaluated against the KNL device model, GPU filters
    against the V100 (Cori), matching the paper's setup.  Returns one row per
    filter with measured (modelled) and paper-reported M ops/s.
    """
    adapters = adapter_registry.cpu_vs_gpu_adapters()
    devices = {
        "cpu-cqf": KNL,
        "cpu-vqf": KNL,
        "gqf": V100,
        "tcf": V100,
    }
    rows: List[Dict] = []
    for key, adapter in adapters.items():
        device = devices.get(key, V100)
        point = single_point(adapter, device, lg_capacity, STANDARD_PHASES, sim_lg, n_queries)
        paper = PAPER_TABLE4.get(adapter.display_name, {})
        rows.append(
            {
                "filter": adapter.display_name,
                "device": device.name,
                "insert_mops": point.estimates[PHASE_INSERT].throughput_mops,
                "positive_mops": point.estimates[PHASE_POSITIVE].throughput_mops,
                "random_mops": point.estimates[PHASE_RANDOM].throughput_mops,
                "paper_insert_mops": paper.get("insert"),
                "paper_positive_mops": paper.get("positive_query"),
                "paper_random_mops": paper.get("random_query"),
            }
        )
    return rows


# --------------------------------------------------------------------------
# Table 5: GQF counting throughput
# --------------------------------------------------------------------------
@dataclass
class CountingResult:
    """Counting-benchmark result for one (dataset, size) cell of Table 5."""

    dataset: str
    lg_capacity: int
    throughput_mops: float
    n_items: int
    imbalance: float
    aggregation_ratio: float


def _dataset_for(name: str, n_items: int, seed: int = 0x7AB1E5) -> CountingDataset:
    key = name.strip().lower()
    if key == "ur":
        return uniform_random_dataset(n_items, seed)
    if key == "ur count":
        return uniform_count_dataset(n_items, seed=seed)
    if key in ("zipfian count", "zipfian count (mr)"):
        return zipfian_count_dataset(n_items, seed=seed)
    if key == "k-mer count":
        return kmer_workloads.kmer_count_dataset(n_items, seed=seed)
    raise ValueError(f"unknown Table 5 dataset {name!r}")


def region_imbalance(
    dataset: CountingDataset,
    lg_capacity: int,
    remainder_bits: int = 8,
    region_slots: int = DEFAULT_REGION_SLOTS,
    mapreduce: bool = False,
) -> float:
    """Work imbalance across even-odd regions at nominal scale.

    Bulk-insert wall-clock time is set by the most loaded region thread, so
    the throughput penalty relative to perfect balance is
    ``max_region_items / mean_region_items``.  With map-reduce aggregation
    the duplicates collapse first, removing the hot-region spike — this is
    the mechanism behind the Zipfian vs Zipfian-MR gap in Table 5.
    """
    scheme = FingerprintScheme(lg_capacity, remainder_bits)
    keys = dataset.distinct_keys if mapreduce else dataset.keys
    if keys.size == 0:
        return 1.0
    quotients, _ = scheme.key_to_slot(np.asarray(keys, dtype=np.uint64))
    n_regions = max(1, (1 << lg_capacity) // region_slots)
    regions = np.asarray(quotients, dtype=np.int64) // region_slots
    counts = np.bincount(regions, minlength=n_regions)
    mean = keys.size / n_regions
    if mean <= 0:
        return 1.0
    return float(max(1.0, counts.max() / mean))


#: Per-insert cost of a single GPU thread performing dependent (latency
#: bound) insertions into its region — used for the hot-region serial bound.
SINGLE_THREAD_INSERT_S = 250e-9


def hot_fraction(dataset: CountingDataset) -> float:
    """Largest share of the total insertions owned by one distinct item.

    For the truncated Zipf(1.5) distribution this is ~0.35-0.4 regardless of
    the dataset size, which is why the non-aggregated Zipfian column of
    Table 5 stays flat: one region thread performs that share of the batch
    serially, no matter how large the filter is.
    """
    if dataset.n_items == 0 or dataset.counts.size == 0:
        return 0.0
    return float(dataset.counts.max() / dataset.n_items)


def is_scale_free_skew(
    dataset_name: str, sim_items: int, seed: int, growth_threshold: float = 1.5
) -> bool:
    """Detect whether a dataset's hot-item count grows with the dataset size.

    The Zipfian dataset is *scale-free*: its most frequent item owns a fixed
    share (~38 % at coefficient 1.5) of any dataset size, so the hot-region
    serial work grows linearly with the batch.  The UR-count dataset is
    *bounded*: counts never exceed 100 regardless of size, so duplication
    never dominates a region.  The distinction is detected empirically by
    generating the dataset at two sizes and comparing the hot counts.
    """
    small = _dataset_for(dataset_name, sim_items, seed)
    large = _dataset_for(dataset_name, 2 * sim_items, seed + 1)
    small_max = float(small.counts.max()) if small.counts.size else 1.0
    large_max = float(large.counts.max()) if large.counts.size else 1.0
    return large_max / max(1.0, small_max) >= growth_threshold


def nominal_hot_count(
    dataset: CountingDataset, nominal_items: int, scale_free: bool
) -> float:
    """Hot-item insertion count extrapolated to the nominal dataset size."""
    if dataset.counts.size == 0:
        return 0.0
    if scale_free:
        return hot_fraction(dataset) * nominal_items
    return float(dataset.counts.max())


def run_table5(
    lg_capacities: Sequence[int] = TABLE5_SIZES,
    datasets: Sequence[str] = TABLE5_DATASETS,
    device: GPUSpec = V100,
    sim_lg: int = 12,
    fill_fraction: float = 0.85,
    seed: int = 0x7AB1E5,
) -> List[CountingResult]:
    """Table 5: GQF bulk counting throughput per dataset and filter size.

    For every cell the functional simulation bulk-inserts a scaled-down
    version of the dataset into a GQF and the perf model scales the event
    trace to the nominal dataset size.  The wall-clock estimate is the
    maximum of (a) the balanced roofline estimate and (b) the *hot-region
    serial bound*: the thread owning the most frequent item must perform all
    of its insertions sequentially.  The serial bound is what keeps the
    non-aggregated Zipfian column flat at a few M ops/s while every other
    column scales with filter size; map-reduce aggregation collapses the hot
    item to a single counted insert and removes the bound.
    """
    results: List[CountingResult] = []
    sim_capacity = 1 << sim_lg
    for dataset_name in datasets:
        mapreduce = dataset_name.endswith("(MR)")
        sim_items = int(fill_fraction * sim_capacity)
        sim_dataset = _dataset_for(dataset_name, sim_items, seed)
        scale_free = False if mapreduce else is_scale_free_skew(dataset_name, sim_items, seed)

        recorder = StatsRecorder()
        quotient_bits = sim_lg
        gqf = BulkGQF(
            quotient_bits,
            8,
            adapter_registry.SIM_REGION_SLOTS,
            use_mapreduce=mapreduce,
            recorder=recorder,
        )
        with recorder.section("counting") as stats:
            gqf.bulk_insert(sim_dataset.keys)
            stats.operations += int(sim_dataset.keys.size)
        measurement = recorder.section_stats("counting")
        skew = 0.0 if mapreduce else hot_fraction(sim_dataset)

        for lg in lg_capacities:
            nominal_capacity = 1 << lg
            nominal_items = int(fill_fraction * nominal_capacity)
            n_regions = max(1, nominal_capacity // DEFAULT_REGION_SLOTS)
            estimate = estimate_time(
                measurement,
                n_ops=nominal_items,
                device=device,
                structure_bytes=BulkGQF.nominal_nbytes(nominal_capacity, 8),
                active_threads=max(1, n_regions // 2),
                simulated_ops=int(sim_dataset.keys.size),
            )
            hot_count = 0.0 if mapreduce else nominal_hot_count(
                sim_dataset, nominal_items, scale_free
            )
            serial_bound = hot_count * SINGLE_THREAD_INSERT_S
            time_s = max(estimate.time_s, serial_bound)
            throughput = nominal_items / time_s / 1e6 if time_s > 0 else 0.0
            results.append(
                CountingResult(
                    dataset=dataset_name,
                    lg_capacity=lg,
                    throughput_mops=throughput,
                    n_items=nominal_items,
                    imbalance=skew * n_regions if skew else 1.0,
                    aggregation_ratio=1.0 - sim_dataset.n_distinct / max(1, sim_dataset.n_items),
                )
            )
    return results


def table5_as_grid(results: List[CountingResult]) -> Dict[int, Dict[str, float]]:
    """Pivot Table 5 results into ``{lg_size: {dataset: M ops/s}}``."""
    grid: Dict[int, Dict[str, float]] = {}
    for result in results:
        grid.setdefault(result.lg_capacity, {})[result.dataset] = result.throughput_mops
    return grid


#: Paper-reported Table 5 (Million operations/sec) for side-by-side reporting.
PAPER_TABLE5 = {
    22: {"UR": 25.318, "UR count": 30.763, "Zipfian count": 3.676,
         "Zipfian count (MR)": 34.888, "k-mer count": 23.625},
    24: {"UR": 101.804, "UR count": 110.833, "Zipfian count": 4.777,
         "Zipfian count (MR)": 169.637, "k-mer count": 90.722},
    26: {"UR": 321.150, "UR count": 350.824, "Zipfian count": 4.995,
         "Zipfian count (MR)": 508.156, "k-mer count": 296.130},
    28: {"UR": 566.038, "UR count": 798.353, "Zipfian count": 4.520,
         "Zipfian count (MR)": 806.766, "k-mer count": 507.373},
}
