"""Static-analysis and concurrency-correctness audits for the repro tree.

Three coordinated analyses, all runnable via ``python -m repro audit``:

- :mod:`repro.audit.lint` — a custom AST lint engine with repo-specific
  rules (AUD1xx) encoding invariants established by earlier PRs.
- :mod:`repro.audit.locks` — static lock-order analysis of the service
  layer: builds the lock-acquisition graph and checks it stays acyclic.
- :mod:`repro.audit.racetrack` — an Eraser-style dynamic lockset race
  detector that instruments the service locks under chaos traffic.
"""

from .lint import Finding, Rule, all_rules, gating, run_lint

__all__ = ["Finding", "Rule", "all_rules", "gating", "run_lint"]
