"""The ``repro audit`` subcommand: lint + lock-order + optional race audit.

Exit codes: 0 — clean; 1 — findings (lint errors, lock-order cycles or
violations, stale hierarchy artifact, or harmful race candidates);
2 — usage or analysis errors (unparseable source, bad paths).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
from typing import List, Optional

from .lint import gating, run_lint
from .locks import (
    DEFAULT_LOCK_PATHS,
    analyze_lock_order,
    check_artifact,
    hierarchy_artifact,
)

DEFAULT_LINT_PATHS = ("src/repro",)
DEFAULT_ARTIFACT_PATH = "docs/lock_hierarchy.json"


def add_audit_parser(sub) -> None:
    """Attach the ``audit`` subcommand to the ``repro`` CLI's subparsers."""
    audit = sub.add_parser(
        "audit",
        help="static analysis: custom lints, lock-order check, race detector",
    )
    add_audit_arguments(audit)


def add_audit_arguments(audit: argparse.ArgumentParser) -> None:
    audit.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=f"files or directories to lint (default: {DEFAULT_LINT_PATHS[0]})",
    )
    audit.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: %(default)s)",
    )
    audit.add_argument(
        "--no-lint", action="store_true", help="skip the AST lint pass"
    )
    audit.add_argument(
        "--no-locks", action="store_true", help="skip the lock-order analysis"
    )
    audit.add_argument(
        "--keep-suppressed", action="store_true",
        help="also show findings silenced by '# audit: ignore[...]'",
    )
    audit.add_argument(
        "--race", action="store_true",
        help="run the chaos traffic scenario under the lockset race detector",
    )
    audit.add_argument(
        "--race-report", type=pathlib.Path, default=None, metavar="FILE",
        help="write the race detector's JSON report here (implies --race)",
    )
    audit.add_argument(
        "--lock-artifact", type=pathlib.Path,
        default=pathlib.Path(DEFAULT_ARTIFACT_PATH), metavar="FILE",
        help="committed lock-hierarchy artifact to check against "
             "(default: %(default)s)",
    )
    audit.add_argument(
        "--write-lock-artifact", action="store_true",
        help="refresh the lock-hierarchy artifact instead of checking it",
    )


def run_audit(args: argparse.Namespace) -> int:
    emit_json = args.format == "json"
    payload: dict = {}
    failed = False
    lines: List[str] = []

    if not args.no_lint:
        paths = args.paths or list(DEFAULT_LINT_PATHS)
        try:
            findings = run_lint(paths, keep_suppressed=args.keep_suppressed)
        except (OSError, SyntaxError) as exc:
            print(f"audit: lint failed: {exc}", file=sys.stderr)
            return 2
        errors = gating(findings)
        shown = findings if args.keep_suppressed else [
            f for f in findings if not f.suppressed
        ]
        payload["lint"] = {
            "findings": [
                {
                    "rule": f.rule, "severity": f.severity, "path": f.path,
                    "line": f.line, "message": f.message,
                    "suppressed": f.suppressed,
                }
                for f in shown
            ],
            "errors": len(errors),
        }
        for f in shown:
            lines.append(f.render())
        lines.append(
            f"lint: {len(shown)} finding(s) shown, {len(errors)} gating"
        )
        failed = failed or bool(errors)

    if not args.no_locks:
        try:
            report = analyze_lock_order()
        except (OSError, SyntaxError) as exc:
            print(f"audit: lock-order analysis failed: {exc}", file=sys.stderr)
            return 2
        artifact = hierarchy_artifact(report)
        payload["locks"] = {
            "ok": report.ok,
            "cycles": report.cycles,
            "violations": [
                {"site": site.render(), "message": msg}
                for site, msg in report.violations
            ],
            "hierarchy": report.hierarchy,
        }
        for cycle in report.cycles:
            lines.append("lock-order cycle: " + " -> ".join(cycle + cycle[:1]))
        for site, msg in report.violations:
            lines.append(f"lock discipline: {site.render()}: {msg}")
        lines.append(
            f"lock-order: {len(report.locks)} lock(s), "
            f"{len(report.edges)} edge(s), {len(report.cycles)} cycle(s), "
            f"{len(report.violations)} violation(s) in "
            f"{', '.join(DEFAULT_LOCK_PATHS)}"
        )
        failed = failed or not report.ok
        if args.write_lock_artifact:
            args.lock_artifact.parent.mkdir(parents=True, exist_ok=True)
            args.lock_artifact.write_text(
                json.dumps(artifact, indent=2) + "\n", encoding="utf-8"
            )
            lines.append(f"lock-order: wrote {args.lock_artifact}")
        else:
            stale = check_artifact(report, args.lock_artifact)
            if stale is not None:
                lines.append(stale)
                failed = True

    if args.race or args.race_report is not None:
        from .racetrack import run_race_audit

        with tempfile.TemporaryDirectory(prefix="repro-race-") as td:
            race = run_race_audit(pathlib.Path(td))
        payload["race"] = race.as_dict()
        lines.append(race.render())
        if args.race_report is not None:
            args.race_report.parent.mkdir(parents=True, exist_ok=True)
            args.race_report.write_text(
                json.dumps(race.as_dict(), indent=2) + "\n", encoding="utf-8"
            )
            lines.append(f"race: wrote {args.race_report}")
        failed = failed or not race.ok

    payload["ok"] = not failed
    if emit_json:
        print(json.dumps(payload, indent=2))
    else:
        for line in lines:
            print(line)
        print("audit: FAILED" if failed else "audit: ok")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.audit.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Static analysis + concurrency checks for the repo.",
    )
    add_audit_arguments(parser)
    return run_audit(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
