"""Custom AST lint engine: repo-specific invariants as machine-checked rules.

The rules under :mod:`repro.audit.rules` encode invariants this repository
established in earlier PRs but until now only enforced by example — bulk
paths stay vectorized, deterministic modules stay wall-clock- and ambient-
RNG-free, persistence fsyncs before it renames, capacity errors carry
occupancy context, worker loops never swallow exceptions silently, and bulk
APIs validate their ``values`` like the point APIs do.

Engine model
------------
Every rule is a :class:`Rule` with a stable ID (``AUD1xx``), a severity
(``error`` gates the ``repro audit`` exit code; ``warning`` is advisory),
and a set of module *roles* it applies to.  Roles are inferred from a
file's path inside the package (:data:`ROLE_PATTERNS`) and can be forced by
a ``# audit: module-role=...`` directive (how the test fixtures opt in).
Findings are suppressed line by line with ``# audit: ignore[RULE]``
comments — every suppression names the rule it waives, so the waiver is
grep-able and reviewable.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .ignores import Directives, parse_directives

Severity = str  # "error" | "warning"

#: Role classification by path inside the package, first match wins per
#: pattern; a file can hold several roles.  Paths are matched against the
#: POSIX-style path suffix starting at ``repro/`` (or the bare filename for
#: files outside the package, e.g. fixtures, which instead use the
#: ``module-role`` directive).
ROLE_PATTERNS: Tuple[Tuple[str, str], ...] = (
    # Modules whose behaviour must be a pure function of their inputs so
    # seeded chaos schedules and the simulated GPU replay deterministically.
    ("deterministic", "repro/gpusim/"),
    ("deterministic", "repro/core/"),
    ("deterministic", "repro/service/faults.py"),
    # Modules owning the vectorized bulk paths (PRs 1-4).
    ("bulk-api", "repro/core/"),
    ("bulk-api", "repro/baselines/"),
    # Crash-safe persistence (PR 6 snapshots, PR 7 journal, PR 10 shard sets).
    ("persistence", "repro/lifecycle/snapshot.py"),
    ("persistence", "repro/lifecycle/shardset.py"),
    ("persistence", "repro/service/journal.py"),
    # The threaded service (PR 7): worker loops, locks, retries.
    ("service", "repro/service/"),
    # Process-parallel sharding (PR 10): routing and the worker entry point
    # must replay deterministically; the wrapper owns bulk paths and a lock
    # + pool lifecycle, so it carries the bulk-api and service disciplines.
    ("deterministic", "repro/sharding/router.py"),
    ("deterministic", "repro/sharding/worker.py"),
    ("bulk-api", "repro/sharding/sharded.py"),
    ("service", "repro/sharding/sharded.py"),
)

#: Meta-rule ID for malformed suppression directives.
BARE_IGNORE_RULE = "AUD100"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}] {self.message}{mark}"


@dataclass
class AuditModule:
    """One parsed source file handed to every applicable rule."""

    path: pathlib.Path
    source: str
    tree: ast.Module
    directives: Directives
    roles: FrozenSet[str]
    _parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @property
    def display_path(self) -> str:
        return self.path.as_posix()

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        if not self._parents:
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


#: A rule's checker yields ``(line, message)`` pairs.
Checker = Callable[[AuditModule], Iterator[Tuple[int, str]]]


@dataclass(frozen=True)
class Rule:
    """One registered audit rule."""

    rule_id: str
    name: str
    severity: Severity
    description: str
    #: Roles the rule applies to; ``None`` applies everywhere.
    roles: Optional[FrozenSet[str]]
    check: Checker
    #: PR that established the invariant (documentation cross-link).
    established_by: str = ""


_REGISTRY: Dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate audit rule ID {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by ID (importing the built-in set)."""
    from . import rules as _builtin  # noqa: F401 - registration side effect

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def infer_roles(path: pathlib.Path) -> FrozenSet[str]:
    """Role set of ``path`` by its location inside the package."""
    posix = path.as_posix()
    anchor = posix.rfind("repro/")
    suffix = posix[anchor:] if anchor >= 0 else posix
    return frozenset(
        role for role, pattern in ROLE_PATTERNS if suffix.startswith(pattern)
    )


def load_module(path: pathlib.Path) -> AuditModule:
    """Parse one file into the form rules consume.

    Raises ``SyntaxError`` for unparsable files — the audit refuses to
    certify a tree it cannot read.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    directives = parse_directives(source)
    roles = directives.roles or infer_roles(path)
    return AuditModule(
        path=path, source=source, tree=tree, directives=directives, roles=roles
    )


def iter_python_files(paths: Iterable[object]) -> Iterator[pathlib.Path]:
    for raw in paths:
        path = pathlib.Path(raw) if not isinstance(raw, pathlib.Path) else raw
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            yield path


def run_lint(
    paths: Iterable[pathlib.Path],
    rules: Optional[Iterable[Rule]] = None,
    keep_suppressed: bool = False,
) -> List[Finding]:
    """Run every applicable rule over ``paths``; returns active findings.

    ``keep_suppressed=True`` additionally returns findings silenced by
    ``# audit: ignore[...]`` directives, flagged ``suppressed=True`` — the
    JSON report keeps them visible so waivers stay auditable.
    """
    selected = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        module = load_module(file_path)
        for line in module.directives.malformed:
            findings.append(
                Finding(
                    rule=BARE_IGNORE_RULE,
                    severity="error",
                    path=module.display_path,
                    line=line,
                    message=(
                        "bare '# audit: ignore' without a rule list; name the "
                        "rule being waived, e.g. '# audit: ignore[AUD101]'"
                    ),
                )
            )
        for rule in selected:
            if rule.roles is not None and not (rule.roles & module.roles):
                continue
            for line, message in rule.check(module):
                finding = Finding(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    path=module.display_path,
                    line=line,
                    message=message,
                )
                ignored = module.directives.ignores.get(line, frozenset())
                if rule.rule_id in ignored:
                    if keep_suppressed:
                        findings.append(replace(finding, suppressed=True))
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def gating(findings: Iterable[Finding]) -> List[Finding]:
    """The subset of findings that should fail the audit (active errors)."""
    return [f for f in findings if f.severity == "error" and not f.suppressed]
