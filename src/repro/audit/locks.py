"""Static lock-order analysis of the service layer.

The bulk-job service (PR 7) holds several locks — ``FilterService._lock``
(with its ``_all_done`` condition alias), ``FilterRegistry._lock``, each
entry's ``op_lock`` and ``JobJournal._lock`` — and its deadlock freedom
rests on an implicit rule: whenever two of them nest, the per-filter
``op_lock`` is taken first and the bookkeeping locks are taken inside it,
never the other way round.  This module recovers that rule from the AST and
checks it stays true.

What it does:

1. **Lock discovery** — find attributes initialised to ``threading.Lock``
   / ``RLock`` / ``Condition`` (assignments in methods and dataclass
   fields).  A ``Condition(existing_lock)`` is recorded as an *alias* of
   the lock it wraps, so ``with self._all_done:`` and ``with self._lock:``
   count as the same acquisition.
2. **Acquisition graph** — an edge ``A -> B`` means somewhere the code
   acquires ``B`` while holding ``A``: lexically nested ``with`` blocks,
   plus interprocedural edges (a call made while holding ``A`` to a
   function whose transitive acquisition set contains ``B``).
3. **Checks** — the graph must be acyclic (a cycle is a deadlock recipe),
   no lock may nest inside itself (``threading.Lock`` is not reentrant),
   and lock objects must only be used via ``with`` — a bare
   ``.acquire()``/``.release()`` pair can leak the lock on an exception.
4. **Artifact** — the discovered hierarchy is serialised (see
   :func:`hierarchy_artifact`) and committed as ``docs/lock_hierarchy.json``;
   ``repro audit`` recomputes it and fails if the committed artifact is
   stale, so lock-order changes show up in review as a diff of that file.
"""

from __future__ import annotations

import ast
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .lint import iter_python_files

#: Default analysis roots: the threaded service layer and the sharded-filter
#: wrapper (whose per-filter lock nests inside the service's op_lock).
DEFAULT_LOCK_PATHS = ("src/repro/service", "src/repro/sharding")

_LOCK_FACTORIES = {"Lock", "RLock"}
_CONDITION_FACTORY = "Condition"


@dataclass(frozen=True)
class LockDef:
    """One discovered lock object (or condition alias)."""

    lock_id: str  # "ClassName.attr"
    kind: str  # "Lock" | "RLock" | "Condition"
    path: str
    line: int
    alias_of: Optional[str] = None  # Condition wrapping an existing lock


@dataclass(frozen=True)
class LockSite:
    """One source location participating in an edge or violation."""

    path: str
    line: int
    function: str

    def render(self) -> str:
        return f"{self.path}:{self.line} ({self.function})"


@dataclass
class LockOrderReport:
    """Everything the lock-order analysis discovered."""

    locks: List[LockDef] = field(default_factory=list)
    #: canonical edges: (held, acquired) -> sites proving the edge.
    edges: Dict[Tuple[str, str], List[LockSite]] = field(default_factory=dict)
    #: acquisition-order cycles, each a list of lock ids (deadlock recipes).
    cycles: List[List[str]] = field(default_factory=list)
    #: locks in acquisition order, outermost first, grouped into levels.
    hierarchy: List[List[str]] = field(default_factory=list)
    #: bare .acquire()/.release() on lock objects outside ``with``.
    violations: List[Tuple[LockSite, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.cycles and not self.violations


def _attr_chain(node: ast.AST) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_threading(call: ast.AST, factory_names: Set[str]) -> Optional[str]:
    """Return the factory name when ``call`` constructs a threading primitive."""
    if not isinstance(call, ast.Call):
        return None
    chain = _attr_chain(call.func)
    if chain.startswith("threading.") and chain.split(".")[-1] in factory_names:
        return chain.split(".")[-1]
    return None


class _ClassLocks:
    """Lock definitions discovered while scanning one class body."""

    def __init__(self, class_name: str, path: str) -> None:
        self.class_name = class_name
        self.path = path
        self.defs: List[LockDef] = []

    def _lock_id(self, attr: str) -> str:
        return f"{self.class_name}.{attr}"

    def scan(self, node: ast.ClassDef) -> None:
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign):
                self._scan_assign(stmt)
            elif isinstance(stmt, ast.AnnAssign):
                self._scan_annassign(stmt)

    def _scan_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        factory = _is_threading(stmt.value, _LOCK_FACTORIES | {_CONDITION_FACTORY})
        if factory is None:
            return
        alias_of = None
        if factory == _CONDITION_FACTORY and stmt.value.args:  # type: ignore[union-attr]
            wrapped = stmt.value.args[0]  # type: ignore[union-attr]
            if isinstance(wrapped, ast.Attribute) and isinstance(wrapped.value, ast.Name):
                if wrapped.value.id == "self":
                    alias_of = self._lock_id(wrapped.attr)
        self.defs.append(
            LockDef(
                lock_id=self._lock_id(target.attr),
                kind=factory,
                path=self.path,
                line=stmt.lineno,
                alias_of=alias_of,
            )
        )

    def _scan_annassign(self, stmt: ast.AnnAssign) -> None:
        """Dataclass-field form: ``op_lock: threading.Lock = field(...)``."""
        if not isinstance(stmt.target, ast.Name):
            return
        annotation = _attr_chain(stmt.annotation)
        if not annotation.startswith("threading."):
            return
        factory = annotation.split(".")[-1]
        if factory not in _LOCK_FACTORIES | {_CONDITION_FACTORY}:
            return
        self.defs.append(
            LockDef(
                lock_id=self._lock_id(stmt.target.id),
                kind=factory,
                path=self.path,
                line=stmt.lineno,
            )
        )


@dataclass
class _FunctionSummary:
    """Per-function facts feeding the interprocedural fixpoint."""

    qualname: str
    path: str
    #: canonical locks this function itself acquires (any nesting depth).
    local_acquires: Set[str] = field(default_factory=set)
    #: (held locks, callee name, receiver hint, site) for candidate calls.
    call_sites: List[Tuple[FrozenSet[str], str, Optional[str], LockSite]] = field(
        default_factory=list
    )
    #: local (held, acquired, site) triples from lexically nested ``with``.
    local_edges: List[Tuple[str, str, LockSite]] = field(default_factory=list)


class _FunctionScanner(ast.NodeVisitor):
    """Walk one function, tracking the lexically held lock set."""

    def __init__(
        self,
        summary: _FunctionSummary,
        resolve_lock,  # Callable[[ast.expr], Optional[str]]
        known_methods: Dict[str, List[str]],
    ) -> None:
        self.summary = summary
        self.resolve_lock = resolve_lock
        self.known_methods = known_methods
        self.held: List[str] = []

    def _site(self, node: ast.AST) -> LockSite:
        return LockSite(
            path=self.summary.path,
            line=getattr(node, "lineno", 0),
            function=self.summary.qualname,
        )

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self.resolve_lock(item.context_expr)
            if lock is not None:
                self.summary.local_acquires.add(lock)
                for held in self.held:
                    self.summary.local_edges.append((held, lock, self._site(item.context_expr)))
                self.held.append(lock)
                acquired.append(lock)
            else:
                # The context expression itself may call lock-taking code.
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        name = callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", "")
        if isinstance(callee, ast.Attribute) and name in ("acquire", "release"):
            lock = self.resolve_lock(callee.value)
            if lock is not None:
                site = self._site(node)
                self.summary.violations_hook(lock, site, name)  # type: ignore[attr-defined]
        if name in self.known_methods:
            hint: Optional[str] = None
            if isinstance(callee, ast.Attribute):
                receiver = callee.value
                if isinstance(receiver, ast.Name):
                    hint = receiver.id
                elif isinstance(receiver, ast.Attribute):
                    hint = receiver.attr
                else:
                    hint = "?"  # dynamic receiver: never resolves
            self.summary.call_sites.append(
                (frozenset(self.held), name, hint, self._site(node))
            )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs get their own summary via the outer driver; don't
        # double-count their bodies under the current held set.
        return

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


def analyze_lock_order(paths: Iterable[object] = DEFAULT_LOCK_PATHS) -> LockOrderReport:
    """Recover the lock-acquisition graph of ``paths`` and check it."""
    report = LockOrderReport()
    modules: List[Tuple[pathlib.Path, ast.Module]] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        modules.append((file_path, ast.parse(source, filename=str(file_path))))

    # ---- pass 1: lock discovery ------------------------------------------
    for file_path, tree in modules:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                scanner = _ClassLocks(node.name, file_path.as_posix())
                scanner.scan(node)
                report.locks.extend(scanner.defs)

    alias_map = {d.lock_id: d.alias_of for d in report.locks if d.alias_of}

    def canonical(lock_id: str) -> str:
        seen = set()
        while lock_id in alias_map and lock_id not in seen:
            seen.add(lock_id)
            lock_id = alias_map[lock_id]
        return lock_id

    by_attr: Dict[str, List[str]] = {}
    for d in report.locks:
        by_attr.setdefault(d.lock_id.split(".")[-1], []).append(d.lock_id)

    # ---- pass 2: per-function scan ---------------------------------------
    summaries: Dict[str, _FunctionSummary] = {}
    known_methods: Dict[str, List[str]] = {}
    functions: List[Tuple[pathlib.Path, Optional[str], ast.FunctionDef]] = []
    for file_path, tree in modules:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append((file_path, None, node))
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        functions.append((file_path, node.name, sub))
    for _path, class_name, func in functions:
        qual = f"{class_name}.{func.name}" if class_name else func.name
        known_methods.setdefault(func.name, []).append(qual)

    for file_path, class_name, func in functions:
        qual = f"{class_name}.{func.name}" if class_name else func.name
        summary = _FunctionSummary(qualname=qual, path=file_path.as_posix())

        def resolve_lock(expr: ast.expr, _cls=class_name) -> Optional[str]:
            if not isinstance(expr, ast.Attribute):
                return None
            attr = expr.attr
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and _cls is not None
                and f"{_cls}.{attr}" in {d.lock_id for d in report.locks}
            ):
                return canonical(f"{_cls}.{attr}")
            candidates = by_attr.get(attr, [])
            if len(candidates) == 1:
                return canonical(candidates[0])
            return None

        def violations_hook(lock: str, site: LockSite, op: str) -> None:
            report.violations.append(
                (
                    site,
                    f"direct {lock}.{op}() outside 'with'; use the context "
                    f"manager so the lock cannot leak on an exception",
                )
            )

        summary.violations_hook = violations_hook  # type: ignore[attr-defined]
        scanner = _FunctionScanner(summary, resolve_lock, known_methods)
        for stmt in func.body:
            scanner.visit(stmt)
        summaries[qual] = summary

    flat = summaries

    def resolve_call(caller_qual: str, name: str, hint: Optional[str]) -> Optional[str]:
        """Pick the callee qualname a ``receiver.name(...)`` call means.

        ``self.name()`` resolves within the caller's class.  A plain
        ``name()`` resolves to a module-level function.  For other
        receivers the receiver's identifier must name the owning class
        (``self.registry.acquire`` -> ``FilterRegistry.acquire``); a
        receiver like ``self._fh`` matches nothing, so incidental calls to
        common method names (``close``, ``flush``) on unrelated objects
        never create edges.
        """
        quals = known_methods.get(name, [])
        if hint == "self":
            cls = caller_qual.split(".")[0] if "." in caller_qual else None
            qual = f"{cls}.{name}" if cls else None
            return qual if qual in quals else None
        if hint is None:
            module_level = [q for q in quals if "." not in q]
            return module_level[0] if len(module_level) == 1 else None
        token = hint.lower().strip("_").split("_")[-1]
        if not token:
            return None
        matches = [
            q
            for q in quals
            if "." in q
            and (
                q.split(".")[0].lower().lstrip("_").endswith(token)
                or token.endswith(q.split(".")[0].lower().lstrip("_"))
            )
        ]
        return matches[0] if len(matches) == 1 else None

    # ---- pass 3: transitive acquisition fixpoint -------------------------
    acquires: Dict[str, Set[str]] = {q: set(s.local_acquires) for q, s in flat.items()}
    changed = True
    while changed:
        changed = False
        for qual, summary in flat.items():
            for _held, callee_name, hint, _site in summary.call_sites:
                callee_qual = resolve_call(qual, callee_name, hint)
                if callee_qual is None:
                    continue
                callee_acq = acquires.get(callee_qual, set())
                if not callee_acq <= acquires[qual]:
                    acquires[qual] |= callee_acq
                    changed = True

    # ---- pass 4: edges ----------------------------------------------------
    def add_edge(held: str, acquired: str, site: LockSite) -> None:
        report.edges.setdefault((held, acquired), [])
        if site not in report.edges[(held, acquired)]:
            report.edges[(held, acquired)].append(site)

    for summary in flat.values():
        for held, acquired, site in summary.local_edges:
            add_edge(held, acquired, site)
        for held_set, callee_name, hint, site in summary.call_sites:
            if not held_set:
                continue
            target = resolve_call(summary.qualname, callee_name, hint)
            if target is None:
                continue
            for acquired in acquires.get(target, set()):
                for held in held_set:
                    add_edge(held, acquired, site)

    # ---- pass 5: cycles + hierarchy --------------------------------------
    graph: Dict[str, Set[str]] = {}
    nodes = {canonical(d.lock_id) for d in report.locks}
    for (held, acquired) in report.edges:
        nodes.update((held, acquired))
        graph.setdefault(held, set()).add(acquired)

    report.cycles = _find_cycles(nodes, graph)
    if not report.cycles:
        report.hierarchy = _topological_levels(nodes, graph)
    return report


def _find_cycles(nodes: Set[str], graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Every elementary cycle reachable by DFS (including self-edges)."""
    cycles: List[List[str]] = []
    seen_keys: Set[Tuple[str, ...]] = set()

    def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ in on_path:
                cycle = path[path.index(succ):] + [succ]
                # Canonicalise rotation so each cycle reports once.
                body = cycle[:-1]
                pivot = body.index(min(body))
                key = tuple(body[pivot:] + body[:pivot])
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(list(key) + [key[0]])
            elif len(path) < 16:
                dfs(succ, path + [succ], on_path | {succ})

    for start in sorted(nodes):
        dfs(start, [start], {start})
    return cycles


def _topological_levels(nodes: Set[str], graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Group locks into acquisition levels, outermost (acquired first) first."""
    preds: Dict[str, Set[str]] = {n: set() for n in nodes}
    for held, succs in graph.items():
        for acquired in succs:
            preds[acquired].add(held)
    level: Dict[str, int] = {}

    def depth(node: str, trail: Set[str]) -> int:
        if node in level:
            return level[node]
        if node in trail:  # defensive; callers ensured acyclicity
            return 0
        value = (
            max((depth(p, trail | {node}) for p in preds[node]), default=-1) + 1
        )
        level[node] = value
        return value

    for node in nodes:
        depth(node, set())
    levels: List[List[str]] = []
    for node, lvl in level.items():
        while len(levels) <= lvl:
            levels.append([])
        levels[lvl].append(node)
    return [sorted(group) for group in levels]


# --------------------------------------------------------------------------
# Artifact


def hierarchy_artifact(report: LockOrderReport) -> Dict[str, object]:
    """Stable JSON form of the discovered hierarchy (committed to docs/)."""
    return {
        "locks": [
            {
                "id": d.lock_id,
                "kind": d.kind,
                "defined_at": f"{d.path}:{d.line}",
                **({"alias_of": d.alias_of} if d.alias_of else {}),
            }
            for d in sorted(report.locks, key=lambda d: d.lock_id)
        ],
        "edges": [
            {
                "held": held,
                "acquires": acquired,
                "sites": sorted(s.render() for s in sites),
            }
            for (held, acquired), sites in sorted(report.edges.items())
        ],
        "hierarchy": report.hierarchy,
    }


def check_artifact(report: LockOrderReport, artifact_path) -> Optional[str]:
    """Compare the committed artifact to the freshly computed hierarchy.

    Returns an error message when the artifact is missing or stale, else
    ``None``.
    """
    path = pathlib.Path(artifact_path)
    if not path.exists():
        return (
            f"lock hierarchy artifact {path} is missing; run "
            f"'python -m repro audit --write-lock-artifact'"
        )
    try:
        committed = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return f"lock hierarchy artifact {path} is unreadable: {exc}"
    current = hierarchy_artifact(report)
    if committed != current:
        return (
            f"lock hierarchy artifact {path} is stale (the service's lock "
            f"graph changed); review the new ordering and refresh it with "
            f"'python -m repro audit --write-lock-artifact'"
        )
    return None
