"""Suppression and role directives the audit reads out of source comments.

Two comment directives steer the lint engine:

``# audit: ignore[AUD101]`` / ``# audit: ignore[AUD101,AUD105]``
    Suppress the named rules on the directive's line.  Placed on its own
    line, the directive suppresses the *next* code line instead, so long
    explanations fit above the flagged statement.  A bare
    ``# audit: ignore`` (no rule list) is rejected by the engine — every
    suppression must say which invariant it waives.

``# audit: module-role=deterministic`` (first 10 lines of a file)
    Override the path-based role classification (see
    :data:`repro.audit.lint.ROLE_PATTERNS`).  This is how the violating /
    clean fixture snippets under ``tests/data/audit_fixtures/`` opt into
    rules that normally key off a file's location in the tree.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

_IGNORE_RE = re.compile(r"#\s*audit:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")
_ROLE_RE = re.compile(r"#\s*audit:\s*module-role=(?P<roles>[a-z\-,\s]+)")

#: How many leading lines may carry a ``module-role`` directive.
_ROLE_WINDOW = 10


@dataclass
class Directives:
    """Parsed audit directives of one source file."""

    #: line number -> rule IDs suppressed on that line ({"*"} = malformed
    #: bare ignore; the engine reports it instead of honouring it).
    ignores: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: Roles force-assigned by a ``module-role=`` directive (empty = infer
    #: from the file path).
    roles: FrozenSet[str] = frozenset()
    #: Lines carrying a bare ignore directive with no rule list.
    malformed: List[int] = field(default_factory=list)


def parse_directives(source: str) -> Directives:
    """Extract suppression/role directives from ``source``'s comments."""
    directives = Directives()
    comment_only_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return directives

    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)

    roles: Set[str] = set()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line = tok.start[0]
        role_match = _ROLE_RE.search(tok.string)
        if role_match and line <= _ROLE_WINDOW:
            roles.update(
                part.strip() for part in role_match.group("roles").split(",") if part.strip()
            )
            continue
        ignore_match = _IGNORE_RE.search(tok.string)
        if not ignore_match:
            continue
        if line not in code_lines:
            comment_only_lines.add(line)
        rules_text = ignore_match.group("rules")
        if rules_text is None or not rules_text.strip():
            directives.malformed.append(line)
            continue
        rules = frozenset(part.strip() for part in rules_text.split(",") if part.strip())
        previous = directives.ignores.get(line, frozenset())
        directives.ignores[line] = previous | rules

    # A directive on a comment-only line suppresses the next code line.
    for line in sorted(comment_only_lines):
        rules = directives.ignores.pop(line, None)
        if rules is None:
            continue
        target = line + 1
        while target in comment_only_lines or (
            target not in code_lines and target <= max(code_lines, default=line)
        ):
            target += 1
        previous = directives.ignores.get(target, frozenset())
        directives.ignores[target] = previous | rules

    directives.roles = frozenset(roles)
    return directives
