"""AUD104 + AUD105: error-path hygiene.

AUD104 — ``FilterFullError`` / ``CapacityLimitError`` must be raised with
their keyword context (occupancy snapshot / violated bound).  PR 6 enriched
both exception types precisely so retry loops, the auto-resize trigger and
the service's capacity policy can react programmatically; a bare
``raise FilterFullError("full")`` starves all of them.

AUD105 — no silently swallowed exceptions in service code.  A bare
``except:`` is flagged everywhere; in ``service``-role modules an
``except`` whose body is only ``pass`` (the classic worker-loop black
hole) is flagged too.  Genuine best-effort sites carry an
``# audit: ignore[AUD105]`` with their justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..lint import AuditModule, Rule, register

_CONTEXT_ERRORS = {
    "FilterFullError": "n_items/n_slots/load_factor/batch_offset",
    "CapacityLimitError": "requested/limit",
}


def _exception_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _check_capacity_context(module: AuditModule) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or not isinstance(node.exc, ast.Call):
            continue
        name = _exception_name(node.exc.func)
        expected = _CONTEXT_ERRORS.get(name)
        if expected is None:
            continue
        if not node.exc.keywords:
            yield (
                node.lineno,
                f"{name} raised without occupancy context; attach the "
                f"{expected} keywords so retry/resize policies can react "
                f"programmatically",
            )


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


def _check_swallowed(module: AuditModule) -> Iterator[Tuple[int, str]]:
    in_service = "service" in module.roles
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield (
                node.lineno,
                "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                "name the exceptions this handler means to absorb",
            )
        elif in_service and _body_is_silent(node):
            caught = ast.unparse(node.type)
            yield (
                node.lineno,
                f"'except {caught}: pass' silently swallows failures in "
                f"service code; record, reclassify or re-raise — or justify "
                f"the best-effort site with an ignore comment",
            )


register(
    Rule(
        rule_id="AUD104",
        name="capacity-context",
        severity="error",
        description=(
            "FilterFullError/CapacityLimitError must carry their keyword "
            "context (occupancy snapshot / violated bound)"
        ),
        roles=None,
        check=_check_capacity_context,
        established_by="PR 6 (enriched capacity errors)",
    )
)

register(
    Rule(
        rule_id="AUD105",
        name="swallowed-exception",
        severity="error",
        description=(
            "no bare 'except:' anywhere; no silent 'except X: pass' in "
            "service worker code"
        ),
        roles=None,
        check=_check_swallowed,
        established_by="PR 7 (worker pool error taxonomy)",
    )
)
