"""AUD101: bulk paths must stay vectorized.

PRs 1-4 replaced every per-item ``for`` loop in the ``bulk_*`` hot paths of
``core/`` and ``baselines/`` with whole-batch numpy algorithms — the whole
point of the reproduction's performance story.  This rule keeps them that
way: inside a ``bulk_*`` method it flags any loop or comprehension that
iterates the batch arguments per item (``for k in keys``,
``enumerate(keys)``, ``zip(keys, values)``, ``range(keys.size)``,
``range(len(keys))``) unless the loop is a *small-batch fallback* guarded
by the established size-dispatch idiom (an ``if`` testing
``prefers_sequential`` / ``_vectorisable``), or carries an explicit
``# audit: ignore[AUD101]`` waiver explaining itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..lint import AuditModule, Rule, register

#: Identifiers whose presence in an ``if`` test marks the established
#: small-batch dispatch idiom (see ``QuotientFilterCore.prefers_sequential``
#: and ``BulkTCF._vectorisable``).
GUARD_MARKERS = ("prefers_sequential", "_vectorisable")

_WRAPPERS = {"enumerate", "zip", "reversed", "iter", "sorted"}
_LOOP_NODES = (ast.For, ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)


def _batch_params(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [name for name in names if name not in ("self", "cls")]


def _names_in(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


def _iterates_batch(iter_node: ast.expr, params: List[str]) -> Optional[str]:
    """Return the batch parameter ``iter_node`` walks per item, if any."""
    if isinstance(iter_node, ast.Name) and iter_node.id in params:
        return iter_node.id
    if isinstance(iter_node, ast.Call):
        callee = iter_node.func
        if isinstance(callee, ast.Name) and callee.id in _WRAPPERS | {"range"}:
            for arg in iter_node.args:
                for name in _names_in(arg):
                    if name in params:
                        return name
    return None


def _is_guard_if(node: ast.AST) -> bool:
    if not isinstance(node, ast.If):
        return False
    test_src = ast.unparse(node.test)
    return any(marker in test_src for marker in GUARD_MARKERS)


def _statement_path(module: AuditModule, node: ast.AST, func: ast.AST) -> List[ast.AST]:
    """Ancestor chain from ``func`` (exclusive) down to ``node`` (inclusive)."""
    path = [node]
    current = node
    while current is not func:
        parent = module.parent(current)
        if parent is None:
            break
        path.append(parent)
        current = parent
    path.reverse()
    return path


def _is_guarded(module: AuditModule, node: ast.AST, func: ast.FunctionDef) -> bool:
    """True when the loop sits behind the size-dispatch idiom.

    Two accepted shapes: the loop is lexically inside a guard ``if``'s
    branch, or an earlier statement in an enclosing body is a guard ``if``
    whose vectorized branch early-exits (the try/merge-then-replay shape in
    sqf/rsqf/cpu_cqf ``bulk_insert``).
    """
    path = _statement_path(module, node, func)
    for ancestor in path[:-1]:
        if _is_guard_if(ancestor):
            return True
    # Preceding-sibling guard at any enclosing body level.
    for container, child in zip(path, path[1:]):
        for body in ("body", "orelse", "finalbody"):
            statements = getattr(container, body, None)
            if not isinstance(statements, list) or child not in statements:
                continue
            for stmt in statements[: statements.index(child)]:
                if _is_guard_if(stmt):
                    return True
    return False


def _check(module: AuditModule) -> Iterator[Tuple[int, str]]:
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not func.name.startswith("bulk_"):
            continue
        params = _batch_params(func)
        if not params:
            continue
        for node in ast.walk(func):
            if not isinstance(node, _LOOP_NODES):
                continue
            iters = (
                [node.iter]
                if isinstance(node, ast.For)
                else [gen.iter for gen in node.generators]
            )
            for iter_node in iters:
                param = _iterates_batch(iter_node, params)
                if param is None:
                    continue
                if _is_guarded(module, node, func):
                    continue
                yield (
                    node.lineno,
                    f"per-item loop over batch argument {param!r} in "
                    f"{func.name}(); bulk paths must stay vectorized — gate a "
                    f"small-batch fallback behind prefers_sequential()/"
                    f"_vectorisable() or justify with an ignore comment",
                )
                break


register(
    Rule(
        rule_id="AUD101",
        name="bulk-loop",
        severity="error",
        description=(
            "no per-item loops over batch arrays inside bulk_* methods of "
            "core/ and baselines/ (vectorization regression)"
        ),
        roles=frozenset({"bulk-api"}),
        check=_check,
        established_by="PRs 1-4",
    )
)
