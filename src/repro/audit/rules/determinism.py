"""AUD102: deterministic modules read no wall clock and no ambient RNG.

The simulated GPU (``gpusim/``), the filter cores (``core/``) and the fault
injector (``service/faults.py``) must be pure functions of their inputs:
the event accounting is calibrated against bit-exact replays, and the chaos
schedules only reproduce because every fault decision is a stable hash of
``(seed, site, token)``.  A ``time.time()`` or ``random.random()`` sneaked
into these modules breaks replay silently — this rule makes it loud.

Allowed: ``time.sleep`` (a delay, not a clock read) and explicitly seeded
numpy generators (``np.random.default_rng(seed)``, ``Generator``,
``SeedSequence``, bit generators).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..lint import AuditModule, Rule, register

#: Wall-clock reads on the stdlib ``time`` module.
_CLOCK_READS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}

#: Ambient-date constructors on ``datetime``/``date`` objects.
_DATETIME_AMBIENT = {"now", "utcnow", "today"}

#: Seeded, explicitly-constructed numpy RNG entry points that stay allowed.
_NP_RANDOM_ALLOWED = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                      "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}


def _attr_chain(node: ast.AST) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _check(module: AuditModule) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            yield (
                node.lineno,
                "import from the ambient 'random' module in a deterministic "
                "module; derive decisions from a stable hash or a seeded "
                "np.random.default_rng instead",
            )
            continue
        if not isinstance(node, ast.Attribute):
            continue
        chain = _attr_chain(node)
        if chain.startswith("time.") and node.attr in _CLOCK_READS:
            yield (
                node.lineno,
                f"wall-clock read {chain}() in a deterministic module; "
                f"deterministic replay (chaos schedules, event calibration) "
                f"must not observe real time",
            )
        elif node.attr in _DATETIME_AMBIENT and (
            chain.split(".")[-2:-1] in (["datetime"], ["date"])
        ):
            yield (
                node.lineno,
                f"ambient date/time constructor {chain}() in a deterministic "
                f"module",
            )
        elif chain.startswith("random."):
            yield (
                node.lineno,
                f"ambient RNG {chain} in a deterministic module; use a "
                f"stable hash of (seed, site, token) or a seeded generator",
            )
        elif ".random." in chain and chain.split(".")[0] in ("np", "numpy"):
            if node.attr not in _NP_RANDOM_ALLOWED:
                yield (
                    node.lineno,
                    f"ambient numpy RNG {chain}() shares global state across "
                    f"call sites; construct a seeded np.random.default_rng",
                )


register(
    Rule(
        rule_id="AUD102",
        name="ambient-nondeterminism",
        severity="error",
        description=(
            "no wall-clock reads (time.time/datetime.now) or ambient RNG "
            "(random.*, bare np.random.*) in deterministic modules "
            "(gpusim/, core/, service/faults.py)"
        ),
        roles=frozenset({"deterministic"}),
        check=_check,
        established_by="PRs 1-4 (event calibration), PR 7 (seeded chaos)",
    )
)
