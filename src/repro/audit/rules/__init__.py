"""Built-in repo-specific audit rules.

Importing this package registers every rule with the engine registry in
:mod:`repro.audit.lint`.  The shipped set (IDs are stable; see the README
rule table):

========  ======================  ========================================
ID        name                    invariant (established by)
========  ======================  ========================================
AUD101    bulk-loop               bulk paths stay vectorized (PRs 1-4)
AUD102    ambient-nondeterminism  deterministic modules read no wall clock
                                  or ambient RNG (PRs 1-4, 7)
AUD103    fsync-before-replace    persistence fsyncs before os.replace
                                  (PRs 6-7)
AUD104    capacity-context        capacity errors carry occupancy context
                                  (PR 6)
AUD105    swallowed-exception     no bare/silent exception swallowing in
                                  service code (PR 7)
AUD106    bulk-values-validation  bulk insert APIs validate keys/values
                                  like the point APIs (PR 3)
========  ======================  ========================================
"""

from . import api, determinism, errors, persistence, vectorization

__all__ = ["api", "determinism", "errors", "persistence", "vectorization"]
