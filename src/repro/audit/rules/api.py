"""AUD106: public bulk insert APIs validate inputs like the point APIs.

PR 3 fixed a family of silent-footgun bugs where a filter's ``bulk_insert``
accepted a ``values`` argument its design cannot store and dropped it on
the floor (BF/BBF/VQF), while the point ``insert`` raised.  The invariant:
a ``bulk_insert``/``bulk_insert_mask`` that declares ``values`` must
*reference* it — reject it, default it, or store it — and must normalise
``keys`` through ``np.asarray``/``np.ascontiguousarray`` with an explicit
dtype before arithmetic touches them (mixed int types overflow silently on
wide geometries; see the PR 1 uint64-fingerprint fix).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..lint import AuditModule, Rule, register

_NORMALISERS = {"asarray", "ascontiguousarray", "asanyarray"}
_TARGET_METHODS = {"bulk_insert", "bulk_insert_mask"}


def _normalises_keys(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", "")
        if name not in _NORMALISERS:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Name) and first.id == "keys":
            if any(kw.arg == "dtype" for kw in node.keywords):
                return True
    return False


def _delegates(func: ast.FunctionDef) -> bool:
    """A thin wrapper forwarding both arguments wholesale is exempt."""
    statements = [
        stmt for stmt in func.body
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
    ]
    if len(statements) != 1:
        return False
    stmt = statements[0]
    value = stmt.value if isinstance(stmt, (ast.Return, ast.Expr)) else None
    return isinstance(value, ast.Call)


def _check(module: AuditModule) -> Iterator[Tuple[int, str]]:
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name not in _TARGET_METHODS:
            continue
        args = func.args
        param_names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if "keys" not in param_names:
            continue
        if _delegates(func):
            continue
        body_names = {
            node.id
            for stmt in func.body
            for node in ast.walk(stmt)
            if isinstance(node, ast.Name)
        }
        if "values" in param_names and "values" not in body_names:
            yield (
                func.lineno,
                f"{func.name}() accepts 'values' but never references it: "
                f"values are silently dropped — reject them like the point "
                f"insert does, or store them",
            )
        if not _normalises_keys(func):
            yield (
                func.lineno,
                f"{func.name}() never normalises 'keys' via "
                f"np.asarray(keys, dtype=...); un-coerced key arrays overflow "
                f"silently on wide geometries",
            )


register(
    Rule(
        rule_id="AUD106",
        name="bulk-values-validation",
        severity="error",
        description=(
            "bulk_insert/bulk_insert_mask must validate 'values' and "
            "normalise 'keys' with an explicit dtype, like the point APIs"
        ),
        roles=frozenset({"bulk-api"}),
        check=_check,
        established_by="PR 3 (BF/BBF/VQF value rejection, PR 1 uint64 keys)",
    )
)
