"""AUD103: crash-safe persistence fsyncs before it renames.

The snapshot writer (PR 6) and the job journal (PR 7) promise that an
interrupted save leaves either the old file or the complete new one — a
promise that only holds if the temp file's bytes are durable *before*
``os.replace`` swings the name.  This rule flags, inside the persistence
modules, any function that calls ``os.replace``/``os.rename`` without an
``os.fsync`` earlier in the same function, and any use of ``os.rename``
itself (``os.replace`` is the portable atomic variant).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..lint import AuditModule, Rule, register


def _calls(func: ast.AST, module_name: str, attr: str) -> List[ast.Call]:
    found = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == attr
            and isinstance(callee.value, ast.Name)
            and callee.value.id == module_name
        ):
            found.append(node)
    return found


def _check(module: AuditModule) -> Iterator[Tuple[int, str]]:
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for rename in _calls(func, "os", "rename"):
            yield (
                rename.lineno,
                f"os.rename in {func.name}(); use os.replace — rename is not "
                f"an atomic overwrite on every platform",
            )
        replaces = _calls(func, "os", "replace")
        if not replaces:
            continue
        fsyncs = _calls(func, "os", "fsync")
        for rep in replaces:
            if not any(f.lineno < rep.lineno for f in fsyncs):
                yield (
                    rep.lineno,
                    f"os.replace in {func.name}() with no preceding os.fsync: "
                    f"the temp file's bytes must be durable before the rename, "
                    f"or a crash can publish a torn file",
                )


register(
    Rule(
        rule_id="AUD103",
        name="fsync-before-replace",
        severity="error",
        description=(
            "persistence code (lifecycle/snapshot.py, service/journal.py) "
            "must fsync written bytes before os.replace publishes them"
        ),
        roles=frozenset({"persistence"}),
        check=_check,
        established_by="PR 6 (snapshots), PR 7 (journal)",
    )
)
