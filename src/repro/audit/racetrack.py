"""Eraser-style dynamic lockset race detection for the filter service.

The classic lockset algorithm (Savage et al., *Eraser: A Dynamic Data Race
Detector for Multithreaded Programs*, TOCS 1997): every shared variable
``v`` carries a candidate lockset ``C(v)`` — the locks held at *every*
access so far.  Each access intersects ``C(v)`` with the accessing thread's
held locks; if ``C(v)`` goes empty while the variable is write-shared, no
single lock protects ``v`` and a candidate race is reported with the stack
traces of both conflicting accesses.  The state machine below avoids the
classic false positives for init-writes by the creating thread (a variable
is EXCLUSIVE to its first thread until a second thread touches it).

What lockset analysis cannot see is **happens-before through other
primitives** — here, ``queue.Queue`` handoffs (dispatcher -> worker batch
ownership) and ``threading.Event`` publication (``job._done.set()`` before
a client reads ``job.result``).  Fields whose readers synchronise that way
are monitored in ``"w"`` mode: only writes participate, so two
unsynchronised *writes* (the dangerous pattern: a lost update) are still
caught while the benign read side stays quiet.  Every ``"w"`` entry in
:data:`MONITORED_FIELDS` documents which happens-before edge excuses its
reads.

Instrumentation is whole-module but reversible: :func:`instrument_service`
swaps the service modules' ``threading`` for a shim whose locks register
acquisition with the tracker, rebinds ``registry._Entry`` so per-filter
``op_lock`` objects are tracked too (the dataclass captured the real
``threading.Lock`` in its ``field(default_factory=...)`` closure at class
creation, so patching the module attribute alone would miss them), and
wraps ``__setattr__``/``__getattribute__`` of the shared record classes
(``Job``, ``Batch``, ``_Entry``) to feed field accesses to the tracker.
"""

from __future__ import annotations

import contextlib
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

#: Shared fields the detector watches, per class, with their mode:
#: ``"rw"`` — full lockset tracking (reads and writes must share a lock);
#: ``"w"``  — writes only, because readers synchronise through a
#: happens-before edge the lockset algorithm cannot see.
MONITORED_FIELDS: Dict[str, Dict[str, str]] = {
    "Job": {
        # cancel() writes and _admit_jobs() reads both under the service
        # lock — full tracking keeps that honest.
        "cancel_requested": "rw",
        # Written under the service lock; read by the journal writer and
        # result() after job._done.set() (Event happens-before).
        "status": "w",
        "attempts": "w",
        "started_at": "w",
        "finished_at": "w",
        "result": "w",
        # Reassigned only pre-publication (see service.submit/recover).
        "_done": "w",
        "not_before": "w",
    },
    "Batch": {
        # Batches move dispatcher -> queue -> worker; the queue handoff is
        # the read side's happens-before edge.  Writes stay under the
        # service lock (see _execute/_schedule_retry).
        "jobs": "w",
        "opened_at": "w",
        "attempts": "w",
        "expands": "w",
    },
    "_Entry": {
        # Pin accounting is registry-lock protected on both sides.
        "pins": "rw",
        "last_used": "rw",
        # Written under the entry's op_lock (restore/evict/expand/replace);
        # read-side checks re-validate under op_lock (ensure_resident).
        "filt": "w",
        "snapshot_path": "w",
        "recreated": "w",
        # Written once by the single-flight winner before built.set();
        # losers read only after built.wait() (Event happens-before).
        "error": "w",
    },
}

#: Candidate races on these (class, field) pairs are reported as benign,
#: with the recorded explanation, instead of failing the audit.  Empty by
#: default: the service is expected to run clean under the modes above.
DEFAULT_BENIGN: Dict[Tuple[str, str], str] = {}

_STACK_LIMIT = 8


def _capture_stack(skip: int) -> Tuple[str, ...]:
    frames: List[str] = []
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stacks
        return ()
    while frame is not None and len(frames) < _STACK_LIMIT:
        code = frame.f_code
        name = code.co_filename.rsplit("/", 1)[-1]
        frames.append(f"{name}:{frame.f_lineno} in {code.co_name}")
        frame = frame.f_back
    return tuple(frames)


@dataclass(frozen=True)
class Access:
    """One recorded access to a monitored shared field."""

    thread: str
    is_write: bool
    locks: FrozenSet[str]
    stack: Tuple[str, ...]

    def render(self) -> str:
        kind = "write" if self.is_write else "read"
        held = ", ".join(sorted(self.locks)) or "<no locks>"
        lines = [f"{kind} by thread {self.thread!r} holding {{{held}}}"]
        lines.extend(f"    {frame}" for frame in self.stack)
        return "\n".join(lines)


@dataclass(frozen=True)
class RaceCandidate:
    """A shared field whose candidate lockset went empty while write-shared."""

    variable: str  # "ClassName.field"
    current: Access
    previous: Optional[Access]
    benign: bool
    reason: Optional[str]

    def render(self) -> str:
        head = f"candidate race on {self.variable}"
        if self.benign:
            head += f" [benign: {self.reason}]"
        parts = [head, "  access A: " + self.current.render().replace("\n", "\n  ")]
        if self.previous is not None:
            parts.append(
                "  access B: " + self.previous.render().replace("\n", "\n  ")
            )
        return "\n".join(parts)


@dataclass
class RaceReport:
    """Outcome of one instrumented run."""

    candidates: List[RaceCandidate] = field(default_factory=list)
    n_accesses: int = 0
    n_variables: int = 0

    @property
    def harmful(self) -> List[RaceCandidate]:
        return [c for c in self.candidates if not c.benign]

    @property
    def ok(self) -> bool:
        return not self.harmful

    def render(self) -> str:
        lines = [
            f"racetrack: {self.n_accesses} accesses on {self.n_variables} "
            f"shared variables, {len(self.candidates)} candidate race(s) "
            f"({len(self.harmful)} harmful)"
        ]
        for candidate in self.candidates:
            lines.append(candidate.render())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_accesses": self.n_accesses,
            "n_variables": self.n_variables,
            "n_candidates": len(self.candidates),
            "n_harmful": len(self.harmful),
            "candidates": [
                {
                    "variable": c.variable,
                    "benign": c.benign,
                    "reason": c.reason,
                    "access_a": {
                        "thread": c.current.thread,
                        "write": c.current.is_write,
                        "locks": sorted(c.current.locks),
                        "stack": list(c.current.stack),
                    },
                    "access_b": None
                    if c.previous is None
                    else {
                        "thread": c.previous.thread,
                        "write": c.previous.is_write,
                        "locks": sorted(c.previous.locks),
                        "stack": list(c.previous.stack),
                    },
                }
                for c in self.candidates
            ],
        }


# Variable states (classic Eraser, with first-thread ownership).
_VIRGIN = 0
_EXCLUSIVE = 1
_SHARED = 2
_SHARED_MODIFIED = 3


class _VarState:
    __slots__ = ("state", "owner", "lockset", "last", "reported")

    def __init__(self) -> None:
        self.state = _VIRGIN
        self.owner: Optional[str] = None
        self.lockset: Optional[FrozenSet[str]] = None
        self.last: Optional[Access] = None
        self.reported = False


class RaceTracker:
    """Collects lock acquisitions and shared-field accesses; finds races."""

    def __init__(self, benign: Optional[Dict[Tuple[str, str], str]] = None) -> None:
        self.benign = dict(DEFAULT_BENIGN)
        if benign:
            self.benign.update(benign)
        self._held = threading.local()
        self._mu = threading.Lock()
        # Variables are keyed by id(obj); a strong reference per object pins
        # its address so CPython cannot reuse the id for a new object and
        # leak a dead variable's lockset state onto it.  Audit runs are
        # bounded (a few hundred jobs/batches), so the leak is too.
        self._keep: Dict[int, object] = {}
        self._vars: Dict[Tuple[int, str], _VarState] = {}
        self._names: Dict[Tuple[int, str], str] = {}
        self._races: List[RaceCandidate] = []
        self._n_accesses = 0
        self._active = True

    # ---------------------------------------------------------- lock shim API
    def held_locks(self) -> List[str]:
        held = getattr(self._held, "stack", None)
        if held is None:
            held = self._held.stack = []
        return held

    def push_lock(self, name: str) -> None:
        self.held_locks().append(name)

    def pop_lock(self, name: str) -> None:
        held = self.held_locks()
        if name in held:  # release order may differ from acquisition order
            held.remove(name)

    # ------------------------------------------------------------- recording
    def record(self, obj: object, cls_name: str, field_name: str, is_write: bool) -> None:
        if not self._active:
            return
        key = (id(obj), field_name)
        access = Access(
            thread=threading.current_thread().name,
            is_write=is_write,
            locks=frozenset(self.held_locks()),
            stack=_capture_stack(2),
        )
        with self._mu:
            self._n_accesses += 1
            self._keep.setdefault(key[0], obj)
            self._names.setdefault(key, f"{cls_name}.{field_name}")
            var = self._vars.get(key)
            if var is None:
                var = self._vars[key] = _VarState()
            self._step(var, key, access, cls_name, field_name)
            var.last = access

    def _step(
        self,
        var: _VarState,
        key: Tuple[int, str],
        access: Access,
        cls_name: str,
        field_name: str,
    ) -> None:
        if var.reported:
            return
        if var.state == _VIRGIN:
            var.state = _EXCLUSIVE
            var.owner = access.thread
            return
        if var.state == _EXCLUSIVE:
            if access.thread == var.owner:
                return
            # Second thread: the candidate lockset starts from its held set.
            var.lockset = access.locks
            var.state = _SHARED_MODIFIED if access.is_write else _SHARED
        else:
            assert var.lockset is not None
            var.lockset = var.lockset & access.locks
            if access.is_write:
                var.state = _SHARED_MODIFIED
        if var.state == _SHARED_MODIFIED and not var.lockset:
            reason = self.benign.get((cls_name, field_name))
            self._races.append(
                RaceCandidate(
                    variable=self._names[key],
                    current=access,
                    previous=var.last,
                    benign=reason is not None,
                    reason=reason,
                )
            )
            var.reported = True

    def report(self) -> RaceReport:
        with self._mu:
            self._active = False
            return RaceReport(
                candidates=list(self._races),
                n_accesses=self._n_accesses,
                n_variables=len(self._vars),
            )


# --------------------------------------------------------------------------
# instrumentation
# --------------------------------------------------------------------------
class TrackedLock:
    """A ``threading.Lock`` work-alike that reports to a :class:`RaceTracker`."""

    def __init__(self, tracker: RaceTracker, name: str, factory=threading.Lock) -> None:
        self._tracker = tracker
        self.name = name
        self._inner = factory()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._tracker.push_lock(self.name)
        return ok

    def release(self) -> None:
        self._tracker.pop_lock(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


class _ThreadingShim:
    """Stands in for the ``threading`` module inside instrumented modules.

    ``Lock``/``RLock`` hand out :class:`TrackedLock` s; everything else
    (``Thread``, ``Event``, ``Condition``, ``local``, ...) passes through.
    ``threading.Condition(tracked_lock)`` works unchanged because Condition
    only needs ``acquire``/``release`` on the lock it wraps.
    """

    def __init__(self, tracker: RaceTracker) -> None:
        self._tracker = tracker
        self._seq = 0
        self._seq_mu = threading.Lock()

    def _name(self, kind: str) -> str:
        with self._seq_mu:
            self._seq += 1
            return f"{kind}#{self._seq}"

    def Lock(self) -> TrackedLock:
        return TrackedLock(self._tracker, self._name("Lock"))

    def RLock(self) -> TrackedLock:
        return TrackedLock(self._tracker, self._name("RLock"), factory=threading.RLock)

    def __getattr__(self, item: str):
        return getattr(threading, item)


def _patch_class(cls: type, field_modes: Dict[str, str], tracker: RaceTracker):
    """Wrap ``cls``'s attribute access to feed the tracker; returns an undo."""
    cls_name = cls.__name__
    orig_setattr = cls.__setattr__
    orig_getattribute = cls.__getattribute__
    read_fields = frozenset(f for f, mode in field_modes.items() if mode == "rw")
    watched = frozenset(field_modes)

    def tracked_setattr(self, name, value, _w=watched, _t=tracker, _o=orig_setattr):
        if name in _w:
            _t.record(self, cls_name, name, is_write=True)
        _o(self, name, value)

    cls.__setattr__ = tracked_setattr  # type: ignore[method-assign]
    patched_get = False
    if read_fields:
        def tracked_getattribute(self, name, _r=read_fields, _t=tracker, _o=orig_getattribute):
            value = _o(self, name)
            if name in _r:
                _t.record(self, cls_name, name, is_write=False)
            return value

        cls.__getattribute__ = tracked_getattribute  # type: ignore[method-assign]
        patched_get = True

    def undo() -> None:
        cls.__setattr__ = orig_setattr  # type: ignore[method-assign]
        if patched_get:
            cls.__getattribute__ = orig_getattribute  # type: ignore[method-assign]

    return undo


@contextlib.contextmanager
def instrument_service(
    tracker: Optional[RaceTracker] = None,
    benign: Optional[Dict[Tuple[str, str], str]] = None,
):
    """Instrument the service layer; yields the :class:`RaceTracker`.

    Everything is restored on exit, including the ``_Entry`` rebinding and
    the shared classes' attribute hooks.  Services/registries constructed
    *inside* the context are tracked; existing instances keep their real
    locks (their accesses are still recorded, with an empty held set, so
    instrument first, construct second).
    """
    from ..service import batcher as batcher_module
    from ..service import jobs as jobs_module
    from ..service import journal as journal_module
    from ..service import registry as registry_module
    from ..service import service as service_module

    tracker = tracker or RaceTracker(benign=benign)
    shim = _ThreadingShim(tracker)
    undo_stack = []

    for module in (service_module, registry_module, journal_module):
        original = module.threading
        module.threading = shim  # type: ignore[attr-defined]
        undo_stack.append(lambda m=module, o=original: setattr(m, "threading", o))

    # _Entry's dataclass machinery captured the real threading.Lock inside
    # the field(default_factory=...) closure at class-definition time, so
    # the module shim cannot reach op_lock; a subclass swaps it post-init.
    original_entry = registry_module._Entry

    class _TrackedEntry(original_entry):  # type: ignore[misc,valid-type]
        def __init__(self, *args, **kwargs) -> None:
            super().__init__(*args, **kwargs)
            self.op_lock = TrackedLock(tracker, f"op_lock[{self.name}]")

    _TrackedEntry.__name__ = original_entry.__name__
    registry_module._Entry = _TrackedEntry  # type: ignore[attr-defined]
    undo_stack.append(
        lambda: setattr(registry_module, "_Entry", original_entry)
    )

    for cls, fields in (
        (jobs_module.Job, MONITORED_FIELDS["Job"]),
        (batcher_module.Batch, MONITORED_FIELDS["Batch"]),
        (original_entry, MONITORED_FIELDS["_Entry"]),
    ):
        undo_stack.append(_patch_class(cls, fields, tracker))

    try:
        yield tracker
    finally:
        while undo_stack:
            undo_stack.pop()()


# --------------------------------------------------------------------------
# harness
# --------------------------------------------------------------------------
def run_race_audit(
    workdir,
    benign: Optional[Dict[Tuple[str, str], str]] = None,
    with_recovery: bool = True,
) -> RaceReport:
    """Run the chaos traffic scenario under instrumentation; returns a report.

    This is the ``audit`` mode of the chaos smoke: the same seeded fault
    schedule as ``tests/test_service_chaos.py``, with every service lock
    tracked and every shared record field monitored.
    """
    from ..service.faults import FaultConfig
    from ..service.traffic import TrafficConfig, run_traffic

    traffic = TrafficConfig(
        n_clients=4, jobs_per_client=6, keys_per_job=32, fixed_tenant_slots=128
    )
    faults = FaultConfig(
        seed=0xC0A5,
        worker_crash_rate=0.25,
        slow_batch_rate=0.20,
        slow_batch_s=0.002,
        filter_full_rate=0.15,
    )
    with instrument_service(benign=benign) as tracker:
        run_traffic(
            workdir,
            traffic=traffic,
            faults=faults,
            with_recovery=with_recovery,
        )
    return tracker.report()
