"""Applications built on the filters: MetaHipMer k-mer analysis and k-mer counting."""

from .kmer_counter import GPUKmerCounter, KmerCountReport
from .metahipmer import (
    HASH_TABLE_ENTRY_BYTES,
    KmerAnalysisPhase,
    KmerAnalysisResult,
    SimpleKmerHashTable,
    dataset_kmer_statistics,
    memory_reduction,
    run_table3,
    run_table3_row,
)

__all__ = [
    "GPUKmerCounter",
    "KmerCountReport",
    "HASH_TABLE_ENTRY_BYTES",
    "KmerAnalysisPhase",
    "KmerAnalysisResult",
    "SimpleKmerHashTable",
    "dataset_kmer_statistics",
    "memory_reduction",
    "run_table3",
    "run_table3_row",
]
