"""MetaHipMer k-mer analysis phase with TCF singleton filtering (Table 3).

MetaHipMer (MHM) is an extreme-scale de-novo metagenome assembler.  Its
k-mer analysis phase is the most memory-hungry stage: every k-mer extracted
from the raw reads is counted in a distributed hash table, and in real
metagenomes up to ~70 % of distinct k-mers are *singletons* (sequencing
errors) that are discarded later anyway.  The paper integrates the TCF as a
pre-filter: a k-mer is only promoted to the hash table the *second* time it
is seen, so singletons never consume a hash-table entry.  Table 3 reports the
aggregate memory with and without the TCF for two datasets (WA, 813 GB of
Western Arctic Ocean reads, and Rhizo, 129 GB of biofuel-crop rhizosphere
reads) on 64 GPU nodes; the TCF cuts total application memory by ~38 %.

We cannot ship terabytes of reads, so the reproduction has two layers:

* :class:`KmerAnalysisPhase` runs the *functional* pipeline on synthetic read
  sets (singleton-heavy, from :mod:`repro.workloads.kmer`), using a real TCF
  and a plain hash table, and reports the measured memory of both;
* :func:`run_table3` scales that per-k-mer accounting to the distinct-k-mer
  counts of the paper's datasets (derived from the published hash-table
  memory), reproducing the WA / Rhizo rows of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.exceptions import FilterFullError
from ..core.tcf import POINT_TCF_DEFAULT, PointTCF, TCFConfig
from ..gpusim.memory import DeviceAllocator
from ..gpusim.stats import StatsRecorder
from ..workloads import kmer as kmer_mod

#: Bytes per hash-table entry in MHM's k-mer hash table (key + count +
#: extension fields); derived from the published aggregate numbers.
HASH_TABLE_ENTRY_BYTES = 64
#: Bytes per TCF slot at the 16-bit configuration used for MHM.
TCF_SLOT_BYTES = 2


@dataclass
class KmerAnalysisResult:
    """Memory accounting of one k-mer analysis run."""

    dataset: str
    use_tcf: bool
    n_nodes: int
    distinct_kmers: int
    singleton_kmers: int
    tcf_bytes: int
    hash_table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.tcf_bytes + self.hash_table_bytes

    @property
    def singleton_fraction(self) -> float:
        if self.distinct_kmers == 0:
            return 0.0
        return self.singleton_kmers / self.distinct_kmers

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "method": "TCF" if self.use_tcf else "No TCF",
            "nodes": self.n_nodes,
            "tcf_mem_gb": self.tcf_bytes / 1e9,
            "ht_mem_gb": self.hash_table_bytes / 1e9,
            "total_mem_gb": self.total_bytes / 1e9,
        }


class SimpleKmerHashTable:
    """The k-mer counting hash table MHM uses downstream of the filter.

    Open-addressing table storing (k-mer, count); each entry costs
    :data:`HASH_TABLE_ENTRY_BYTES`.  Only the memory accounting matters for
    Table 3, but the table is fully functional so the integration test can
    verify that filtering does not change the non-singleton counts.
    """

    def __init__(self, allocator: Optional[DeviceAllocator] = None) -> None:
        self.counts: Dict[int, int] = {}
        self.allocator = allocator

    def add(self, kmer: int, count: int = 1) -> None:
        self.counts[int(kmer)] = self.counts.get(int(kmer), 0) + int(count)
        if self.allocator is not None:
            self.allocator.allocations["kmer-hash-table"] = self.nbytes

    def count(self, kmer: int) -> int:
        return self.counts.get(int(kmer), 0)

    @property
    def n_entries(self) -> int:
        return len(self.counts)

    @property
    def nbytes(self) -> int:
        return self.n_entries * HASH_TABLE_ENTRY_BYTES


class KmerAnalysisPhase:
    """Functional MHM k-mer analysis phase: TCF pre-filter + hash table.

    Parameters
    ----------
    expected_kmers:
        Number of k-mers the phase expects (sizes the TCF).
    use_tcf:
        When False the phase inserts every k-mer straight into the hash
        table (the "No TCF" rows of Table 3).
    k:
        k-mer length.
    """

    def __init__(
        self,
        expected_kmers: int,
        use_tcf: bool = True,
        k: int = 21,
        config: TCFConfig = POINT_TCF_DEFAULT,
    ) -> None:
        self.k = int(k)
        self.use_tcf = bool(use_tcf)
        self.allocator = DeviceAllocator()
        self.recorder = StatsRecorder()
        self.hash_table = SimpleKmerHashTable(self.allocator)
        self.tcf: Optional[PointTCF] = None
        if use_tcf:
            self.tcf = PointTCF.for_capacity(max(64, expected_kmers), config, self.recorder)
            self.allocator.register("tcf", self.tcf.nbytes)

    # ------------------------------------------------------------------ pipeline
    def process_kmer(self, kmer: int) -> None:
        """Process one k-mer occurrence.

        With the TCF: the first occurrence goes into the filter only; the
        second occurrence promotes the k-mer to the hash table with count 2;
        later occurrences increment the hash table.  Without the TCF every
        occurrence goes straight to the hash table.
        """
        kmer = int(kmer)
        if not self.use_tcf or self.tcf is None:
            self.hash_table.add(kmer)
            return
        if self.hash_table.count(kmer) > 0:
            self.hash_table.add(kmer)
            return
        if self.tcf.query(kmer):
            # Second sighting: promote with both occurrences.
            self.hash_table.add(kmer, 2)
        else:
            try:
                self.tcf.insert(kmer)
            except FilterFullError:
                # Degrade gracefully: promote immediately rather than drop.
                self.hash_table.add(kmer)

    def process_kmers(self, kmers: np.ndarray) -> None:
        """Process a batch of k-mer occurrences (the per-item loop, batched).

        Replays :meth:`process_kmer`'s sequential semantics with whole-batch
        operations.  Within one batch the hash table changes as k-mers are
        promoted, so a k-mer's occurrences resolve positionally: for a k-mer
        already in the hash table all ``m`` occurrences increment it (+m);
        for a k-mer already in the TCF the first occurrence promotes with
        count 2 and the rest increment (+m+1); for a new k-mer the first
        occurrence inserts into the TCF and the remainder promote-then-
        increment (+m when m >= 2, nothing for singletons).  K-mers the TCF
        cannot hold degrade gracefully to direct counting (+m), exactly as
        the per-item loop's ``FilterFullError`` handler does.
        """
        kmers = np.asarray(kmers, dtype=np.uint64)
        if kmers.size == 0:
            return
        if not self.use_tcf or self.tcf is None:
            distinct, counts = np.unique(kmers, return_counts=True)
            for kmer, count in zip(distinct.tolist(), counts.tolist()):
                self.hash_table.add(kmer, count)
            return
        distinct, counts = np.unique(kmers, return_counts=True)
        table = self.hash_table.counts
        known = np.fromiter(
            (int(kmer) in table for kmer in distinct.tolist()), bool, distinct.size
        )
        unknown = distinct[~known]
        in_tcf = (
            self.tcf.bulk_query(unknown)
            if unknown.size
            else np.zeros(0, dtype=bool)
        )
        new = unknown[~in_tcf]
        placed = (
            self.tcf.bulk_insert_mask(new) if new.size else np.zeros(0, dtype=bool)
        )
        additions = np.zeros(distinct.size, dtype=np.int64)
        additions[known] = counts[known]
        unknown_add = np.where(in_tcf, counts[~known] + 1, 0)
        # TCF-new k-mers: singletons stay out of the table, multi-occurrence
        # k-mers promote to their full count; unplaceable k-mers (TCF full)
        # count every occurrence directly.
        new_counts = counts[~known][~in_tcf]
        unknown_add[~in_tcf] = np.where(
            placed, np.where(new_counts >= 2, new_counts, 0), new_counts
        )
        additions[~known] = unknown_add
        adding = additions > 0
        for kmer, count in zip(distinct[adding].tolist(), additions[adding].tolist()):
            self.hash_table.add(kmer, count)

    def process_read_set(self, read_set: kmer_mod.ReadSet) -> None:
        """Extract and process every canonical k-mer of a read set."""
        self.process_kmers(kmer_mod.extract_kmers(read_set, self.k))

    # ------------------------------------------------------------------ results
    def memory_report(self) -> Dict[str, int]:
        """Bytes used by the TCF and the hash table."""
        return {
            "tcf_bytes": self.tcf.nbytes if self.tcf is not None else 0,
            "hash_table_bytes": self.hash_table.nbytes,
        }

    def non_singleton_counts(self) -> Dict[int, int]:
        """The hash table contents (k-mer -> count), for verification."""
        return dict(self.hash_table.counts)


# --------------------------------------------------------------------------
# Table 3
# --------------------------------------------------------------------------
#: Dataset parameters derived from the paper's Table 3: aggregate hash-table
#: memory without the TCF divided by the per-entry cost gives the distinct
#: k-mer count; the with-TCF hash-table memory gives the non-singleton count.
PAPER_DATASETS = {
    "WA": {
        "raw_size_gb": 813,
        "nodes": 64,
        "paper_no_tcf_ht_gb": 1742,
        "paper_tcf_ht_gb": 594,
        "paper_tcf_mem_gb": 13,
        "paper_total_tcf_gb": 607,
        "paper_total_no_tcf_gb": 1742,
    },
    "Rhizo": {
        "raw_size_gb": 129,
        "nodes": 64,
        "paper_no_tcf_ht_gb": 790,
        "paper_tcf_ht_gb": 119,
        "paper_tcf_mem_gb": 27,
        "paper_total_tcf_gb": 146,
        "paper_total_no_tcf_gb": 790,
    },
}


def dataset_kmer_statistics(name: str) -> Dict[str, float]:
    """Distinct/singleton k-mer counts implied by the paper's memory numbers."""
    params = PAPER_DATASETS[name]
    distinct = params["paper_no_tcf_ht_gb"] * 1e9 / HASH_TABLE_ENTRY_BYTES
    non_singleton = params["paper_tcf_ht_gb"] * 1e9 / HASH_TABLE_ENTRY_BYTES
    singleton = distinct - non_singleton
    return {
        "distinct_kmers": distinct,
        "non_singleton_kmers": non_singleton,
        "singleton_kmers": singleton,
        "singleton_fraction": singleton / distinct,
    }


def run_table3_row(
    name: str,
    use_tcf: bool,
    measured_singleton_fraction: Optional[float] = None,
) -> KmerAnalysisResult:
    """Scale the per-k-mer memory accounting to one paper dataset.

    ``measured_singleton_fraction`` (from a functional run on synthetic
    reads) can override the fraction implied by the paper, which is how the
    benchmark demonstrates that the accounting — not the constants — drives
    the result.
    """
    params = PAPER_DATASETS[name]
    stats = dataset_kmer_statistics(name)
    distinct = stats["distinct_kmers"]
    singleton_fraction = (
        measured_singleton_fraction
        if measured_singleton_fraction is not None
        else stats["singleton_fraction"]
    )
    singletons = distinct * singleton_fraction
    non_singletons = distinct - singletons
    if use_tcf:
        tcf_slots = distinct / 0.9  # sized for every distinct k-mer at 90 % load
        tcf_bytes = int(tcf_slots * TCF_SLOT_BYTES)
        ht_bytes = int(non_singletons * HASH_TABLE_ENTRY_BYTES)
    else:
        tcf_bytes = 0
        ht_bytes = int(distinct * HASH_TABLE_ENTRY_BYTES)
    return KmerAnalysisResult(
        dataset=name,
        use_tcf=use_tcf,
        n_nodes=params["nodes"],
        distinct_kmers=int(distinct),
        singleton_kmers=int(singletons),
        tcf_bytes=tcf_bytes,
        hash_table_bytes=ht_bytes,
    )


def run_table3(measured_singleton_fraction: Optional[float] = None) -> List[KmerAnalysisResult]:
    """Reproduce Table 3: TCF vs no-TCF memory for the WA and Rhizo datasets."""
    rows: List[KmerAnalysisResult] = []
    for name in PAPER_DATASETS:
        rows.append(run_table3_row(name, use_tcf=True,
                                    measured_singleton_fraction=measured_singleton_fraction))
        rows.append(run_table3_row(name, use_tcf=False,
                                    measured_singleton_fraction=measured_singleton_fraction))
    return rows


def memory_reduction(rows: List[KmerAnalysisResult]) -> Dict[str, float]:
    """Fractional total-memory reduction from using the TCF, per dataset."""
    by_dataset: Dict[str, Dict[bool, KmerAnalysisResult]] = {}
    for row in rows:
        by_dataset.setdefault(row.dataset, {})[row.use_tcf] = row
    out: Dict[str, float] = {}
    for dataset, pair in by_dataset.items():
        if True in pair and False in pair and pair[False].total_bytes:
            out[dataset] = 1.0 - pair[True].total_bytes / pair[False].total_bytes
    return out
