"""GPU k-mer counter built on the GQF (a Squeakr-on-GPU).

Squeakr is a CPU k-mer counting system built on the counting quotient
filter.  The paper points out that with the GQF, Squeakr ports directly to
the GPU and counts more than 500 million k-mers per second (Table 5's
"k-mer count" column) — orders of magnitude faster than the CPU system.

:class:`GPUKmerCounter` is that application: reads go in, canonical k-mers
are extracted, optionally pre-filtered for singletons with a TCF (the
MetaHipMer trick), and counted in a bulk GQF using the sorted even-odd
insertion path.  Count queries come back from the same structure, with the
counting filter's one-sided error guarantee (counts are never
under-reported).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.gqf import BulkGQF
from ..core.tcf import PointTCF
from ..gpusim.sorting import group_ranks, run_first_mask
from ..gpusim.stats import StatsRecorder
from ..workloads import kmer as kmer_mod


@dataclass
class KmerCountReport:
    """Summary statistics of one counting run."""

    n_reads: int
    n_kmers: int
    n_distinct: int
    n_singletons: int
    filter_load_factor: float

    @property
    def singleton_fraction(self) -> float:
        if self.n_distinct == 0:
            return 0.0
        return self.n_singletons / self.n_distinct


class GPUKmerCounter:
    """Count canonical k-mers of a read set in a GQF.

    Parameters
    ----------
    expected_kmers:
        Expected number of distinct k-mers (sizes the filter).
    k:
        k-mer length (<= 32).
    remainder_bits:
        GQF remainder width; 8 bits gives the ~0.2 % error rate used in the
        paper's counting benchmarks.
    exclude_singletons:
        When True, a TCF pre-filter keeps first-occurrence k-mers out of the
        GQF (the MetaHipMer configuration).
    use_mapreduce:
        Aggregate each batch with sort + reduce_by_key before insertion.
    """

    def __init__(
        self,
        expected_kmers: int,
        k: int = 21,
        remainder_bits: int = 8,
        exclude_singletons: bool = False,
        use_mapreduce: bool = True,
        recorder: Optional[StatsRecorder] = None,
    ) -> None:
        if not 1 <= k <= 32:
            raise ValueError("k must be in [1, 32]")
        self.k = int(k)
        self.recorder = recorder if recorder is not None else StatsRecorder()
        quotient_bits = max(6, int(np.ceil(np.log2(max(64, expected_kmers) / 0.85))))
        self.gqf = BulkGQF(
            quotient_bits,
            remainder_bits,
            region_slots=1024,
            use_mapreduce=use_mapreduce,
            recorder=self.recorder,
        )
        self.exclude_singletons = bool(exclude_singletons)
        self.tcf: Optional[PointTCF] = None
        if exclude_singletons:
            self.tcf = PointTCF.for_capacity(max(64, expected_kmers), recorder=self.recorder)
        self._n_reads = 0
        self._n_kmers = 0

    # ------------------------------------------------------------------ counting
    def count_reads(self, read_set: kmer_mod.ReadSet) -> KmerCountReport:
        """Extract, (optionally) filter and count every k-mer of a read set."""
        kmers = kmer_mod.extract_kmers(read_set, self.k)
        return self.count_kmers(kmers, n_reads=read_set.n_reads)

    def count_kmers(self, kmers: np.ndarray, n_reads: int = 0) -> KmerCountReport:
        """Count a flat k-mer stream (bulk insertion into the GQF)."""
        kmers = np.asarray(kmers, dtype=np.uint64)
        self._n_reads += int(n_reads)
        self._n_kmers += int(kmers.size)
        if self.exclude_singletons and self.tcf is not None:
            self._promote_batch(kmers)
        else:
            self.gqf.bulk_insert(kmers)
        distinct, counts = kmer_mod.kmer_spectrum(kmers)
        return KmerCountReport(
            n_reads=self._n_reads,
            n_kmers=self._n_kmers,
            n_distinct=int(distinct.size),
            n_singletons=int(np.count_nonzero(counts == 1)),
            filter_load_factor=self.gqf.load_factor,
        )

    def _promote_batch(self, kmers: np.ndarray) -> None:
        """Batched two-pass TCF promotion (the per-item loop, vectorised).

        The sequential loop checks each occurrence against the GQF (whose
        counts only change *after* the whole batch, when the promoted
        multiset is bulk-inserted) and then against the TCF (which changes
        *during* the batch as first occurrences are inserted).  The batched
        equivalent therefore resolves the GQF membership and the pre-batch
        TCF membership with whole-batch lookups and reconstructs the
        intra-batch ordering effects positionally: occurrences of one k-mer
        are ranked by a stable sort, the first occurrence of a TCF-new k-mer
        inserts (and promotes nothing), and every other unknown occurrence
        promotes two copies — exactly the multiset the per-item loop builds.
        """
        known = self.gqf.bulk_count(kmers) > 0
        promote = np.zeros(kmers.size, dtype=np.int64)
        promote[known] = 1
        unknown = kmers[~known]
        if unknown.size:
            order = np.argsort(unknown, kind="stable")
            grouped = unknown[order]
            occ_rank = np.empty(unknown.size, dtype=np.int64)
            occ_rank[order] = group_ranks(grouped)
            firsts = run_first_mask(grouped)
            distinct = grouped[firsts]
            in_tcf = self.tcf.bulk_query(distinct)
            in_tcf_occ = np.empty(unknown.size, dtype=bool)
            in_tcf_occ[order] = in_tcf[np.cumsum(firsts) - 1]
            # Pre-known in the TCF: every occurrence promotes two copies.
            # TCF-new: the first occurrence inserts, the rest promote two.
            promote[~known] = np.where(in_tcf_occ | (occ_rank > 0), 2, 0)
            to_insert = distinct[~in_tcf]
            if to_insert.size:
                self.tcf.bulk_insert(to_insert)
        promoting = promote > 0
        if promoting.any():
            self.gqf.bulk_insert(kmers[promoting], values=promote[promoting])

    # ------------------------------------------------------------------- queries
    def count(self, kmer: int) -> int:
        """Count estimate of a packed k-mer (never an under-count)."""
        return self.gqf.count(int(kmer))

    def count_sequence(self, sequence: str) -> int:
        """Count estimate of a k-mer given as an ACGT string."""
        codes = kmer_mod.sequence_to_codes(sequence)
        if codes.size != self.k:
            raise ValueError(f"expected a {self.k}-mer, got length {codes.size}")
        packed = kmer_mod.pack_kmers(codes, self.k)[0]
        canonical = kmer_mod.canonical_kmers(np.array([packed], dtype=np.uint64), self.k)[0]
        return self.gqf.count(int(canonical))

    def heavy_hitters(self, kmers: Sequence[int], threshold: int) -> Dict[int, int]:
        """Return the queried k-mers whose count estimate reaches a threshold."""
        out: Dict[int, int] = {}
        for kmer in kmers:
            count = self.count(int(kmer))
            if count >= threshold:
                out[int(kmer)] = count
        return out
