"""repro — reproduction of *High-Performance Filters for GPUs* (PPoPP 2023).

The package provides:

* :mod:`repro.core` — the paper's contribution: the Two-Choice Filter (TCF)
  and the GPU Counting Quotient Filter (GQF), with point and bulk APIs;
* :mod:`repro.baselines` — the comparison filters (Bloom, blocked Bloom,
  SQF, RSQF, CPU CQF, CPU VQF);
* :mod:`repro.gpusim` — the GPU execution-model simulator substituting for
  CUDA hardware (device memory, atomics, cooperative groups, perf model);
* :mod:`repro.hashing` — mixers, XORWOW generation, POTC and fingerprinting;
* :mod:`repro.workloads` — microbenchmark and k-mer workload generators;
* :mod:`repro.apps` — the MetaHipMer k-mer analysis and k-mer counting
  applications;
* :mod:`repro.analysis` — the benchmark harness that regenerates every table
  and figure of the paper's evaluation;
* :mod:`repro.lifecycle` — versioned filter snapshots (``filter.save`` /
  ``FilterClass.load``), k-way merge, and online resize.

Quickstart::

    from repro import PointTCF
    tcf = PointTCF.for_capacity(10_000)
    tcf.insert(42)
    assert 42 in tcf
"""

from .core import (
    AbstractFilter,
    BulkGQF,
    BulkTCF,
    FilterCapabilities,
    FilterFullError,
    PointGQF,
    PointTCF,
    TCFConfig,
    UnsupportedOperationError,
)

__version__ = "1.0.0"

__all__ = [
    "AbstractFilter",
    "BulkGQF",
    "BulkTCF",
    "FilterCapabilities",
    "FilterFullError",
    "PointGQF",
    "PointTCF",
    "TCFConfig",
    "UnsupportedOperationError",
    "__version__",
]
