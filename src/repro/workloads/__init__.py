"""Workload generators for the microbenchmarks and counting benchmarks."""

from . import distributions, kmer
from .generators import (
    CountingDataset,
    Workload,
    dataset_by_name,
    uniform_count_dataset,
    uniform_random_dataset,
    uniform_workload,
    zipfian_count_dataset,
)

__all__ = [
    "distributions",
    "kmer",
    "CountingDataset",
    "Workload",
    "dataset_by_name",
    "uniform_count_dataset",
    "uniform_random_dataset",
    "uniform_workload",
    "zipfian_count_dataset",
]
