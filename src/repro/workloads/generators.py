"""Microbenchmark workload generators (paper Section 6 setup).

The paper's microbenchmarks generate 64-bit input items from the hashed
output of a cuRand XORWOW generator, fill each filter to its maximum
recommended load factor, query the inserted items ("positive queries") and a
disjoint set generated with a different seed ("random queries").  The
counting benchmarks add datasets whose item counts follow uniform-random and
Zipfian distributions.

:class:`Workload` bundles an insert set, a positive-query set and a
random-query set; :class:`CountingDataset` expands a (distinct items, counts)
description into the flat insertion stream the GQF receives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hashing.xorwow import generate_keys
from . import distributions


@dataclass
class Workload:
    """Insert / positive-query / random-query key sets for one benchmark run."""

    insert_keys: np.ndarray
    positive_queries: np.ndarray
    random_queries: np.ndarray
    name: str = "uniform"

    @property
    def n_items(self) -> int:
        return int(self.insert_keys.size)


def uniform_workload(
    n_items: int,
    n_queries: Optional[int] = None,
    seed: int = 0xC0FFEE,
) -> Workload:
    """The paper's standard microbenchmark workload.

    Insert keys come from one XORWOW stream; random (negative) queries come
    from a stream with a different seed; positive queries re-use the inserted
    keys (shuffled, as a query batch would arrive).
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    n_queries = n_queries if n_queries is not None else n_items
    insert_keys = generate_keys(n_items, seed)
    rng = np.random.default_rng(seed ^ 0x5A5A5A5A)
    positive = insert_keys[rng.permutation(n_items)][:n_queries]
    random_queries = generate_keys(n_queries, seed ^ 0xDEADBEEF)
    return Workload(insert_keys, positive, random_queries, name="uniform")


@dataclass
class CountingDataset:
    """A multiset dataset for the counting benchmarks (Table 5).

    Attributes
    ----------
    name:
        Dataset label ("UR", "UR count", "Zipfian count", "k-mer count").
    keys:
        The flat stream of (possibly repeated) 64-bit items, in insertion
        order.
    distinct_keys:
        The distinct item values.
    counts:
        Count of each distinct item (aligned with ``distinct_keys``).
    """

    name: str
    keys: np.ndarray
    distinct_keys: np.ndarray
    counts: np.ndarray

    @property
    def n_items(self) -> int:
        """Total number of insertions (multiset cardinality)."""
        return int(self.keys.size)

    @property
    def n_distinct(self) -> int:
        return int(self.distinct_keys.size)

    @property
    def duplication_ratio(self) -> float:
        """Average number of occurrences per distinct item."""
        if self.n_distinct == 0:
            return 0.0
        return self.n_items / self.n_distinct


def _expand(distinct_keys: np.ndarray, counts: np.ndarray, seed: int) -> np.ndarray:
    """Expand (key, count) pairs into a shuffled flat insertion stream."""
    flat = np.repeat(distinct_keys, counts)
    rng = np.random.default_rng(seed)
    return flat[rng.permutation(flat.size)]


def uniform_random_dataset(n_items: int, seed: int = 1) -> CountingDataset:
    """UR: items drawn uniformly at random — almost no duplicates."""
    keys = generate_keys(n_items, seed)
    distinct, counts = np.unique(keys, return_counts=True)
    return CountingDataset("UR", keys, distinct, counts)


def uniform_count_dataset(
    n_items: int,
    low: int = 1,
    high: int = 100,
    seed: int = 2,
) -> CountingDataset:
    """UR count: counts drawn uniformly from [1, 100].

    ``n_items`` is the total insertion count; the number of distinct items is
    derived from the mean count so the dataset sums to ~``n_items``.
    """
    mean_count = (low + high) / 2.0
    n_distinct = max(1, int(round(n_items / mean_count)))
    counts = distributions.uniform_counts(n_distinct, low, high, seed)
    # Adjust the sampled counts so the dataset totals ~n_items while every
    # count stays within [low, high].
    while int(counts.sum()) > n_items and counts.max() > low:
        excess = int(counts.sum()) - n_items
        order = np.argsort(counts)[::-1]
        reducible = order[counts[order] > low][:excess]
        if reducible.size == 0:
            break
        counts[reducible] -= 1
    while int(counts.sum()) < n_items and counts.min() < high:
        deficit = n_items - int(counts.sum())
        order = np.argsort(counts)
        growable = order[counts[order] < high][:deficit]
        if growable.size == 0:
            break
        counts[growable] += 1
    distinct = generate_keys(n_distinct, seed ^ 0xABCD)
    keys = _expand(distinct, counts, seed)
    return CountingDataset("UR count", keys, distinct, counts)


def zipfian_count_dataset(
    n_items: int,
    coefficient: float = 1.5,
    seed: int = 3,
) -> CountingDataset:
    """Zipfian count: counts from Zipf(1.5) over a universe of ``n_items`` items."""
    counts_full = distributions.zipfian_counts(n_items, n_items, coefficient, seed)
    nonzero = counts_full > 0
    counts = counts_full[nonzero]
    distinct = generate_keys(int(nonzero.sum()), seed ^ 0x1234)
    keys = _expand(distinct, counts, seed)
    return CountingDataset("Zipfian count", keys, distinct, counts)


def dataset_by_name(name: str, n_items: int, seed: int = 7) -> CountingDataset:
    """Factory used by the Table 5 benchmark harness."""
    key = name.strip().lower()
    if key in ("ur", "uniform", "uniform-random"):
        return uniform_random_dataset(n_items, seed)
    if key in ("ur count", "ur-count", "uniform count"):
        return uniform_count_dataset(n_items, seed=seed)
    if key in ("zipfian", "zipfian count", "zipf"):
        return zipfian_count_dataset(n_items, seed=seed)
    raise ValueError(f"unknown counting dataset {name!r}")
