"""Count-distribution samplers used by the counting benchmarks.

Table 5 evaluates GQF counting on three synthetic distributions plus a
genomic dataset:

* **UR** — uniform-random items, essentially no duplicates;
* **UR count** — item counts drawn uniformly from [1, 100];
* **Zipfian count** — item counts drawn from a Zipfian distribution with
  coefficient 1.5 over a universe the same size as the dataset.

This module provides the samplers (a bounded Zipfian needs care: NumPy's
``zipf`` is unbounded, so we sample from the normalised truncated power law
directly) plus helpers used by tests to validate the skew.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def zipfian_weights(universe_size: int, coefficient: float = 1.5) -> np.ndarray:
    """Normalised Zipf(``coefficient``) probabilities over ranks 1..universe.

    ``p(rank) ∝ rank^-coefficient``.
    """
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    if coefficient <= 0:
        raise ValueError("coefficient must be positive")
    ranks = np.arange(1, universe_size + 1, dtype=np.float64)
    weights = ranks ** (-coefficient)
    weights /= weights.sum()
    return weights


def sample_zipfian_ranks(
    n_samples: int,
    universe_size: int,
    coefficient: float = 1.5,
    seed: int = 0,
) -> np.ndarray:
    """Draw ``n_samples`` ranks (0-based) from a truncated Zipfian.

    Uses inverse-CDF sampling on the exact truncated distribution so the head
    of the distribution (the hot items that cause GQF contention) is
    faithfully represented even for small sample counts.
    """
    weights = zipfian_weights(universe_size, coefficient)
    cdf = np.cumsum(weights)
    rng = np.random.default_rng(seed)
    u = rng.random(n_samples)
    return np.searchsorted(cdf, u, side="left").astype(np.int64)


def zipfian_counts(
    n_distinct: int,
    total_items: Optional[int] = None,
    coefficient: float = 1.5,
    seed: int = 0,
) -> np.ndarray:
    """Per-item counts whose frequencies follow a Zipfian distribution.

    Returns an integer array of length ``n_distinct`` whose values sum to
    approximately ``total_items`` (default: ``n_distinct``), with rank-1
    items receiving the largest counts.
    """
    if n_distinct <= 0:
        raise ValueError("n_distinct must be positive")
    total_items = total_items if total_items is not None else n_distinct
    ranks = sample_zipfian_ranks(total_items, n_distinct, coefficient, seed)
    counts = np.bincount(ranks, minlength=n_distinct)
    return counts.astype(np.int64)


def uniform_counts(
    n_distinct: int,
    low: int = 1,
    high: int = 100,
    seed: int = 0,
) -> np.ndarray:
    """Per-item counts drawn uniformly from ``[low, high]`` (UR-count)."""
    if n_distinct <= 0:
        raise ValueError("n_distinct must be positive")
    if not 1 <= low <= high:
        raise ValueError("need 1 <= low <= high")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high + 1, size=n_distinct, dtype=np.int64)


def skewness_ratio(counts: np.ndarray) -> float:
    """Fraction of the total mass held by the top 1 % of items.

    Tests use this to confirm that the Zipfian generator is heavily skewed
    while the UR-count generator is not.
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    if counts.size == 0 or counts.sum() == 0:
        return 0.0
    top = max(1, counts.size // 100)
    return float(counts[:top].sum() / counts.sum())
