"""Synthetic genomic workloads: reads, k-mer extraction and counting input.

Two of the paper's experiments use genomic data that we cannot ship:

* the **k-mer count** row of Table 5 extracts k-mers from a raw sequencing
  file (*M. balbisiana*, from the Squeakr benchmark set) and counts them in
  the GQF;
* the **MetaHipMer** experiment (Table 3) filters singleton k-mers from
  terabyte-scale metagenome read sets with the TCF.

This module substitutes synthetic datasets that exercise the identical code
paths: a reference "genome" is sampled, reads with sequencing errors are
drawn from it with configurable coverage, and k-mers are extracted
canonically (lexicographic minimum of the k-mer and its reverse complement),
2-bit packed into 64-bit integers — the same representation GPU k-mer
pipelines use.  Sequencing errors produce the heavy singleton tail (the
paper: up to ~70 % of distinct k-mers are singletons) that makes the
MetaHipMer TCF filtering worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: 2-bit encoding of the DNA alphabet.
_BASE_TO_CODE = {"A": 0, "C": 1, "G": 2, "T": 3}
_CODE_TO_BASE = np.array(list("ACGT"))
#: Complement of each 2-bit base code (A<->T, C<->G).
_COMPLEMENT_CODE = np.array([3, 2, 1, 0], dtype=np.uint8)
#: 256-entry byte -> 2-bit-code lookup table (case-insensitive); 255 marks an
#: invalid base.  The vectorised :func:`sequence_to_codes` maps whole strings
#: through this table instead of one dict lookup per base.
_INVALID_CODE = np.uint8(255)
_BYTE_TO_CODE = np.full(256, _INVALID_CODE, dtype=np.uint8)
for _base, _code in _BASE_TO_CODE.items():
    _BYTE_TO_CODE[ord(_base)] = _code
    _BYTE_TO_CODE[ord(_base.lower())] = _code


@dataclass
class ReadSet:
    """A synthetic sequencing dataset.

    Attributes
    ----------
    reads:
        List of reads, each a uint8 array of 2-bit base codes.
    genome:
        The underlying reference genome (base codes) the reads were drawn
        from — kept so tests can verify k-mer provenance.
    error_rate:
        Per-base substitution error rate used during generation.
    """

    reads: List[np.ndarray]
    genome: np.ndarray
    error_rate: float

    @property
    def n_reads(self) -> int:
        return len(self.reads)

    @property
    def total_bases(self) -> int:
        return int(sum(read.size for read in self.reads))


def random_genome(length: int, seed: int = 0) -> np.ndarray:
    """Generate a random reference genome as 2-bit base codes."""
    if length <= 0:
        raise ValueError("length must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=length, dtype=np.uint8)


def generate_reads(
    genome: np.ndarray,
    read_length: int = 100,
    coverage: float = 10.0,
    error_rate: float = 0.01,
    seed: int = 0,
) -> ReadSet:
    """Sample error-containing reads from a genome at the given coverage.

    Substitution errors create novel k-mers that appear exactly once — the
    singleton k-mers that dominate memory in metagenome assembly and that
    the TCF is used to weed out.
    """
    genome = np.asarray(genome, dtype=np.uint8)
    if read_length > genome.size:
        raise ValueError("read_length longer than the genome")
    if not 0.0 <= error_rate < 1.0:
        raise ValueError("error_rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    n_reads = max(1, int(round(coverage * genome.size / read_length)))
    starts = rng.integers(0, genome.size - read_length + 1, size=n_reads)
    reads: List[np.ndarray] = []
    for start in starts:
        read = genome[start : start + read_length].copy()
        if error_rate > 0.0:
            errors = rng.random(read_length) < error_rate
            if errors.any():
                # Substitute with a *different* base.
                shift = rng.integers(1, 4, size=int(errors.sum())).astype(np.uint8)
                read[errors] = (read[errors] + shift) % 4
        reads.append(read)
    return ReadSet(reads=reads, genome=genome, error_rate=error_rate)


def sequence_to_codes(sequence: str) -> np.ndarray:
    """Convert an ACGT string (case-insensitive) to 2-bit base codes.

    One whole-string table lookup instead of a per-base dict comprehension;
    invalid bases raise exactly as the scalar path did (reporting the
    upper-cased offending character).
    """
    try:
        raw = np.frombuffer(sequence.encode("latin-1"), dtype=np.uint8)
    except UnicodeEncodeError:
        raw = None
    if raw is None:
        bad = next(b for b in sequence.upper() if b not in _BASE_TO_CODE)
        raise ValueError(f"invalid base {bad!r}")
    codes = _BYTE_TO_CODE[raw]
    invalid = codes == _INVALID_CODE
    if invalid.any():
        bad = sequence[int(np.argmax(invalid))].upper()
        raise ValueError(f"invalid base {bad!r}")
    return codes


def codes_to_sequence(codes: np.ndarray) -> str:
    """Convert 2-bit base codes back to an ACGT string."""
    return "".join(_CODE_TO_BASE[np.asarray(codes, dtype=np.uint8)])


def _pack_windows(codes: np.ndarray, k: int) -> np.ndarray:
    """2-bit-pack every length-``k`` window of a code array (vectorised).

    ``k`` shift-and-or passes over the whole array — no ``(n, k)`` window
    materialisation — with the first base in the most significant position
    (the conventional polynomial packing).
    """
    n = codes.size - k + 1
    out = np.zeros(n, dtype=np.uint64)
    for i in range(k):
        out = (out << np.uint64(2)) | codes[i : i + n]
    return out


def pack_kmers(read: np.ndarray, k: int) -> np.ndarray:
    """Extract all k-mers of a read as 2-bit-packed uint64 values.

    ``k`` must be at most 32 so a k-mer fits in one 64-bit word (the same
    limit GPU k-mer counters impose).
    """
    read = np.asarray(read, dtype=np.uint64)
    if not 1 <= k <= 32:
        raise ValueError("k must be in [1, 32]")
    if read.size < k:
        return np.zeros(0, dtype=np.uint64)
    return _pack_windows(read, k)


def reverse_complement_packed(kmers: np.ndarray, k: int) -> np.ndarray:
    """Reverse-complement of 2-bit packed k-mers (vectorised)."""
    kmers = np.asarray(kmers, dtype=np.uint64)
    out = np.zeros_like(kmers)
    tmp = kmers.copy()
    for _ in range(k):
        base = tmp & np.uint64(3)
        complement = np.uint64(3) - base
        out = (out << np.uint64(2)) | complement
        tmp >>= np.uint64(2)
    return out


def canonical_kmers(kmers: np.ndarray, k: int) -> np.ndarray:
    """Canonical form: the lexicographic minimum of a k-mer and its RC."""
    kmers = np.asarray(kmers, dtype=np.uint64)
    rc = reverse_complement_packed(kmers, k)
    return np.minimum(kmers, rc)


def extract_kmers(read_set: ReadSet, k: int = 21, canonical: bool = True) -> np.ndarray:
    """All (canonical) k-mers of a read set, concatenated in read order.

    The whole read set is processed as one array: reads are concatenated,
    every window of the concatenation is packed with :func:`_pack_windows`,
    and windows spanning a read boundary are masked out — replacing the
    per-read Python loop with a handful of whole-array operations.  Output
    order (read-major, position-minor) matches the per-read extraction.
    """
    if not 1 <= k <= 32:
        raise ValueError("k must be in [1, 32]")
    reads = read_set.reads
    if not reads:
        return np.zeros(0, dtype=np.uint64)
    lengths = np.array([np.asarray(r).size for r in reads], dtype=np.int64)
    total = int(lengths.sum())
    if total < k:
        return np.zeros(0, dtype=np.uint64)
    cat = np.concatenate([np.asarray(r, dtype=np.uint64) for r in reads])
    n_windows = total - k + 1
    read_id = np.repeat(np.arange(lengths.size), lengths)
    within_read = read_id[:n_windows] == read_id[k - 1 :]
    kmers = _pack_windows(cat, k)[within_read]
    if canonical and kmers.size:
        kmers = canonical_kmers(kmers, k)
    return kmers


def kmer_spectrum(kmers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct k-mers and their multiplicities."""
    return np.unique(np.asarray(kmers, dtype=np.uint64), return_counts=True)


def singleton_fraction(kmers: np.ndarray) -> float:
    """Fraction of *distinct* k-mers that occur exactly once.

    The MetaHipMer experiment relies on this being large (~70 % in real
    metagenomes); the synthetic read generator reaches comparable fractions
    through its sequencing-error model at moderate coverage.
    """
    _, counts = kmer_spectrum(kmers)
    if counts.size == 0:
        return 0.0
    return float(np.count_nonzero(counts == 1) / counts.size)


def kmer_count_dataset(
    n_items: int,
    k: int = 21,
    coverage: float = 8.0,
    error_rate: float = 0.01,
    seed: int = 11,
):
    """A :class:`~repro.workloads.generators.CountingDataset` of k-mers.

    Sized so the flat k-mer stream has roughly ``n_items`` entries; used for
    the "k-mer count" column of Table 5.
    """
    from .generators import CountingDataset

    read_length = 100
    genome_length = max(
        2 * read_length, int(n_items / max(1.0, coverage)) + read_length
    )
    genome = random_genome(genome_length, seed)
    reads = generate_reads(genome, read_length, coverage, error_rate, seed)
    kmers = extract_kmers(reads, k)
    if kmers.size > n_items:
        kmers = kmers[:n_items]
    distinct, counts = kmer_spectrum(kmers)
    return CountingDataset("k-mer count", kmers, distinct, counts)
