"""``python -m repro`` — entry point for the reproduction pipeline CLI."""

from .pipeline.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
