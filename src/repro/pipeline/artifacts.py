"""Artifact and manifest I/O for the reproduction pipeline.

A pipeline run produces, per stage, one versioned JSON artifact
(``<stage>.json``) holding the machine-readable payload, the text reports
(``<name>.txt``) the benchmark harness has always written, and any verbatim
extra files (e.g. ``BENCH_POINT.json``).  The run as a whole is described
by ``manifest.json``: git SHA, preset, per-stage status/timings and the
expectation tally — the file CI archives and ``repro check`` starts from.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from typing import Dict, List, Optional

from .stage import SCHEMA_VERSION, ExpectationResult, Stage, StageOutput

#: Default artifact directory (the benchmark harness's historical home).
DEFAULT_RESULTS_DIR = pathlib.Path("benchmarks") / "results"

MANIFEST_NAME = "manifest.json"


def git_sha(repo_dir: Optional[pathlib.Path] = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout.

    Prefers the source checkout this module lives in (the editable-install
    / PYTHONPATH=src layout); for a site-packages install it falls back to
    the working directory, the conventional provenance for a CLI run.
    """
    if repo_dir is None:
        source_root = pathlib.Path(__file__).resolve().parents[3]
        repo_dir = source_root if (source_root / ".git").exists() else pathlib.Path.cwd()
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def stage_artifact_name(stage_name: str) -> str:
    return f"{stage_name}.json"


def write_stage_artifact(
    results_dir: pathlib.Path,
    stage: Stage,
    output: StageOutput,
    preset_name: str,
    expectations: List[ExpectationResult],
) -> pathlib.Path:
    """Write one stage's JSON artifact + text reports + extra files."""
    results_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "stage": stage.name,
        "title": stage.title,
        "kind": stage.kind,
        "schema_version": stage.schema_version,
        "preset": preset_name,
        "data": output.data,
        "expectations": [result.as_dict() for result in expectations],
    }
    path = results_dir / stage_artifact_name(stage.name)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    for report_name, text in output.reports.items():
        (results_dir / f"{report_name}.txt").write_text(text + "\n")
    for filename, content in output.files.items():
        (results_dir / filename).write_text(content)
    return path


def load_stage_artifact(results_dir: pathlib.Path, stage_name: str) -> dict:
    """Load one stage's JSON artifact (raises ``FileNotFoundError``)."""
    path = pathlib.Path(results_dir) / stage_artifact_name(stage_name)
    return json.loads(path.read_text())


def write_manifest(
    results_dir: pathlib.Path,
    preset_name: str,
    stage_records: List[dict],
    started_at: float,
    finished_at: float,
) -> pathlib.Path:
    """Write ``manifest.json`` summarising one pipeline run."""
    results_dir.mkdir(parents=True, exist_ok=True)
    stages: Dict[str, dict] = {record["name"]: record for record in stage_records}
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": git_sha(),
        "preset": preset_name,
        "started_at_unix": round(started_at, 3),
        "finished_at_unix": round(finished_at, 3),
        "duration_s": round(finished_at - started_at, 3),
        "stages": stages,
        "totals": {
            "stages": len(stage_records),
            "ok": sum(1 for r in stage_records if r["status"] == "ok"),
            "failed": sum(1 for r in stage_records if r["status"] == "failed"),
            "expectations_passed": sum(
                r.get("expectations", {}).get("passed", 0) for r in stage_records
            ),
            "expectations_failed": sum(
                r.get("expectations", {}).get("failed", 0) for r in stage_records
            ),
        },
    }
    path = results_dir / MANIFEST_NAME
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(results_dir: pathlib.Path) -> dict:
    """Load ``manifest.json`` from an artifact directory."""
    return json.loads((pathlib.Path(results_dir) / MANIFEST_NAME).read_text())
