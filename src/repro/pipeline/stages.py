"""The 14 registered reproduction stages (Figures 3-6, Tables 1-5,
ablations, point-path wall-clock timing, the filter lifecycle, the filter
service, and the sharded-filter scaling curve).

Each stage wraps one driver from :mod:`repro.analysis` / :mod:`repro.apps`:
its run function executes the functional simulation + perf model at the
preset's scale and returns a JSON-serialisable payload plus the formatted
text reports the ``benchmarks/`` harness has always written.  The
expectations attached to every stage are the paper's qualitative claims
(previously inline ``assert``\\ s in the benchmark scripts); they read only
the payload, so ``repro check`` can re-evaluate them against artifacts
loaded from disk.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Tuple

import numpy as np

from ..analysis import figures, tables
from ..analysis.api_matrix import PAPER_TABLE1, TABLE1_COLUMNS, build_api_matrix
from ..analysis.fpr import run_table2
from ..analysis.reporting import (
    format_boolean_matrix,
    format_dict_rows,
    format_figure_series,
    format_table,
)
from ..analysis.throughput import (
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_POSITIVE,
    PHASE_RANDOM,
    BenchmarkPoint,
)
from ..apps.kmer_counter import GPUKmerCounter
from ..apps.metahipmer import KmerAnalysisPhase, memory_reduction, run_table3
from ..core.exceptions import FilterFullError
from ..core.gqf import BulkGQF, PointGQF, QuotientFilterCore
from ..core.tcf import FIGURE5_CG_SIZES, FIGURE5_VARIANTS, PointTCF, TCFConfig
from ..gpusim.device import A100, V100
from ..gpusim.stats import StatsRecorder
from ..hashing.fingerprints import FingerprintScheme
from ..hashing.xorwow import generate_keys
from ..workloads import kmer as kmer_mod
from ..workloads.generators import zipfian_count_dataset
from .presets import Preset
from .stage import Expectation, Stage, StageOutput, register_stage

#: The size sweep shared by Figures 3, 4 and 6.
SWEEP_SIZES = figures.PAPER_SIZE_SWEEP


# --------------------------------------------------------------------------
# payload helpers
# --------------------------------------------------------------------------
def point_to_dict(point: BenchmarkPoint) -> dict:
    """Serialise one :class:`BenchmarkPoint` into the artifact payload."""
    return {
        "filter_key": point.filter_key,
        "display_name": point.display_name,
        "device": point.device,
        "lg_capacity": point.lg_capacity,
        "throughput_bops": {
            phase: estimate.throughput_bops
            for phase, estimate in point.estimates.items()
        },
        "meta": {key: float(value) for key, value in point.meta.items()},
    }


def _series_to_dict(results: Dict[str, List[BenchmarkPoint]]) -> dict:
    return {key: [point_to_dict(p) for p in series] for key, series in results.items()}


def _points_by_size(data: dict, system: str, filter_key: str) -> Dict[int, dict]:
    return {p["lg_capacity"]: p for p in data["series"][system][filter_key]}


def _bops(point: dict, phase: str) -> float:
    return float(point["throughput_bops"].get(phase, 0.0))


# --------------------------------------------------------------------------
# Figure 3: point-API throughput vs filter size
# --------------------------------------------------------------------------
_FIG3_PHASES = (
    (PHASE_INSERT, "Point Inserts"),
    (PHASE_POSITIVE, "Point Positive Queries"),
    (PHASE_RANDOM, "Point Random Queries"),
)


def _run_fig3(preset: Preset) -> StageOutput:
    series: Dict[str, dict] = {}
    reports: Dict[str, str] = {}
    for device in (V100, A100):
        results = figures.figure3_point_api(
            device, SWEEP_SIZES, sim_lg=preset.sim_lg, n_queries=preset.n_queries
        )
        series[device.system] = _series_to_dict(results)
        system = device.system.capitalize()
        sections = [
            format_figure_series(results, phase, f"Figure 3 ({system}): {title}")
            for phase, title in _FIG3_PHASES
        ]
        reports[f"figure3_point_api_{device.system}"] = "\n\n".join(sections)
    return StageOutput(data={"series": series, "sizes": list(SWEEP_SIZES)}, reports=reports)


def _fig3_tcf_insert_beats_gqf(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        tcf = _points_by_size(data, system, "tcf")
        gqf = _points_by_size(data, system, "gqf")
        for lg in tcf:
            if not _bops(tcf[lg], PHASE_INSERT) > _bops(gqf[lg], PHASE_INSERT):
                return False, f"{system} 2^{lg}: TCF inserts do not beat the GQF"
    return True, "TCF point inserts beat the GQF at every size on both GPUs"


def _fig3_tcf_positive_vs_gqf(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        tcf = _points_by_size(data, system, "tcf")
        gqf = _points_by_size(data, system, "gqf")
        for lg in tcf:
            tcf_bops = _bops(tcf[lg], PHASE_POSITIVE)
            gqf_bops = _bops(gqf[lg], PHASE_POSITIVE)
            # At 2^22 the GQF still fits in L2 while the TCF does not, so
            # only parity is required there (paper Section 6.1).
            threshold = gqf_bops if lg >= 24 else 0.9 * gqf_bops
            if not tcf_bops > threshold:
                return False, (
                    f"{system} 2^{lg}: TCF positive queries {tcf_bops:.3f} B/s "
                    f"vs GQF {gqf_bops:.3f} B/s"
                )
    return True, "TCF positive queries beat the GQF beyond the L2-resident sizes"


def _fig3_gqf_beats_bloom(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        gqf = _points_by_size(data, system, "gqf")
        bf = _points_by_size(data, system, "bf")
        for lg in gqf:
            if not _bops(gqf[lg], PHASE_POSITIVE) > _bops(bf[lg], PHASE_POSITIVE):
                return False, f"{system} 2^{lg}: GQF positive queries do not beat the BF"
    return True, "GQF positive queries beat the Bloom filter (paper: 2.4x)"


def _fig3_bf_early_exit(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        bf = _points_by_size(data, system, "bf")
        for lg in bf:
            if not _bops(bf[lg], PHASE_RANDOM) > _bops(bf[lg], PHASE_POSITIVE):
                return False, f"{system} 2^{lg}: BF negative queries not faster than positive"
    return True, "BF negative queries terminate early and beat its positive queries"


def _fig3_bbf_fastest(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        bbf = _points_by_size(data, system, "bbf")
        tcf = _points_by_size(data, system, "tcf")
        for lg in bbf:
            if not _bops(bbf[lg], PHASE_POSITIVE) >= 0.9 * _bops(tcf[lg], PHASE_POSITIVE):
                return False, f"{system} 2^{lg}: BBF is not the fastest overall"
    return True, "the BBF (no deletes/counts) is the fastest filter overall"


def _fig3_bf_l2_outlier(data: dict) -> Tuple[bool, str]:
    bf = _points_by_size(data, "cori", "bf")
    small = _bops(bf[22], PHASE_POSITIVE)
    large = _bops(bf[26], PHASE_POSITIVE)
    if not small > 1.5 * large:
        return False, f"V100 BF positive queries 2^22={small:.3f} vs 2^26={large:.3f} B/s"
    return True, "the BF L2-residency outlier appears at 2^22 on the V100 and is gone by 2^26"


register_stage(Stage(
    name="fig3",
    title="Figure 3: point-API throughput vs filter size (Cori + Perlmutter)",
    kind="figure",
    description="Point insert/positive/random throughput of the TCF, GQF, "
                "BF and BBF across 2^22..2^30 on the V100 and A100.",
    run=_run_fig3,
    expectations=(
        Expectation("tcf-insert-beats-gqf",
                    "TCF point inserts beat the GQF at every size",
                    _fig3_tcf_insert_beats_gqf),
        Expectation("tcf-positive-beats-gqf-at-scale",
                    "TCF positive queries beat the GQF beyond L2-resident sizes",
                    _fig3_tcf_positive_vs_gqf),
        Expectation("gqf-positive-beats-bf",
                    "GQF positive queries beat the Bloom filter",
                    _fig3_gqf_beats_bloom),
        Expectation("bf-negative-early-exit",
                    "BF negative queries beat its positive queries",
                    _fig3_bf_early_exit),
        Expectation("bbf-fastest-overall",
                    "the blocked Bloom filter is the fastest filter overall",
                    _fig3_bbf_fastest),
        Expectation("bf-l2-outlier-v100",
                    "the BF/BBF L2-residency outlier at 2^22 on the V100",
                    _fig3_bf_l2_outlier),
    ),
))


# --------------------------------------------------------------------------
# Figure 4: bulk-API throughput vs filter size
# --------------------------------------------------------------------------
_FIG4_PHASES = (
    (PHASE_INSERT, "Bulk Inserts"),
    (PHASE_POSITIVE, "Bulk Positive Queries"),
    (PHASE_RANDOM, "Bulk Random Queries"),
)


def _run_fig4(preset: Preset) -> StageOutput:
    series: Dict[str, dict] = {}
    reports: Dict[str, str] = {}
    for device in (V100, A100):
        results = figures.figure4_bulk_api(
            device, SWEEP_SIZES, sim_lg=preset.sim_lg, n_queries=preset.n_queries
        )
        series[device.system] = _series_to_dict(results)
        system = device.system.capitalize()
        sections = [
            format_figure_series(results, phase, f"Figure 4 ({system}): {title}")
            for phase, title in _FIG4_PHASES
        ]
        reports[f"figure4_bulk_api_{device.system}"] = "\n\n".join(sections)
    return StageOutput(data={"series": series, "sizes": list(SWEEP_SIZES)}, reports=reports)


def _fig4_capacity_truncation(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        for key in ("sqf", "rsqf"):
            sizes = _points_by_size(data, system, key)
            if max(sizes) != 26:
                return False, f"{system} {key} series does not stop at 2^26"
    return True, "the SQF/RSQF series stop at their 2^26 implementation limit"


def _fig4_bulk_tcf_fastest(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        tcf = _points_by_size(data, system, "bulk-tcf")
        gqf = _points_by_size(data, system, "bulk-gqf")
        sqf = _points_by_size(data, system, "sqf")
        for lg in tcf:
            tcf_bops = _bops(tcf[lg], PHASE_INSERT)
            if not tcf_bops > _bops(gqf[lg], PHASE_INSERT):
                return False, f"{system} 2^{lg}: bulk TCF inserts do not beat the bulk GQF"
            if lg in sqf and not tcf_bops > _bops(sqf[lg], PHASE_INSERT):
                return False, f"{system} 2^{lg}: bulk TCF inserts do not beat the SQF"
    return True, "the bulk TCF is the fastest inserter at every size"


def _fig4_rsqf_inserts_slow(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        sqf = _points_by_size(data, system, "sqf")
        rsqf = _points_by_size(data, system, "rsqf")
        for lg in rsqf:
            if not _bops(rsqf[lg], PHASE_INSERT) < 0.1 * _bops(sqf[lg], PHASE_INSERT):
                return False, f"{system} 2^{lg}: RSQF inserts are not orders of magnitude slower"
    return True, "RSQF inserts are orders of magnitude slower than the rest"


def _fig4_gqf_scales(data: dict) -> Tuple[bool, str]:
    for system in data["series"]:
        gqf = _points_by_size(data, system, "bulk-gqf")
        sizes = sorted(gqf)
        if not _bops(gqf[sizes[-1]], PHASE_INSERT) > _bops(gqf[sizes[0]], PHASE_INSERT):
            return False, f"{system}: bulk-GQF insert throughput does not grow with size"
    return True, "bulk-GQF insert throughput grows with the filter size"


def _fig4_a100_headline(data: dict) -> Tuple[bool, str]:
    tcf = _points_by_size(data, "perlmutter", "bulk-tcf")
    bops = _bops(tcf[30], PHASE_INSERT)
    if not bops > 2.0:
        return False, f"A100 bulk-TCF inserts at 2^30 reach only {bops:.2f} B/s"
    return True, f"A100 bulk-TCF inserts reach {bops:.2f} B/s (paper headline: 3.4 B/s)"


register_stage(Stage(
    name="fig4",
    title="Figure 4: bulk-API throughput vs filter size (Cori + Perlmutter)",
    kind="figure",
    description="Bulk insert/positive/random throughput of the bulk TCF, "
                "bulk GQF, SQF and RSQF; the SQF/RSQF curves truncate at 2^26.",
    run=_run_fig4,
    expectations=(
        Expectation("sqf-rsqf-capacity-limit",
                    "the SQF/RSQF series stop at 2^26",
                    _fig4_capacity_truncation),
        Expectation("bulk-tcf-fastest-insert",
                    "the bulk TCF beats every other filter on inserts",
                    _fig4_bulk_tcf_fastest),
        Expectation("rsqf-insert-slow",
                    "RSQF inserts are orders of magnitude slower",
                    _fig4_rsqf_inserts_slow),
        Expectation("bulk-gqf-insert-scales",
                    "bulk-GQF insert throughput grows with filter size",
                    _fig4_gqf_scales),
        Expectation("a100-multi-billion-inserts",
                    "A100 bulk-TCF inserts exceed 2 B/s at 2^30",
                    _fig4_a100_headline),
    ),
))


# --------------------------------------------------------------------------
# Figure 5: cooperative-group-size sweep
# --------------------------------------------------------------------------
_FIG5_LG_CAPACITY = 28
_FIG5_PHASES = (
    (PHASE_INSERT, "Inserts"),
    (PHASE_POSITIVE, "Positive Queries"),
    (PHASE_RANDOM, "Random Queries"),
)


def _run_fig5(preset: Preset) -> StageOutput:
    results = figures.figure5_cg_sweep(
        device=V100,
        lg_capacity=_FIG5_LG_CAPACITY,
        variants=FIGURE5_VARIANTS,
        cg_sizes=FIGURE5_CG_SIZES,
        sim_lg=preset.fig5_sim_lg,
        n_queries=preset.fig5_n_queries,
    )
    sections = []
    for phase, title in _FIG5_PHASES:
        headers = ["CG size"] + list(results.keys())
        rows = []
        for cg in FIGURE5_CG_SIZES:
            rows.append([cg] + [results[label][cg].throughput_bops(phase)
                                for label in results])
        sections.append(format_table(
            headers, rows,
            title=f"Figure 5: {title} at 2^{_FIG5_LG_CAPACITY} [B ops/s]",
        ))
    best = figures.figure5_optimal_cg(results, PHASE_INSERT)
    sections.append(format_table(
        ["variant", "best CG size (inserts)"],
        [[label, cg] for label, cg in best.items()],
        title="Figure 5: optimal cooperative-group size per variant",
    ))
    data = {
        "lg_capacity": _FIG5_LG_CAPACITY,
        "cg_sizes": list(FIGURE5_CG_SIZES),
        "results": {
            label: {str(cg): point_to_dict(point) for cg, point in per_cg.items()}
            for label, per_cg in results.items()
        },
        "optimal_cg": {label: int(cg) for label, cg in best.items()},
    }
    return StageOutput(data=data, reports={"figure5_cg_sweep": "\n\n".join(sections)})


def _fig5_optimal_cg_intermediate(data: dict) -> Tuple[bool, str]:
    for label, cg in data["optimal_cg"].items():
        if cg not in (1, 2, 4, 8, 16):
            return False, f"variant {label}: optimal CG size {cg} is the 32-lane extreme"
    return True, "an intermediate cooperative-group size wins for every variant"


def _fig5_aligned_variants_win(data: dict) -> Tuple[bool, str]:
    for cg in data["cg_sizes"]:
        aligned = _bops(data["results"]["16-16"][str(cg)], PHASE_INSERT)
        straddling = _bops(data["results"]["12-16"][str(cg)], PHASE_INSERT)
        if not aligned >= straddling:
            return False, f"CG {cg}: 16-16 inserts {aligned:.3f} < 12-16 {straddling:.3f} B/s"
    return True, "word-aligned 16-bit variants beat the CAS-straddling 12-bit ones"


register_stage(Stage(
    name="fig5",
    title="Figure 5: TCF throughput vs cooperative-group size",
    kind="figure",
    description="Sweeps CG sizes 1..32 over seven TCF variants at 2^28; "
                "an intermediate CG size is optimal (paper: 4 for most).",
    run=_run_fig5,
    expectations=(
        Expectation("optimal-cg-intermediate",
                    "the optimal CG size is never the 32-lane extreme",
                    _fig5_optimal_cg_intermediate),
        Expectation("aligned-variants-beat-straddling",
                    "16-bit word-aligned variants beat 12-bit straddling ones",
                    _fig5_aligned_variants_win),
    ),
))


# --------------------------------------------------------------------------
# Figure 6: deletion throughput
# --------------------------------------------------------------------------
def _run_fig6(preset: Preset) -> StageOutput:
    results = figures.figure6_deletions(
        device=V100, lg_capacities=SWEEP_SIZES,
        sim_lg=preset.sim_lg, n_queries=preset.n_queries,
    )
    text = format_figure_series(
        results, PHASE_DELETE, "Figure 6: Deletion throughput (Cori)",
        unit="M ops/s", scale=1e-6,
    )
    data = {"series": {"cori": _series_to_dict(results)}, "sizes": list(SWEEP_SIZES)}
    return StageOutput(data=data, reports={"figure6_deletions": text})


def _fig6_sqf_truncated(data: dict) -> Tuple[bool, str]:
    sqf = _points_by_size(data, "cori", "sqf")
    if max(sqf) != 26:
        return False, "the SQF series does not stop at 2^26"
    return True, "the SQF deletion series stops at its 2^26 capacity limit"


def _fig6_tcf_deletes_10x(data: dict) -> Tuple[bool, str]:
    tcf = _points_by_size(data, "cori", "tcf")
    gqf = _points_by_size(data, "cori", "bulk-gqf")
    for lg in tcf:
        if not _bops(tcf[lg], PHASE_DELETE) > 10 * _bops(gqf[lg], PHASE_DELETE):
            return False, f"2^{lg}: TCF deletes are not 10x the GQF's"
    return True, "TCF single-CAS deletes are over 10x faster than the GQF's"


def _fig6_gqf_beats_sqf(data: dict) -> Tuple[bool, str]:
    gqf = _points_by_size(data, "cori", "bulk-gqf")
    sqf = _points_by_size(data, "cori", "sqf")
    for lg in sqf:
        gqf_bops = _bops(gqf[lg], PHASE_DELETE)
        sqf_bops = _bops(sqf[lg], PHASE_DELETE)
        if not gqf_bops > sqf_bops:
            return False, f"2^{lg}: GQF deletes do not beat the SQF"
        if lg >= 24 and not gqf_bops > 3 * sqf_bops:
            return False, f"2^{lg}: the GQF/SQF deletion gap does not widen with size"
    return True, "GQF even-odd deletes beat the SQF everywhere, widening with size"


register_stage(Stage(
    name="fig6",
    title="Figure 6: deletion throughput (Cori)",
    kind="figure",
    description="Deletion throughput of the bulk GQF, SQF and point TCF; "
                "the TCF's single-CAS deletes dominate.",
    run=_run_fig6,
    expectations=(
        Expectation("sqf-capacity-limit",
                    "the SQF series stops at 2^26",
                    _fig6_sqf_truncated),
        Expectation("tcf-deletes-order-of-magnitude",
                    "TCF deletes are over 10x faster than the GQF's",
                    _fig6_tcf_deletes_10x),
        Expectation("gqf-deletes-beat-sqf",
                    "GQF deletes beat the SQF, widening with filter size",
                    _fig6_gqf_beats_sqf),
    ),
))


# --------------------------------------------------------------------------
# Table 1: API capability matrix
# --------------------------------------------------------------------------
def _run_table1(preset: Preset) -> StageOutput:
    matrix = build_api_matrix()
    text = format_boolean_matrix(
        matrix, TABLE1_COLUMNS, "Table 1: API supported by various filters"
    )
    data = {"matrix": matrix, "paper": PAPER_TABLE1, "columns": list(TABLE1_COLUMNS)}
    return StageOutput(data=data, reports={"table1_api_matrix": text})


def _table1_matches_paper(data: dict) -> Tuple[bool, str]:
    mismatches = []
    for name, row in data["paper"].items():
        measured = data["matrix"].get(name)
        if measured != row:
            mismatches.append(name)
    if set(data["matrix"]) != set(data["paper"]):
        mismatches.append("<row set>")
    if mismatches:
        return False, f"capability rows differ from the paper: {', '.join(mismatches)}"
    return True, "the introspected capability matrix matches the paper's Table 1 exactly"


register_stage(Stage(
    name="table1",
    title="Table 1: API supported by various filters",
    kind="table",
    description="Capability matrix generated by introspecting every filter "
                "class; must match the paper's Table 1 exactly.",
    run=_run_table1,
    expectations=(
        Expectation("matrix-matches-paper",
                    "the generated matrix equals the paper's Table 1",
                    _table1_matches_paper),
    ),
))


# --------------------------------------------------------------------------
# Table 2: false-positive rate and bits per item
# --------------------------------------------------------------------------
def _run_table2(preset: Preset) -> StageOutput:
    rows = run_table2(
        lg_capacity=preset.fpr_lg_capacity, n_negative=preset.fpr_n_negative
    )
    text = format_dict_rows(
        rows,
        ["filter", "fp_rate_percent", "bits_per_item",
         "paper_fp_percent", "paper_bits_per_item"],
        "Table 2: measured FP rate (%) and bits per item vs paper",
    )
    return StageOutput(data={"rows": rows}, reports={"table2_fpr_bpi": text})


def _table2_rows(data: dict) -> Dict[str, dict]:
    return {row["filter"]: row for row in data["rows"]}


def _table2_sqf_fp(data: dict) -> Tuple[bool, str]:
    rows = _table2_rows(data)
    sqf, gqf = rows["SQF"]["fp_rate_percent"], rows["GQF"]["fp_rate_percent"]
    if not sqf > 3 * gqf:
        return False, f"SQF FP rate {sqf:.3f}% is not ~10x the GQF's {gqf:.3f}%"
    return True, "5-bit-remainder filters (SQF/RSQF) have ~10x the GQF's FP rate"


def _table2_tcf_space(data: dict) -> Tuple[bool, str]:
    rows = _table2_rows(data)
    gqf_bpi = rows["GQF"]["bits_per_item"]
    for name in ("TCF", "Bulk TCF"):
        if not rows[name]["bits_per_item"] > gqf_bpi:
            return False, f"{name} bits/item do not exceed the GQF's"
    return True, "the TCF family trades space for speed (more bits/item than the GQF)"


def _table2_bbf_accuracy_tradeoff(data: dict) -> Tuple[bool, str]:
    rows = _table2_rows(data)
    bbf, bf = rows["BBF"], rows["BF"]
    if not bbf["fp_rate_percent"] > bf["fp_rate_percent"]:
        return False, "the blocked Bloom filter's FP rate does not exceed the BF's"
    if not abs(bbf["bits_per_item"] - bf["bits_per_item"]) <= 0.2 * bf["bits_per_item"]:
        return False, "BBF and BF bits/item diverge; the FP comparison is not like-for-like"
    return True, (
        f"one-line blocking costs accuracy: BBF FP {bbf['fp_rate_percent']:.2f}% vs "
        f"BF {bf['fp_rate_percent']:.2f}% at ~equal bits/item"
    )


def _table2_fp_near_paper(data: dict) -> Tuple[bool, str]:
    for name, row in _table2_rows(data).items():
        bound = 10 * max(row["paper_fp_percent"], 0.05)
        if not row["fp_rate_percent"] <= bound:
            return False, (
                f"{name}: measured FP {row['fp_rate_percent']:.3f}% exceeds "
                f"10x the paper's {row['paper_fp_percent']:.3f}%"
            )
    return True, "every filter lands within an order of magnitude of its paper FP rate"


register_stage(Stage(
    name="table2",
    title="Table 2: false-positive rate and bits per item",
    kind="table",
    description="Empirical FP rate and space of every filter at the "
                "benchmark fill level, side by side with the paper's values.",
    run=_run_table2,
    expectations=(
        Expectation("sqf-fp-rate-10x-gqf",
                    "SQF FP rate is several times the GQF's",
                    _table2_sqf_fp),
        Expectation("tcf-space-for-speed",
                    "the TCF family uses more bits/item than the GQF",
                    _table2_tcf_space),
        Expectation("bbf-blocking-costs-accuracy",
                    "the blocked Bloom filter has the highest FPR of the "
                    "Bloom family at equal bits/item",
                    _table2_bbf_accuracy_tradeoff),
        Expectation("fp-within-order-of-paper",
                    "measured FP rates are within 10x of the paper's",
                    _table2_fp_near_paper),
    ),
))


# --------------------------------------------------------------------------
# Table 3: MetaHipMer memory accounting
# --------------------------------------------------------------------------
def _run_table3(preset: Preset) -> StageOutput:
    genome = kmer_mod.random_genome(preset.table3_genome_bp, seed=33)
    reads = kmer_mod.generate_reads(
        genome, 100, preset.table3_coverage, error_rate=0.015, seed=33
    )
    kmers = kmer_mod.extract_kmers(reads, 21)
    expected = max(10_000, int(kmers.size * 1.5))
    with_tcf = KmerAnalysisPhase(expected_kmers=expected, use_tcf=True)
    without = KmerAnalysisPhase(expected_kmers=expected, use_tcf=False)
    with_tcf.process_read_set(reads)
    without.process_read_set(reads)
    singleton_fraction = kmer_mod.singleton_fraction(kmers)

    rows = run_table3()
    reductions = memory_reduction(rows)
    table_rows = [row.as_row() for row in rows]
    text = format_dict_rows(
        table_rows,
        ["dataset", "method", "nodes", "tcf_mem_gb", "ht_mem_gb", "total_mem_gb"],
        "Table 3: MetaHipMer memory usage (aggregate GB across 64 nodes)",
        "{:.0f}",
    )
    functional_rows = [
        {
            "configuration": "synthetic reads + TCF",
            "ht_entries": with_tcf.hash_table.n_entries,
            "ht_bytes": with_tcf.hash_table.nbytes,
            "tcf_bytes": with_tcf.tcf.nbytes,
        },
        {
            "configuration": "synthetic reads, no TCF",
            "ht_entries": without.hash_table.n_entries,
            "ht_bytes": without.hash_table.nbytes,
            "tcf_bytes": 0,
        },
    ]
    functional = format_dict_rows(
        functional_rows,
        ["configuration", "ht_entries", "ht_bytes", "tcf_bytes"],
        f"Functional k-mer analysis run (measured singleton fraction: "
        f"{singleton_fraction:.2f})",
        "{:.0f}",
    )
    data = {
        "rows": table_rows,
        "reductions": {name: float(value) for name, value in reductions.items()},
        "functional": {
            "with_tcf_entries": int(with_tcf.hash_table.n_entries),
            "without_tcf_entries": int(without.hash_table.n_entries),
            "with_tcf_bytes": int(with_tcf.hash_table.nbytes + with_tcf.tcf.nbytes),
            "without_tcf_bytes": int(without.hash_table.nbytes),
            "singleton_fraction": float(singleton_fraction),
        },
    }
    return StageOutput(
        data=data, reports={"table3_metahipmer": text + "\n\n" + functional}
    )


def _table3_singletons_filtered(data: dict) -> Tuple[bool, str]:
    functional = data["functional"]
    if not functional["with_tcf_entries"] < functional["without_tcf_entries"]:
        return False, "the TCF did not keep singletons out of the hash table"
    return True, (
        f"TCF filtering kept the hash table at {functional['with_tcf_entries']} "
        f"entries vs {functional['without_tcf_entries']} without"
    )


def _table3_memory_reduction(data: dict) -> Tuple[bool, str]:
    for dataset in ("WA", "Rhizo"):
        reduction = data["reductions"].get(dataset, 0.0)
        if not reduction > 0.4:
            return False, f"{dataset}: k-mer phase memory reduction is only {reduction:.0%}"
    return True, "the TCF cuts k-mer-phase memory by >40% on both paper datasets"


register_stage(Stage(
    name="table3",
    title="Table 3: MetaHipMer k-mer analysis memory",
    kind="table",
    description="Functional TCF singleton filtering on synthetic reads plus "
                "the paper's WA/Rhizo memory accounting at 64 nodes.",
    run=_run_table3,
    expectations=(
        Expectation("tcf-filters-singletons",
                    "the TCF keeps singleton k-mers out of the hash table",
                    _table3_singletons_filtered),
        Expectation("memory-reduction-over-40pct",
                    "k-mer analysis memory drops >40% on WA and Rhizo",
                    _table3_memory_reduction),
    ),
))


# --------------------------------------------------------------------------
# Table 4: CPU vs GPU filters
# --------------------------------------------------------------------------
_TABLE4_LG_CAPACITY = 28


def _run_table4(preset: Preset) -> StageOutput:
    rows = tables.run_table4(
        lg_capacity=_TABLE4_LG_CAPACITY,
        sim_lg=preset.sim_lg,
        n_queries=preset.n_queries,
    )
    text = format_dict_rows(
        rows,
        ["filter", "device", "insert_mops", "positive_mops", "random_mops",
         "paper_insert_mops", "paper_positive_mops", "paper_random_mops"],
        "Table 4: CPU vs GPU filter throughput (Million ops/s) at 2^28",
        "{:.1f}",
    )
    return StageOutput(
        data={"rows": rows, "lg_capacity": _TABLE4_LG_CAPACITY},
        reports={"table4_cpu_vs_gpu": text},
    )


def _table4_rows(data: dict) -> Dict[str, dict]:
    return {row["filter"]: row for row in data["rows"]}


def _table4_gpu_beats_cpu(data: dict) -> Tuple[bool, str]:
    rows = _table4_rows(data)
    checks = [
        ("GQF", "CQF (CPU)", "insert_mops", 1.0),
        ("TCF", "VQF (CPU)", "insert_mops", 1.0),
        ("GQF", "CQF (CPU)", "positive_mops", 3.0),
        ("TCF", "VQF (CPU)", "positive_mops", 3.0),
    ]
    for gpu, cpu, column, factor in checks:
        if not rows[gpu][column] > factor * rows[cpu][column]:
            return False, f"{gpu} {column} does not beat {factor}x the {cpu}'s"
    return True, "each GPU design beats its CPU ancestor on every operation"


def _table4_cqf_weakness(data: dict) -> Tuple[bool, str]:
    rows = _table4_rows(data)
    if not rows["CQF (CPU)"]["insert_mops"] < rows["VQF (CPU)"]["insert_mops"]:
        return False, "the CPU CQF's lock-contended inserts are not its weak point"
    return True, "the CPU CQF's lock-contended inserts trail the VQF (paper: 2.2 M/s)"


def _table4_tcf_fastest(data: dict) -> Tuple[bool, str]:
    rows = _table4_rows(data)
    if not rows["TCF"]["insert_mops"] > rows["GQF"]["insert_mops"]:
        return False, "the TCF is not the fastest inserter overall"
    return True, "the TCF is the fastest inserter overall"


register_stage(Stage(
    name="table4",
    title="Table 4: CPU (KNL) vs GPU (V100) filter throughput",
    kind="table",
    description="Aggregate throughput of the CPU CQF/VQF against the point "
                "GQF/TCF at a 2^28 filter size.",
    run=_run_table4,
    expectations=(
        Expectation("gpu-beats-cpu",
                    "GPU filters beat their CPU ancestors on every operation",
                    _table4_gpu_beats_cpu),
        Expectation("cqf-insert-weakness",
                    "the CPU CQF's lock-contended inserts trail the VQF",
                    _table4_cqf_weakness),
        Expectation("tcf-fastest-insert",
                    "the TCF is the fastest inserter overall",
                    _table4_tcf_fastest),
    ),
))


# --------------------------------------------------------------------------
# Table 5: GQF counting throughput
# --------------------------------------------------------------------------
def _run_table5(preset: Preset) -> StageOutput:
    results = tables.run_table5(sim_lg=preset.table5_sim_lg)
    grid = tables.table5_as_grid(results)

    headers = ["size (log2)"] + list(tables.TABLE5_DATASETS)
    rows = [[lg] + [grid[lg][name] for name in tables.TABLE5_DATASETS]
            for lg in tables.TABLE5_SIZES]
    measured = format_table(
        headers, rows,
        title="Table 5: GQF counting throughput (Million items/s) — "
              "measured (modelled)",
        float_format="{:.1f}",
    )
    paper_rows = [[lg] + [tables.PAPER_TABLE5[lg][name]
                          for name in tables.TABLE5_DATASETS]
                  for lg in tables.TABLE5_SIZES]
    paper = format_table(
        headers, paper_rows,
        title="Table 5 (paper-reported values, for comparison)",
        float_format="{:.1f}",
    )
    data = {
        "sizes": list(tables.TABLE5_SIZES),
        "datasets": list(tables.TABLE5_DATASETS),
        "grid": {str(lg): {name: float(grid[lg][name])
                           for name in tables.TABLE5_DATASETS}
                 for lg in tables.TABLE5_SIZES},
        "paper": {str(lg): tables.PAPER_TABLE5[lg] for lg in tables.TABLE5_SIZES},
    }
    return StageOutput(
        data=data, reports={"table5_counting": measured + "\n\n" + paper}
    )


def _table5_skew_penalty(data: dict) -> Tuple[bool, str]:
    for lg in data["sizes"]:
        row = data["grid"][str(lg)]
        if not row["Zipfian count"] < 0.2 * row["UR"]:
            return False, f"2^{lg}: un-aggregated Zipfian counting is not slow"
    return True, "un-aggregated Zipfian counting collapses to a few M/s"


def _table5_mapreduce_recovers(data: dict) -> Tuple[bool, str]:
    for lg in data["sizes"]:
        row = data["grid"][str(lg)]
        if not row["Zipfian count (MR)"] > 10 * row["Zipfian count"]:
            return False, f"2^{lg}: map-reduce does not recover the skew penalty"
        if not row["Zipfian count (MR)"] >= 0.8 * row["UR count"]:
            return False, f"2^{lg}: map-reduce Zipfian trails UR-count throughput"
    return True, "map-reduce aggregation recovers (and exceeds) UR-count speed"


def _table5_throughput_scales(data: dict) -> Tuple[bool, str]:
    small, large = str(min(data["sizes"])), str(max(data["sizes"]))
    for name in ("UR", "UR count", "k-mer count"):
        if not data["grid"][large][name] > data["grid"][small][name]:
            return False, f"{name}: counting throughput does not grow with filter size"
    return True, "UR / UR-count / k-mer counting throughput grows with filter size"


def _table5_zipfian_flat(data: dict) -> Tuple[bool, str]:
    zipf = [data["grid"][str(lg)]["Zipfian count"] for lg in data["sizes"]]
    if not max(zipf) < 3 * min(zipf):
        return False, "the non-MR Zipfian column is not flat across sizes"
    return True, "the non-MR Zipfian column stays flat: it does not scale with size"


def _table5_headline(data: dict) -> Tuple[bool, str]:
    largest = str(max(data["sizes"]))
    ur = data["grid"][largest]["UR"]
    if not ur > 300:
        return False, f"UR counting at 2^{largest} reaches only {ur:.0f} M/s"
    return True, f"UR counting reaches {ur:.0f} M/s at 2^{largest} (paper: 566 M/s)"


register_stage(Stage(
    name="table5",
    title="Table 5: GQF counting throughput under skewed datasets",
    kind="table",
    description="Bulk counting throughput for UR / UR-count / Zipfian "
                "(with and without map-reduce) / k-mer datasets, 2^22..2^28.",
    run=_run_table5,
    expectations=(
        Expectation("zipfian-skew-penalty",
                    "un-aggregated Zipfian counting collapses",
                    _table5_skew_penalty),
        Expectation("mapreduce-recovers-skew",
                    "map-reduce aggregation removes the skew penalty",
                    _table5_mapreduce_recovers),
        Expectation("counting-scales-with-size",
                    "non-skewed counting throughput grows with filter size",
                    _table5_throughput_scales),
        Expectation("zipfian-column-flat",
                    "the non-MR Zipfian column does not scale with size",
                    _table5_zipfian_flat),
        Expectation("high-throughput-counting",
                    "UR counting exceeds 300 M/s at the largest size",
                    _table5_headline),
    ),
))


# --------------------------------------------------------------------------
# Ablations
# --------------------------------------------------------------------------
def _max_load_factor(config: TCFConfig, n_slots: int) -> float:
    """Fill a TCF until the first insertion failure; return the load factor."""
    filt = PointTCF(n_slots, config, StatsRecorder())
    keys = generate_keys(n_slots * 2, seed=0xAB1A7E)
    try:
        for key in keys:
            filt.insert(int(key))
    except FilterFullError:
        pass
    return filt.load_factor


def _shortcut_reads_per_insert(shortcut_fill: float, n_slots: int, n_keys: int) -> float:
    config = TCFConfig(fingerprint_bits=16, block_size=16, shortcut_fill=shortcut_fill)
    recorder = StatsRecorder()
    filt = PointTCF(n_slots, config, recorder)
    keys = generate_keys(n_keys, seed=0x5C)
    for key in keys:
        filt.insert(int(key))
    return recorder.total.cache_line_reads / float(n_keys)


def _ablation_quotient_bits(n_keys: int) -> int:
    """Quotient bits sizing the GQF ablations so presets can scale the
    batch: the smallest table holding ``n_keys`` at <= 75% fill, which
    reproduces the historical 3000-keys-into-2^12 (~73% fill) ratio."""
    return max(11, int(np.ceil(np.log2(n_keys / 0.75))))


def _mapreduce_measure(use_mapreduce: bool, n_keys: int) -> Dict[str, int]:
    dataset = zipfian_count_dataset(n_keys, seed=0x21F)
    recorder = StatsRecorder()
    gqf = BulkGQF(_ablation_quotient_bits(n_keys), 8, region_slots=1024,
                  use_mapreduce=use_mapreduce, recorder=recorder)
    gqf.bulk_insert(dataset.keys)
    return {
        "slot_writes": int(recorder.total.cache_line_writes),
        "slots_shifted": int(recorder.total.slots_shifted),
    }


def _sorted_insert_measure(sort_first: bool, n_keys: int) -> int:
    keys = generate_keys(n_keys, seed=0x50F7)
    quotient_bits = _ablation_quotient_bits(n_keys)
    recorder = StatsRecorder()
    core = QuotientFilterCore(quotient_bits, 8, recorder, counting=True)
    scheme = FingerprintScheme(quotient_bits, 8)
    quotients, remainders = scheme.key_to_slot(keys)
    order = np.argsort(quotients) if sort_first else np.arange(keys.size)
    for i in order:
        core.insert_fingerprint(int(quotients[i]), int(remainders[i]))
    return int(recorder.total.slots_shifted)


def _run_ablations(preset: Preset) -> StageOutput:
    n_slots = preset.ablation_slots
    n_keys = preset.ablation_keys

    with_backing = TCFConfig(fingerprint_bits=16, block_size=16, backing_fraction=0.01)
    # A vanishingly small backing table approximates "no backing store".
    without_backing = TCFConfig(fingerprint_bits=16, block_size=16,
                                backing_fraction=1e-9)
    lf_with = _max_load_factor(with_backing, n_slots)
    lf_without = _max_load_factor(without_backing, n_slots)

    shortcut_keys = max(n_keys, n_slots // 2)
    reads_with = _shortcut_reads_per_insert(0.75, n_slots, shortcut_keys)
    reads_without = _shortcut_reads_per_insert(0.0, n_slots, shortcut_keys)

    mr = _mapreduce_measure(True, n_keys)
    direct = _mapreduce_measure(False, n_keys)

    sorted_shifted = _sorted_insert_measure(True, n_keys)
    unsorted_shifted = _sorted_insert_measure(False, n_keys)

    reports = {
        "ablation_backing_table": format_dict_rows(
            [{"configuration": "with backing table (1/100th)",
              "achievable_load_factor": lf_with},
             {"configuration": "without backing table",
              "achievable_load_factor": lf_without}],
            ["configuration", "achievable_load_factor"],
            "Ablation: TCF achievable load factor with/without the backing store",
        ),
        "ablation_shortcut": format_dict_rows(
            [{"configuration": "shortcut at 0.75 fill",
              "cache_line_reads_per_insert": reads_with},
             {"configuration": "shortcut disabled",
              "cache_line_reads_per_insert": reads_without}],
            ["configuration", "cache_line_reads_per_insert"],
            "Ablation: cache-line reads per TCF insert with/without the shortcut",
        ),
        "ablation_mapreduce": format_dict_rows(
            [{"configuration": "map-reduce", **mr},
             {"configuration": "direct", **direct}],
            ["configuration", "slot_writes", "slots_shifted"],
            "Ablation: GQF work on a Zipfian batch with/without map-reduce",
        ),
        "ablation_sorted_insert": format_dict_rows(
            [{"configuration": "sorted batch", "slots_shifted": sorted_shifted},
             {"configuration": "unsorted batch", "slots_shifted": unsorted_shifted}],
            ["configuration", "slots_shifted"],
            "Ablation: Robin-Hood slots shifted with sorted vs unsorted batches",
        ),
    }
    data = {
        "backing_table": {"with_lf": float(lf_with), "without_lf": float(lf_without)},
        "shortcut": {"reads_with": float(reads_with),
                     "reads_without": float(reads_without)},
        "mapreduce": {"mr": mr, "direct": direct},
        "sorted_insert": {"sorted_shifted": sorted_shifted,
                          "unsorted_shifted": unsorted_shifted},
    }
    return StageOutput(data=data, reports=reports)


def _ablation_backing(data: dict) -> Tuple[bool, str]:
    backing = data["backing_table"]
    # At benchmark scale the first both-blocks-full event strikes later than
    # at the paper's 2^28 scale, so the check is directional: the backing
    # table must extend the achievable load factor to the 90% target.
    if not backing["with_lf"] >= 0.89:
        return False, f"with the backing table the TCF only reaches {backing['with_lf']:.1%}"
    if not backing["without_lf"] < backing["with_lf"]:
        return False, "the backing table does not extend the achievable load factor"
    return True, (
        f"backing table extends achievable load "
        f"{backing['without_lf']:.1%} -> {backing['with_lf']:.1%} (paper: 79.6% -> 90%)"
    )


def _ablation_shortcut(data: dict) -> Tuple[bool, str]:
    shortcut = data["shortcut"]
    saved = shortcut["reads_without"] - shortcut["reads_with"]
    if not (shortcut["reads_with"] < shortcut["reads_without"] and saved > 0.5):
        return False, f"the shortcut saves only {saved:.2f} cache-line reads per insert"
    return True, f"the shortcut saves {saved:.2f} cache-line reads per insert (~one line)"


def _ablation_mapreduce(data: dict) -> Tuple[bool, str]:
    mapreduce = data["mapreduce"]
    if not mapreduce["mr"]["slot_writes"] < mapreduce["direct"]["slot_writes"]:
        return False, "map-reduce does not reduce slot writes on a Zipfian batch"
    return True, "map-reduce aggregation removes the hot-item work from skewed batches"


def _ablation_sorted(data: dict) -> Tuple[bool, str]:
    sorted_insert = data["sorted_insert"]
    bound = 0.2 * sorted_insert["unsorted_shifted"] + 5
    if not sorted_insert["sorted_shifted"] <= bound:
        return False, (
            f"sorted insertion still shifts {sorted_insert['sorted_shifted']} slots "
            f"(unsorted: {sorted_insert['unsorted_shifted']})"
        )
    return True, "sorting the batch eliminates intra-batch Robin-Hood shifting"


register_stage(Stage(
    name="ablations",
    title="Ablations: backing table, shortcut, map-reduce, sorted insert",
    kind="ablation",
    description="Verifies that the mechanisms the paper credits for its "
                "performance/robustness carry their weight in this "
                "reproduction.",
    run=_run_ablations,
    expectations=(
        Expectation("backing-table-extends-load",
                    "the backing table raises the achievable load factor to 90%",
                    _ablation_backing),
        Expectation("shortcut-saves-a-cache-line",
                    "the shortcut saves ~one cache-line read per insert",
                    _ablation_shortcut),
        Expectation("mapreduce-reduces-writes",
                    "map-reduce reduces slot writes on Zipfian batches",
                    _ablation_mapreduce),
        Expectation("sorted-insert-no-shifting",
                    "sorted batches eliminate intra-batch shifting",
                    _ablation_sorted),
    ),
))


# --------------------------------------------------------------------------
# Point-path wall-clock timing (perf-trajectory guard)
# --------------------------------------------------------------------------
#: Minimum sustained rates (keys/s) for the vectorised point paths; the
#: historical thresholds (50k inserts < 0.4s etc.) expressed per key so the
#: guard scales with the preset's batch sizes.
_TIMING_MIN_RATES = {
    "gqf_point_insert_s": 125_000.0,
    "tcf_point_insert_s": 83_000.0,
    "tcf_point_query_s": 100_000.0,
}


def _timed(label: str, timings: Dict[str, float], fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    timings[label] = round(time.perf_counter() - start, 6)
    return result


def _run_point_timing(preset: Preset) -> StageOutput:
    n_inserts = preset.timing_inserts
    n_queries = preset.timing_queries
    rng = np.random.default_rng(0xBEEF)
    keys = rng.integers(0, 2**63, size=n_inserts, dtype=np.uint64)
    timings: Dict[str, float] = {}

    gqf = PointGQF.for_capacity(n_inserts + n_queries, recorder=StatsRecorder())
    _timed("gqf_point_insert_s", timings, gqf.bulk_insert, keys)
    _timed("gqf_point_query_s", timings, gqf.bulk_query, keys[:n_queries])
    _timed("gqf_point_delete_s", timings, gqf.bulk_delete, keys[:n_queries])

    tcf = PointTCF.for_capacity(n_inserts + n_queries, recorder=StatsRecorder())
    _timed("tcf_point_insert_s", timings, tcf.bulk_insert, keys)
    _timed("tcf_point_query_s", timings, tcf.bulk_query, keys[:n_queries])
    _timed("tcf_point_delete_s", timings, tcf.bulk_delete, keys[:n_queries])

    genome = kmer_mod.random_genome(preset.kmer_genome_bp, seed=1)
    reads = kmer_mod.generate_reads(genome, coverage=preset.kmer_coverage, seed=2)
    kmers = _timed("kmer_extract_s", timings, kmer_mod.extract_kmers, reads, 21)
    counter = GPUKmerCounter(expected_kmers=int(kmers.size), exclude_singletons=True)
    _timed("app_kmer_counter_s", timings, counter.count_kmers, kmers)
    phase = KmerAnalysisPhase(expected_kmers=int(kmers.size))
    _timed("app_metahipmer_s", timings, phase.process_kmers, kmers)

    lines = ["Point-path wall-clock timings (functional simulation, this machine)",
             f"  batch sizes: {n_inserts} inserts, {n_queries} queries, "
             f"{int(kmers.size)} k-mers"]
    lines += [f"  {key:<24s} {seconds:8.4f}" for key, seconds in timings.items()]
    data = {
        "timings": timings,
        "preset": preset.name,
        "n_inserts": n_inserts,
        "n_queries": n_queries,
        "n_kmers": int(kmers.size),
        "min_rates": dict(_TIMING_MIN_RATES),
    }
    # BENCH_POINT.json is the cross-PR perf trajectory: it must carry the
    # batch sizes alongside the seconds, or runs at different presets would
    # look like phantom speedups/regressions.
    trajectory = {key: data[key]
                  for key in ("preset", "n_inserts", "n_queries", "n_kmers", "timings")}
    return StageOutput(
        data=data,
        reports={"bench_point_timing": "\n".join(lines)},
        files={"BENCH_POINT.json": json.dumps(trajectory, indent=2) + "\n"},
    )


def _timing_rates(data: dict) -> Tuple[bool, str]:
    batch = {"gqf_point_insert_s": data["n_inserts"],
             "tcf_point_insert_s": data["n_inserts"],
             "tcf_point_query_s": data["n_queries"]}
    for label, min_rate in data.get("min_rates", _TIMING_MIN_RATES).items():
        seconds = data["timings"][label]
        n = batch[label]
        rate = n / seconds if seconds > 0 else float("inf")
        if rate < min_rate:
            return False, (
                f"{label}: {rate:,.0f} keys/s is below the {min_rate:,.0f}/s "
                f"vectorisation guard"
            )
    return True, "the vectorised point paths sustain their guarded key rates"


register_stage(Stage(
    name="point_timing",
    title="Point-path wall-clock timing (perf-trajectory guard)",
    kind="timing",
    description="Measures how long the functional simulation itself takes "
                "on the point-API batched paths and the k-mer applications; "
                "also writes BENCH_POINT.json for the perf trajectory.",
    run=_run_point_timing,
    serial=True,
    expectations=(
        Expectation("point-paths-stay-vectorised",
                    "point-path wall-clock rates stay above the 50x guard",
                    _timing_rates),
    ),
))


# --------------------------------------------------------------------------
# Filter lifecycle: snapshots, k-way merge, online resize
# --------------------------------------------------------------------------
def _lifecycle_filters(preset: Preset):
    """One representative of each lifecycle-bearing family, sized to preset."""
    from ..baselines import BloomFilter, CPUCountingQuotientFilter
    from ..core.tcf import BulkTCF

    lg = preset.lifecycle_lg
    n_slots = 1 << lg
    return {
        "gqf_point": PointGQF(lg, 8, recorder=StatsRecorder()),
        "gqf_bulk": BulkGQF(lg, 8, recorder=StatsRecorder()),
        "tcf_point": PointTCF(n_slots, recorder=StatsRecorder()),
        "tcf_bulk": BulkTCF(n_slots, recorder=StatsRecorder()),
        "bloom": BloomFilter(n_slots * 16, recorder=StatsRecorder()),
        "cqf_cpu": CPUCountingQuotientFilter(lg, 8, recorder=StatsRecorder()),
    }


def _run_lifecycle(preset: Preset) -> StageOutput:
    from ..core.exceptions import SnapshotError
    from ..core.tcf import BulkTCF
    from ..lifecycle import expand, merge, save_filter

    rng = np.random.default_rng(0x51FE)
    n_keys = preset.lifecycle_keys
    # Keys 0/1 collide with the TCF backing store's reserved words and get
    # displaced there; skipping them keeps the bit-identity check strict.
    keys = rng.integers(2, 2**63, size=n_keys, dtype=np.uint64)

    snapshot_dir = os.environ.get("REPRO_SNAPSHOT_DIR")
    rows: List[Dict[str, object]] = []
    corruption_rejected = True
    with tempfile.TemporaryDirectory() as tmp:
        out_dir = snapshot_dir or tmp
        os.makedirs(out_dir, exist_ok=True)
        for name, filt in _lifecycle_filters(preset).items():
            filt.bulk_insert(keys)
            path = os.path.join(out_dir, f"{name}.rpro")
            start = time.perf_counter()
            nbytes = save_filter(filt, path)
            save_s = time.perf_counter() - start
            start = time.perf_counter()
            loaded = type(filt).load(path)
            load_s = time.perf_counter() - start
            identical = all(
                np.array_equal(np.asarray(a), np.asarray(b))
                for (_, a), (_, b) in zip(
                    sorted(filt.snapshot_state().items()),
                    sorted(loaded.snapshot_state().items()),
                )
            )
            queries_match = bool(
                np.array_equal(filt.bulk_query(keys), loaded.bulk_query(keys))
            )
            rows.append({
                "filter": name,
                "snapshot_bytes": int(nbytes),
                "save_s": round(save_s, 6),
                "load_s": round(load_s, 6),
                "save_mbps": round(nbytes / max(save_s, 1e-9) / 1e6, 1),
                "load_mbps": round(nbytes / max(load_s, 1e-9) / 1e6, 1),
                "bit_identical": bool(identical),
                "queries_match": queries_match,
            })
        # Corruption detection: a truncated snapshot must be rejected.
        probe = os.path.join(tmp, "truncated.rpro")
        small = PointGQF(8, 8, recorder=StatsRecorder())
        small.bulk_insert(keys[:64])
        size = save_filter(small, probe)
        with open(probe, "r+b") as fh:
            fh.truncate(size - 16)
        try:
            PointGQF.load(probe)
            corruption_rejected = False
        except SnapshotError:
            pass

    # k-way merge: k disjoint shards vs one filter fed the union.
    k = preset.lifecycle_merge_k
    shards = np.array_split(keys, k)
    gqf_parts = []
    for shard in shards:
        part = BulkGQF(preset.lifecycle_lg, 8, recorder=StatsRecorder())
        part.bulk_insert(shard)
        gqf_parts.append(part)
    start = time.perf_counter()
    gqf_merged = merge(*gqf_parts)
    gqf_merge_s = time.perf_counter() - start
    reference = BulkGQF(gqf_merged.scheme.quotient_bits,
                        gqf_merged.scheme.remainder_bits,
                        recorder=StatsRecorder(), enforce_alignment=False)
    reference.bulk_insert(keys)
    gqf_merge_exact = bool(
        np.array_equal(
            gqf_merged.core.slots.peek(), reference.core.slots.peek()
        )
    ) and bool(gqf_merged.bulk_query(keys).all())

    tcf_parts = []
    for shard in shards:
        part = BulkTCF(1 << preset.lifecycle_lg, recorder=StatsRecorder(),
                       auto_resize=True)
        part.bulk_insert(shard)
        tcf_parts.append(part)
    start = time.perf_counter()
    tcf_merged = merge(*tcf_parts)
    tcf_merge_s = time.perf_counter() - start
    tcf_merge_complete = bool(tcf_merged.bulk_query(keys).all())

    # Online resize: fill far past the initial capacity.
    resize_tcf = PointTCF(256, recorder=StatsRecorder(), auto_resize=True)
    start = time.perf_counter()
    resize_tcf.bulk_insert(keys)
    tcf_resize_s = time.perf_counter() - start
    tcf_resize_ok = bool(resize_tcf.bulk_query(keys).all())

    # Start at a quarter of the key count so growth is unavoidable (the
    # core's overflow region can absorb ~25% past the canonical slots).
    start_lg = max(4, int(np.log2(max(16, n_keys // 4))))
    resize_gqf = PointGQF(start_lg, 16, recorder=StatsRecorder(), auto_resize=True)
    start = time.perf_counter()
    resize_gqf.bulk_insert(keys)
    gqf_resize_s = time.perf_counter() - start
    gqf_resize_ok = bool(resize_gqf.bulk_query(keys).all())
    expanded = expand(gqf_parts[0])
    expand_ok = (
        expanded.n_slots == 2 * gqf_parts[0].n_slots
        and bool(expanded.bulk_query(shards[0]).all())
    )

    data = {
        "preset": preset.name,
        "n_keys": int(n_keys),
        "merge_k": int(k),
        "snapshots": rows,
        "corruption_rejected": corruption_rejected,
        "snapshot_dir": snapshot_dir or "",
        "gqf_merge": {"seconds": round(gqf_merge_s, 6), "exact": gqf_merge_exact,
                      "quotient_bits": int(gqf_merged.scheme.quotient_bits)},
        "tcf_merge": {"seconds": round(tcf_merge_s, 6),
                      "complete": tcf_merge_complete,
                      "n_slots": int(tcf_merged.table.n_slots)},
        "tcf_resize": {"seconds": round(tcf_resize_s, 6), "ok": tcf_resize_ok,
                       "n_resizes": int(resize_tcf.n_resizes),
                       "n_slots": int(resize_tcf.table.n_slots)},
        "gqf_resize": {"seconds": round(gqf_resize_s, 6), "ok": gqf_resize_ok,
                       "n_resizes": int(resize_gqf.n_resizes),
                       "quotient_bits": int(resize_gqf.scheme.quotient_bits)},
        "explicit_expand_ok": bool(expand_ok),
    }
    lines = [
        "Filter lifecycle: snapshot round trips, k-way merge, online resize",
        f"  {n_keys} keys per filter, {k}-way merge, preset {preset.name!r}",
        "",
        f"  {'filter':<12s} {'bytes':>10s} {'save MB/s':>10s} {'load MB/s':>10s} "
        f"{'identical':>10s}",
    ]
    for row in rows:
        lines.append(
            f"  {row['filter']:<12s} {row['snapshot_bytes']:>10d} "
            f"{row['save_mbps']:>10.1f} {row['load_mbps']:>10.1f} "
            f"{str(row['bit_identical']):>10s}"
        )
    lines += [
        "",
        f"  truncated snapshot rejected: {corruption_rejected}",
        f"  GQF {k}-way merge: exact={gqf_merge_exact} "
        f"({gqf_merge_s:.4f}s, q={data['gqf_merge']['quotient_bits']})",
        f"  TCF {k}-way merge: complete={tcf_merge_complete} "
        f"({tcf_merge_s:.4f}s, {data['tcf_merge']['n_slots']} slots)",
        f"  TCF online resize: {data['tcf_resize']['n_resizes']} doublings to "
        f"{data['tcf_resize']['n_slots']} slots, membership intact={tcf_resize_ok}",
        f"  GQF online resize: q grew to {data['gqf_resize']['quotient_bits']}, "
        f"membership intact={gqf_resize_ok}",
    ]
    return StageOutput(data=data, reports={"lifecycle": "\n".join(lines)})


def _lifecycle_roundtrip(data: dict) -> Tuple[bool, str]:
    bad = [r["filter"] for r in data["snapshots"]
           if not (r["bit_identical"] and r["queries_match"])]
    if bad:
        return False, f"snapshot round trip not bit-identical for: {', '.join(bad)}"
    return True, "every filter family round-trips through save/load bit-identically"


def _lifecycle_corruption(data: dict) -> Tuple[bool, str]:
    if not data["corruption_rejected"]:
        return False, "a truncated snapshot loaded without error"
    return True, "the checksum rejects truncated snapshots"


def _lifecycle_merge(data: dict) -> Tuple[bool, str]:
    if not data["gqf_merge"]["exact"]:
        return False, "the merged GQF differs from a filter fed the union"
    if not data["tcf_merge"]["complete"]:
        return False, "the merged TCF lost members"
    return True, "k-way merge preserves membership (GQF merge is bit-exact)"


def _lifecycle_resize(data: dict) -> Tuple[bool, str]:
    tcf, gqf = data["tcf_resize"], data["gqf_resize"]
    if not (tcf["ok"] and tcf["n_resizes"] > 0):
        return False, "the TCF did not absorb an over-capacity insert stream"
    if not (gqf["ok"] and gqf["n_resizes"] > 0):
        return False, "the GQF did not absorb an over-capacity insert stream"
    if not data["explicit_expand_ok"]:
        return False, "expand() did not double the filter or lost members"
    return True, "filters filled past capacity grow online instead of raising"


register_stage(Stage(
    name="lifecycle",
    title="Filter lifecycle: snapshots, k-way merge, online resize",
    kind="ablation",
    description="Exercises the lifecycle layer the MetaHipMer pipeline "
                "assumes: versioned zero-copy snapshots for every filter, "
                "k-way sorted-run merges, and load-factor-triggered online "
                "resizing for the GQF and TCF cores.",
    run=_run_lifecycle,
    serial=True,
    expectations=(
        Expectation("snapshot-roundtrip-bit-identical",
                    "save/load round-trips every filter family bit-identically",
                    _lifecycle_roundtrip),
        Expectation("snapshot-detects-corruption",
                    "the CRC rejects truncated snapshot files",
                    _lifecycle_corruption),
        Expectation("merge-preserves-membership",
                    "k-way merges preserve membership and counts",
                    _lifecycle_merge),
        Expectation("resize-absorbs-overflow",
                    "over-capacity insert streams trigger online growth",
                    _lifecycle_resize),
    ),
))


# --------------------------------------------------------------------------
# Filter service: fault-tolerant bulk-job traffic, clean and under chaos
# --------------------------------------------------------------------------
def _run_service(preset: Preset) -> StageOutput:
    from ..service import FaultConfig, TrafficConfig, run_traffic

    traffic = TrafficConfig(
        n_clients=preset.service_clients,
        jobs_per_client=preset.service_jobs_per_client,
        keys_per_job=preset.service_keys_per_job,
    )
    # CI exports REPRO_JOURNAL_DIR to upload the chaos run's job journal as
    # a build artifact; locally a temp dir is used and discarded.
    journal_root = os.environ.get("REPRO_JOURNAL_DIR")
    with tempfile.TemporaryDirectory() as tmp:
        clean = run_traffic(
            os.path.join(tmp, "clean"),
            traffic=traffic,
            faults=FaultConfig(),
            with_recovery=False,
        )
        faulty_dir = journal_root or os.path.join(tmp, "faulty")
        os.makedirs(faulty_dir, exist_ok=True)
        faulty = run_traffic(
            faulty_dir,
            traffic=traffic,
            faults=FaultConfig(
                seed=0xC0A5,
                worker_crash_rate=0.25,
                slow_batch_rate=0.20,
                slow_batch_s=0.002,
                filter_full_rate=0.15,
            ),
            with_recovery=True,
        )

    data = {
        "preset": preset.name,
        "n_jobs": int(traffic.n_clients * traffic.jobs_per_client),
        "keys_per_job": int(traffic.keys_per_job),
        "clean": clean,
        "faulty": faulty,
    }
    lines = [
        "Filter service: bulk-job traffic, clean and under fault injection",
        f"  {traffic.n_clients} clients x {traffic.jobs_per_client} jobs x "
        f"{traffic.keys_per_job} keys, preset {preset.name!r}",
        "",
        f"  {'run':<8s} {'jobs/s':>9s} {'keys/s':>11s} {'p50 ms':>8s} "
        f"{'p99 ms':>8s} {'goodput':>8s} {'lost':>5s} {'dup':>5s}",
    ]
    for label, run in (("clean", clean), ("faulty", faulty)):
        lines.append(
            f"  {label:<8s} {run['jobs_per_s']:>9.1f} {run['keys_per_s']:>11.1f} "
            f"{run['latency_p50_s'] * 1e3:>8.2f} {run['latency_p99_s'] * 1e3:>8.2f} "
            f"{run['goodput']:>8.4f} {run['lost_acks']:>5d} "
            f"{run['duplicate_effects']:>5d}"
        )
    recovery = faulty.get("recovery", {})
    lines += [
        "",
        f"  statuses (faulty): {faulty['status_counts']}",
        f"  faults fired: {faulty['faults_fired']}",
        f"  registry (faulty): {faulty['registry']}",
        f"  recovery: torn={recovery.get('torn_tenant')!r} "
        f"recreated={recovery.get('recreated')} "
        f"lost_after_recovery={recovery.get('lost_after_recovery')} "
        f"idempotent_across_restart={recovery.get('idempotent_across_restart')}",
    ]
    return StageOutput(data=data, reports={"service": "\n".join(lines)})


def _service_all_terminal(data: dict) -> Tuple[bool, str]:
    for label in ("clean", "faulty"):
        run = data[label]
        if not run["drained"] or run["non_terminal"]:
            return False, (
                f"{label} run left {run['non_terminal']} job(s) non-terminal "
                f"(drained={run['drained']})"
            )
    return True, "every submitted job reached a terminal state in both runs"


def _service_effects_exact(data: dict) -> Tuple[bool, str]:
    for label in ("clean", "faulty"):
        run = data[label]
        if run["lost_acks"] or run["duplicate_effects"]:
            return False, (
                f"{label} run: {run['lost_acks']} lost ack(s), "
                f"{run['duplicate_effects']} duplicated effect(s)"
            )
    recovery = data["faulty"].get("recovery", {})
    if recovery.get("lost_after_recovery", 0):
        return False, (
            f"{recovery['lost_after_recovery']} acked key(s) missing after "
            f"journal recovery"
        )
    return True, (
        "no lost acks and no duplicated effects, including across the "
        "torn-snapshot crash recovery"
    )


def _service_idempotent(data: dict) -> Tuple[bool, str]:
    if not data["clean"]["idempotent_resubmits"]:
        return False, "clean-run resubmission returned a different result"
    if not data["faulty"]["idempotent_resubmits"]:
        return False, "faulty-run resubmission returned a different result"
    recovery = data["faulty"].get("recovery", {})
    if not recovery.get("idempotent_across_restart", False):
        return False, "a pre-crash request ID was re-executed after recovery"
    return True, (
        "request-ID resubmission returns the original result, in-process "
        "and across crash recovery"
    )


def _service_absorbs_faults(data: dict) -> Tuple[bool, str]:
    faulty = data["faulty"]
    fired = sum(faulty["faults_fired"].values())
    if fired == 0:
        return False, "the chaos run injected no faults (harness misconfigured)"
    # Growable tenants must ack everything; the fixed-capacity tenant is
    # designed to fill (that is the PARTIAL-path exercise), so it is held to
    # the overall goodput floor only.
    if data["clean"]["goodput_growable"] < 1.0:
        return False, (
            f"clean growable goodput {data['clean']['goodput_growable']} < 1.0: "
            f"keys were lost without any injected faults"
        )
    # Bounded retries may legitimately exhaust on an unlucky batch, so the
    # chaos run gets a small margin rather than an exact-1.0 gate.
    if faulty["goodput_growable"] < 0.9:
        return False, (
            f"faulty growable goodput {faulty['goodput_growable']} < 0.9: "
            f"retries did not absorb the injected faults"
        )
    if faulty["goodput"] < 0.5:
        return False, (
            f"faulty overall goodput {faulty['goodput']} < 0.5"
        )
    return True, (
        f"{fired} injected fault(s) absorbed: clean growable goodput 1.0, "
        f"faulty growable goodput {faulty['goodput_growable']}"
    )


def _service_bounded_p99(data: dict) -> Tuple[bool, str]:
    # A hang gate, not a perf benchmark: the bound scales with the preset's
    # traffic volume (the submission burst is closed-loop, so tail latency
    # tracks the drain makespan).
    bound_s = max(5.0, data["n_jobs"] * data["keys_per_job"] / 1000.0)
    for label in ("clean", "faulty"):
        p99 = data[label]["latency_p99_s"]
        if p99 > bound_s:
            return False, f"{label} p99 latency {p99:.3f}s exceeds {bound_s}s"
    return True, (
        f"p99 latency bounded (clean {data['clean']['latency_p99_s'] * 1e3:.1f}ms, "
        f"faulty {data['faulty']['latency_p99_s'] * 1e3:.1f}ms)"
    )


register_stage(Stage(
    name="service",
    title="Filter service: fault-tolerant bulk-job traffic",
    kind="ablation",
    description="Drives the repro.service bulk-job front end with mixed "
                "multi-tenant traffic, clean and under seeded fault "
                "injection (worker crashes, slow batches, filter-full "
                "storms, a torn snapshot + journal recovery), and audits "
                "the robustness invariants: every job terminal, no lost "
                "acks, no duplicated effects, idempotent resubmission, "
                "bounded tail latency.",
    run=_run_service,
    serial=True,
    expectations=(
        Expectation("service-all-jobs-terminal",
                    "every submitted job reaches a terminal state",
                    _service_all_terminal),
        Expectation("service-no-lost-or-duplicated-effects",
                    "acked effects are exact: none lost, none duplicated",
                    _service_effects_exact),
        Expectation("service-idempotent-resubmission",
                    "resubmitting a request ID returns the original result",
                    _service_idempotent),
        Expectation("service-absorbs-faults",
                    "injected faults are retried into successful outcomes",
                    _service_absorbs_faults),
        Expectation("service-bounded-p99",
                    "tail latency stays bounded even under chaos",
                    _service_bounded_p99),
    ),
))


# --------------------------------------------------------------------------
# Sharded filters: process-parallel scaling curve
# --------------------------------------------------------------------------
#: Shard counts of the scaling curve (the paper's multi-GPU shape, Table 4's
#: "one filter per device" usage, rebuilt over host processes).
SHARDING_CURVE = (1, 2, 4, 8)


def _sharding_point(n_shards: int, preset: Preset, repeats: int = 2) -> dict:
    """Measure one curve point: best-of-N bulk insert + query wall clock."""
    from ..sharding import ShardedFilter

    shard_lg = preset.sharding_lg - int(np.log2(n_shards))
    rng = np.random.default_rng(0x5A4D)
    keys = rng.integers(0, 2**63, size=preset.sharding_keys, dtype=np.uint64)
    query_keys = keys[: preset.sharding_queries]
    best_insert_s = best_query_s = float("inf")
    routed = balance = 0.0
    all_present = True
    for _ in range(repeats):
        filt = ShardedFilter(
            n_shards,
            BulkGQF,
            {"quotient_bits": shard_lg, "remainder_bits": 8},
            max_workers=n_shards,
        )
        filt.warm_up()
        start = time.perf_counter()
        filt.bulk_insert(keys)
        best_insert_s = min(best_insert_s, time.perf_counter() - start)
        start = time.perf_counter()
        present = filt.bulk_query(query_keys)
        best_query_s = min(best_query_s, time.perf_counter() - start)
        all_present = all_present and bool(present.all())
        items = filt.shard_items()
        routed = float(sum(items))
        balance = max(items) / (sum(items) / len(items))
        filt.close()
    return {
        "n_shards": n_shards,
        "insert_s": round(best_insert_s, 6),
        "query_s": round(best_query_s, 6),
        "insert_rate": round(preset.sharding_keys / best_insert_s, 1),
        "query_rate": round(preset.sharding_queries / best_query_s, 1),
        "n_items": int(routed),
        "balance": round(balance, 4),
        "all_inserted_present": all_present,
    }


def _run_sharding(preset: Preset) -> StageOutput:
    curve = [_sharding_point(n, preset) for n in SHARDING_CURVE]
    base_rate = curve[0]["insert_rate"]
    for point in curve:
        point["insert_speedup"] = round(point["insert_rate"] / base_rate, 3)
        point["query_speedup"] = round(point["query_rate"] / curve[0]["query_rate"], 3)
    lines = [
        "Sharded-filter scaling curve (process-parallel bulk insert/query)",
        f"  logical capacity 2^{preset.sharding_lg} slots, "
        f"{preset.sharding_keys} keys, {preset.sharding_queries} queries, "
        f"{os.cpu_count()} host cores",
        f"  {'shards':>7s} {'insert M/s':>11s} {'speedup':>8s} "
        f"{'query M/s':>10s} {'balance':>8s}",
    ]
    lines += [
        f"  {p['n_shards']:>7d} {p['insert_rate'] / 1e6:>11.3f} "
        f"{p['insert_speedup']:>8.2f} {p['query_rate'] / 1e6:>10.3f} "
        f"{p['balance']:>8.3f}"
        for p in curve
    ]
    data = {
        "curve": curve,
        "preset": preset.name,
        "cpu_count": os.cpu_count(),
        "n_keys": preset.sharding_keys,
        "n_queries": preset.sharding_queries,
        "sharding_lg": preset.sharding_lg,
    }
    return StageOutput(
        data=data,
        reports={"bench_sharding": "\n".join(lines)},
        files={"BENCH_SHARDING.json": json.dumps(data, indent=2) + "\n"},
    )


def _sharding_routes_all_keys(data: dict) -> Tuple[bool, str]:
    # Item counts differ from n_keys only by fingerprint collisions (the
    # shard geometry changes with the shard count, so small cross-curve
    # variation is expected); routing must never *drop* a key.
    for point in data["curve"]:
        if point["n_items"] < 0.98 * data["n_keys"]:
            return False, (
                f"{point['n_shards']} shard(s) hold {point['n_items']} items "
                f"for {data['n_keys']} routed keys"
            )
    return True, "every curve point holds its full routed key set"


def _sharding_balanced(data: dict) -> Tuple[bool, str]:
    worst = max(data["curve"], key=lambda p: p["balance"])
    if worst["balance"] > 1.25:
        return False, (
            f"{worst['n_shards']} shards: heaviest shard is {worst['balance']:.3f}x "
            f"the mean (router skew)"
        )
    return True, (
        f"shards stay balanced (worst max/mean {worst['balance']:.3f} "
        f"at {worst['n_shards']} shards)"
    )


def _sharding_query_parity(data: dict) -> Tuple[bool, str]:
    for point in data["curve"]:
        if not point["all_inserted_present"]:
            return False, (
                f"{point['n_shards']} shard(s): an inserted key queried False "
                f"(routing must be insert/query consistent)"
            )
    return True, "inserted keys query positive at every shard count"


def _sharding_scales(data: dict) -> Tuple[bool, str]:
    # Core-aware gate: wall-clock scaling needs physical parallelism, so the
    # bar moves with the machine (CI pins the strict 4-core variant).
    cores = data["cpu_count"] or 1
    speedups = {p["n_shards"]: p["insert_speedup"] for p in data["curve"]}
    if cores >= 4:
        if speedups.get(4, 0.0) < 2.0:
            return False, (
                f"4-shard insert speedup {speedups.get(4)}x < 2.0x "
                f"on a {cores}-core host"
            )
        return True, f"4 shards insert {speedups[4]}x faster than 1 ({cores} cores)"
    if cores >= 2:
        if speedups.get(2, 0.0) < 1.3:
            return False, (
                f"2-shard insert speedup {speedups.get(2)}x < 1.3x "
                f"on a {cores}-core host"
            )
        return True, f"2 shards insert {speedups[2]}x faster than 1 ({cores} cores)"
    return True, (
        f"single-core host: scaling not measurable "
        f"(1-shard rate {data['curve'][0]['insert_rate'] / 1e6:.2f} M/s recorded)"
    )


register_stage(Stage(
    name="sharding",
    title="Sharded filters: process-parallel scaling curve",
    kind="timing",
    description="Hash-partitions one logical GQF across 1/2/4/8 shared-"
                "memory shards, runs bulk inserts and queries across a "
                "process pool, and records the wall-clock scaling curve; "
                "also writes BENCH_SHARDING.json for the perf trajectory.",
    run=_run_sharding,
    serial=True,
    expectations=(
        Expectation("sharding-routes-all-keys",
                    "every key lands in exactly one shard, none dropped",
                    _sharding_routes_all_keys),
        Expectation("sharding-stays-balanced",
                    "the router spreads keys evenly (max/mean <= 1.25)",
                    _sharding_balanced),
        Expectation("sharding-query-parity",
                    "inserted keys query positive at every shard count",
                    _sharding_query_parity),
        Expectation("sharding-insert-scales",
                    "bulk inserts speed up with shards (core-aware gate)",
                    _sharding_scales),
    ),
))
