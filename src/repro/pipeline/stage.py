"""Stage and expectation primitives plus the stage registry.

A **stage** regenerates one figure or table of the paper: it has a name
(``fig3``, ``table2``, ...), a run function that takes a
:class:`~repro.pipeline.presets.Preset` and returns a
:class:`StageOutput` (a JSON-serialisable payload plus the formatted text
reports), and a tuple of **expectations** — qualitative claims lifted from
the paper that are evaluated against the payload.  Because expectations
read only the payload, ``repro check`` can re-evaluate them against
artifacts loaded from disk, long after the run that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple, Union

from .presets import Preset

#: Version stamped into every JSON artifact; bump on payload-shape changes.
SCHEMA_VERSION = 1

#: An expectation check returns either a bare bool or ``(ok, detail)``.
CheckResult = Union[bool, Tuple[bool, str]]


@dataclass(frozen=True)
class Expectation:
    """One qualitative claim from the paper, checkable against a payload."""

    id: str
    description: str
    check: Callable[[dict], CheckResult]

    def evaluate(self, data: dict) -> "ExpectationResult":
        try:
            outcome = self.check(data)
        except Exception as exc:  # noqa: BLE001 - surfaced as a failure
            return ExpectationResult(self.id, self.description, False,
                                     f"check raised {type(exc).__name__}: {exc}")
        if isinstance(outcome, tuple):
            ok, detail = outcome
            return ExpectationResult(self.id, self.description, bool(ok), detail)
        return ExpectationResult(self.id, self.description, bool(outcome), "")


@dataclass(frozen=True)
class ExpectationResult:
    """Outcome of evaluating one expectation."""

    expectation_id: str
    description: str
    passed: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.expectation_id,
            "description": self.description,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class StageOutput:
    """What a stage run produces.

    ``data`` is the JSON-serialisable payload the expectations read;
    ``reports`` maps report names to formatted text (written as
    ``<name>.txt``); ``files`` maps verbatim extra artifact filenames to
    their content (e.g. the ``BENCH_POINT.json`` perf-trajectory file).
    """

    data: dict
    reports: Dict[str, str] = field(default_factory=dict)
    files: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Stage:
    """A registered figure/table reproduction stage."""

    name: str
    title: str
    kind: str  # "figure" | "table" | "ablation" | "timing"
    description: str
    run: Callable[[Preset], StageOutput]
    expectations: Tuple[Expectation, ...] = ()
    schema_version: int = SCHEMA_VERSION
    #: Wall-clock-sensitive stages run after the process pool drains, so
    #: their measurements are not contended by sibling stages.
    serial: bool = False

    def evaluate(self, data: dict) -> List[ExpectationResult]:
        """Evaluate every declared expectation against a payload."""
        return [expectation.evaluate(data) for expectation in self.expectations]


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------
_REGISTRY: Dict[str, Stage] = {}
_LOADED = False


def register_stage(stage: Stage) -> Stage:
    """Add a stage to the registry (name collisions are an error)."""
    if stage.name in _REGISTRY:
        raise ValueError(f"stage {stage.name!r} is already registered")
    _REGISTRY[stage.name] = stage
    return stage


def get_stage(name: str) -> Stage:
    """Look a stage up by name (raises ``KeyError`` listing the registry)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def stage_names() -> List[str]:
    """Registered stage names, in registration (paper) order."""
    _ensure_loaded()
    return list(_REGISTRY)


def all_stages() -> List[Stage]:
    """Every registered stage, in registration (paper) order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def _ensure_loaded() -> None:
    """Populate the registry from the stage definitions module.

    Guarded by an explicit flag (not registry emptiness) so a consumer
    registering a custom stage first cannot suppress the built-in load.
    """
    global _LOADED
    if not _LOADED:
        _LOADED = True
        from . import stages  # noqa: F401 - importing registers the stages
