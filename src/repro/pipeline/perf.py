"""Perf-trajectory gate: fresh wall-clock rates vs committed history.

``repro check --perf`` compares the rate metrics of a fresh run's
``BENCH_POINT.json`` / ``BENCH_SHARDING.json`` against the *committed*
copies under ``benchmarks/results/`` and fails when a fresh rate falls
below ``median(history) / slack``.

The committed baseline for each file is either one raw snapshot (exactly
what the stage wrote) or an accumulating history document::

    {"history": [<snapshot at smoke>, <snapshot at default>, ...]}

Only history entries recorded at the *same preset* as the fresh run are
compared — rates at different batch sizes are not comparable.  The learned
threshold is deliberately loose (``slack`` defaults to 3.0, overridable
with ``REPRO_PERF_SLACK``): shared CI runners are noisy, and the gate's
job is to catch the order-of-magnitude regressions that silently
de-vectorise a hot path (the failure mode PR 4 fixed by hand), not 10%
jitter.  Tighter per-path floors live in the stages' own expectations.

A fresh metric with no baseline history yet is reported and skipped, so
adding a new benchmark never breaks the gate retroactively; a *missing
baseline file* fails it, because the trajectory cannot be checked at all.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
from typing import Callable, Dict, List, Optional

#: Default ratio by which a fresh rate may trail the baseline median.
DEFAULT_SLACK = 3.0

#: The benchmark files the gate knows how to read.
PERF_FILES = ("BENCH_POINT.json", "BENCH_SHARDING.json")


def _slack() -> float:
    raw = os.environ.get("REPRO_PERF_SLACK", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SLACK
    return value if value >= 1.0 else DEFAULT_SLACK


def _point_rates(entry: dict) -> Dict[str, float]:
    """keys/s (or k-mers/s) for every timing in a BENCH_POINT snapshot."""
    rates: Dict[str, float] = {}
    for label, seconds in entry.get("timings", {}).items():
        if "kmer" in label or label.startswith("app_"):
            batch = entry.get("n_kmers")
        elif "insert" in label:
            batch = entry.get("n_inserts")
        else:  # query / delete batches
            batch = entry.get("n_queries")
        if batch and seconds and seconds > 0:
            rates[label.removesuffix("_s")] = batch / seconds
    return rates


def _sharding_rates(entry: dict) -> Dict[str, float]:
    """Rates for the anchor points of a BENCH_SHARDING scaling curve."""
    curve = entry.get("curve") or []
    if not curve:
        return {}
    rates = {
        "sharding_insert_1shard": float(curve[0]["insert_rate"]),
        "sharding_query_1shard": float(curve[0]["query_rate"]),
        "sharding_insert_best": max(float(p["insert_rate"]) for p in curve),
    }
    return rates


_EXTRACTORS: Dict[str, Callable[[dict], Dict[str, float]]] = {
    "BENCH_POINT.json": _point_rates,
    "BENCH_SHARDING.json": _sharding_rates,
}


def _baseline_entries(doc: object) -> List[dict]:
    if isinstance(doc, dict) and isinstance(doc.get("history"), list):
        return [entry for entry in doc["history"] if isinstance(entry, dict)]
    if isinstance(doc, dict):
        return [doc]
    return []


def _load_json(path: pathlib.Path) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def check_perf(
    results_dir,
    baseline_dir,
    log: Callable[[str], None] = print,
) -> int:
    """Gate the fresh run in ``results_dir`` against committed baselines.

    Returns 0 when every comparable metric holds, 1 otherwise.
    """
    results_dir = pathlib.Path(results_dir)
    baseline_dir = pathlib.Path(baseline_dir)
    slack = _slack()
    n_ok = n_failed = n_new = 0
    compared_any = False
    log(f"perf trajectory: {results_dir} vs baselines in {baseline_dir} "
        f"(slack {slack:g}x)")
    for name in PERF_FILES:
        fresh = _load_json(results_dir / name)
        if fresh is None:
            log(f"  {name}: no fresh artifact — skipped (the stage gate "
                f"reports the missing stage)")
            continue
        baseline_doc = _load_json(baseline_dir / name)
        if baseline_doc is None:
            log(f"  {name}: FAIL — no committed baseline under {baseline_dir}")
            n_failed += 1
            continue
        preset = fresh.get("preset")
        entries = [
            entry
            for entry in _baseline_entries(baseline_doc)
            if entry.get("preset") == preset
        ]
        if not entries:
            log(f"  {name}: FAIL — baseline has no history at preset {preset!r}")
            n_failed += 1
            continue
        extract = _EXTRACTORS[name]
        fresh_rates = extract(fresh)
        for metric, rate in sorted(fresh_rates.items()):
            history = [
                extract(entry)[metric]
                for entry in entries
                if metric in extract(entry)
            ]
            if not history:
                log(f"  new  {metric:<28s} {rate:>14,.0f}/s (no history yet)")
                n_new += 1
                continue
            compared_any = True
            floor = statistics.median(history) / slack
            if rate < floor:
                log(f"  FAIL {metric:<28s} {rate:>14,.0f}/s < floor "
                    f"{floor:,.0f}/s (median of {len(history)} baseline "
                    f"run(s) / {slack:g})")
                n_failed += 1
            else:
                log(f"  ok   {metric:<28s} {rate:>14,.0f}/s (floor "
                    f"{floor:,.0f}/s)")
                n_ok += 1
    if not compared_any and n_failed == 0:
        log("  FAIL: no metric could be compared against the baselines")
        return 1
    log(f"  {n_ok} metric(s) hold, {n_failed} failed, {n_new} without history")
    return 0 if n_failed == 0 else 1


def append_history(baseline_path, snapshot: dict, max_entries: int = 20) -> dict:
    """Fold a fresh snapshot into a baseline history document (helper for
    refreshing the committed baselines; keeps the newest ``max_entries``).
    """
    baseline_path = pathlib.Path(baseline_path)
    doc = _load_json(baseline_path)
    entries = _baseline_entries(doc) if doc is not None else []
    entries.append(snapshot)
    out = {"history": entries[-max_entries:]}
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    return out
