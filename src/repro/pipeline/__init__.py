"""repro.pipeline — the paper-reproduction pipeline.

Turns each figure/table of the paper into a registered, importable
**stage** (name, scale preset, run function, artifact schema, paper
expectations) and powers the ``python -m repro`` CLI:

* ``repro list`` — show stages and presets;
* ``repro run fig3 table2 ...`` — run specific stages;
* ``repro reproduce --preset smoke|default|paper`` — the full reproduction,
  parallel across processes, writing text reports, versioned JSON
  artifacts and a ``manifest.json`` (git SHA, preset, timings, status);
* ``repro check`` — re-evaluate every stage's qualitative paper claims
  against the artifacts on disk.

The ``benchmarks/`` pytest harness is a thin wrapper over the same stages.
"""

from .artifacts import (
    DEFAULT_RESULTS_DIR,
    load_manifest,
    load_stage_artifact,
    write_manifest,
    write_stage_artifact,
)
from .presets import PRESET_NAMES, PRESETS, Preset, get_preset
from .runner import execute_stage, run_stages
from .stage import (
    SCHEMA_VERSION,
    Expectation,
    ExpectationResult,
    Stage,
    StageOutput,
    all_stages,
    get_stage,
    register_stage,
    stage_names,
)

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "Expectation",
    "ExpectationResult",
    "PRESETS",
    "PRESET_NAMES",
    "Preset",
    "SCHEMA_VERSION",
    "Stage",
    "StageOutput",
    "all_stages",
    "execute_stage",
    "get_preset",
    "get_stage",
    "load_manifest",
    "load_stage_artifact",
    "register_stage",
    "run_stages",
    "stage_names",
    "write_manifest",
    "write_stage_artifact",
]
