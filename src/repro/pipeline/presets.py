"""Scale presets for the reproduction pipeline.

Every pipeline stage runs a *functional simulation* at a reduced scale and
feeds the measured event counts to the perf model at the paper's nominal
scale.  The preset bundles every scale knob the stages need, so one
``--preset`` flag moves the whole pipeline between:

* ``smoke``   — seconds-per-stage; the scale CI runs on every PR.  Large
  enough that the paper's qualitative claims (the expectation layer) hold.
* ``default`` — the scale the benchmark harness has historically used
  (``BENCH_SIM_LG`` grew to 15 as the hot paths were vectorised in
  PRs 1-4); minutes for the full pipeline.
* ``paper``   — the largest tractable simulation; closest event-count
  fidelity to the paper's 2^22..2^30 experiments.

``benchmarks/conftest.py`` re-exports the active preset's ``sim_lg`` /
``n_queries`` as ``BENCH_SIM_LG`` / ``BENCH_QUERIES`` for the pytest
harness, selected through the ``REPRO_PRESET`` environment variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Preset:
    """One named scale configuration for the whole pipeline."""

    name: str
    description: str
    #: log2 slots of the functional simulation behind the size sweeps
    #: (Figures 3, 4, 6 and Table 4).
    sim_lg: int
    #: queries simulated per phase in the size sweeps.
    n_queries: int
    #: Figure 5 sweeps 7 variants x 6 CG sizes, so it runs smaller.
    fig5_sim_lg: int
    fig5_n_queries: int
    #: Table 2 accuracy measurement: filter capacity (log2) and negative
    #: queries (the FP-rate resolution).
    fpr_lg_capacity: int
    fpr_n_negative: int
    #: Table 5 counting simulation scale (log2 slots).
    table5_sim_lg: int
    #: Ablations: TCF slots for the load-factor/shortcut runs and keys for
    #: the map-reduce/sorted-insert runs.
    ablation_slots: int
    ablation_keys: int
    #: Wall-clock timing stage: point-API batch sizes plus the k-mer
    #: application workload (genome size in bp, read coverage).
    timing_inserts: int
    timing_queries: int
    kmer_genome_bp: int
    kmer_coverage: float
    #: Table 3 functional k-mer run (separate knobs: its historical scale
    #: was ~11x smaller than the timing stage's k-mer workload).
    table3_genome_bp: int
    table3_coverage: float
    #: Lifecycle stage: log2 slots per filter, keys inserted per filter, and
    #: the k of the k-way merge.
    lifecycle_lg: int
    lifecycle_keys: int
    lifecycle_merge_k: int
    #: Service stage: simulated clients, jobs each, and keys per job for the
    #: clean and faulty mixed-traffic runs.
    service_clients: int
    service_jobs_per_client: int
    service_keys_per_job: int
    #: Sharding stage: keys inserted / queried per curve point and the log2
    #: of the *logical* slot count (split evenly across the shards).
    sharding_keys: int
    sharding_queries: int
    sharding_lg: int

    def scaled(self, **overrides: object) -> "Preset":
        """Return a copy with some knobs overridden (used by tests)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The registered presets, by name.
PRESETS: Dict[str, Preset] = {
    "smoke": Preset(
        name="smoke",
        description="CI scale: seconds per stage, qualitative claims only",
        sim_lg=10,
        n_queries=256,
        fig5_sim_lg=9,
        fig5_n_queries=128,
        fpr_lg_capacity=12,
        fpr_n_negative=4_000,
        table5_sim_lg=10,
        ablation_slots=4096,
        ablation_keys=1_500,
        timing_inserts=20_000,
        timing_queries=8_000,
        kmer_genome_bp=3_000,
        kmer_coverage=6.0,
        table3_genome_bp=3_000,
        table3_coverage=6.0,
        lifecycle_lg=10,
        lifecycle_keys=600,
        lifecycle_merge_k=3,
        service_clients=8,
        service_jobs_per_client=10,
        service_keys_per_job=48,
        sharding_keys=250_000,
        sharding_queries=100_000,
        sharding_lg=19,
    ),
    "default": Preset(
        name="default",
        description="benchmark-harness scale (the historical BENCH_SIM_LG)",
        sim_lg=15,
        n_queries=1024,
        fig5_sim_lg=10,
        fig5_n_queries=512,
        fpr_lg_capacity=13,
        fpr_n_negative=10_000,
        table5_sim_lg=15,
        ablation_slots=4096,
        ablation_keys=3_000,
        timing_inserts=50_000,
        timing_queries=20_000,
        kmer_genome_bp=20_000,
        kmer_coverage=10.0,
        table3_genome_bp=3_000,
        table3_coverage=6.0,
        lifecycle_lg=13,
        lifecycle_keys=4_000,
        lifecycle_merge_k=4,
        service_clients=16,
        service_jobs_per_client=16,
        service_keys_per_job=128,
        sharding_keys=600_000,
        sharding_queries=200_000,
        sharding_lg=20,
    ),
    "paper": Preset(
        name="paper",
        description="largest tractable simulation; closest to the paper",
        sim_lg=17,
        n_queries=4096,
        fig5_sim_lg=11,
        fig5_n_queries=1024,
        fpr_lg_capacity=16,
        fpr_n_negative=20_000,
        table5_sim_lg=16,
        ablation_slots=8192,
        ablation_keys=6_000,
        timing_inserts=100_000,
        timing_queries=40_000,
        kmer_genome_bp=40_000,
        kmer_coverage=12.0,
        table3_genome_bp=6_000,
        table3_coverage=8.0,
        lifecycle_lg=15,
        lifecycle_keys=16_000,
        lifecycle_merge_k=6,
        service_clients=32,
        service_jobs_per_client=24,
        service_keys_per_job=256,
        sharding_keys=1_200_000,
        sharding_queries=400_000,
        sharding_lg=21,
    ),
}

#: Preset names in menu order.
PRESET_NAMES: Tuple[str, ...] = tuple(PRESETS)


def get_preset(name: str) -> Preset:
    """Look a preset up by name (raises ``KeyError`` with the menu)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
        ) from None
