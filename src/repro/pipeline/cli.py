"""The ``repro`` command-line interface (also ``python -m repro``).

Commands
--------
``repro list``
    Show every registered stage and preset.
``repro run fig3 table2 ...``
    Run the named stages and write artifacts + manifest.
``repro reproduce --preset smoke|default|paper``
    Run all registered stages (the full paper reproduction).
``repro check``
    Re-evaluate every stage's paper expectations against the artifacts on
    disk; exits non-zero if any expectation fails.  This is the gate CI
    runs after ``repro reproduce``.  With ``--perf``, additionally gate
    the fresh ``BENCH_*.json`` rates against the committed baseline
    history under ``benchmarks/results/`` (``--perf-baseline-dir`` to
    point elsewhere; see :mod:`repro.pipeline.perf`).
``repro audit``
    Static analysis: the repo's custom AST lints, the service lock-order
    check (against ``docs/lock_hierarchy.json``), and — with ``--race`` —
    the dynamic lockset race detector over the chaos traffic scenario.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys
from typing import List, Optional

from ..audit.cli import add_audit_parser, run_audit
from .artifacts import DEFAULT_RESULTS_DIR, load_manifest, load_stage_artifact
from .presets import PRESET_NAMES, PRESETS, get_preset
from .runner import default_jobs, run_stages
from .stage import all_stages, stage_names


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", choices=PRESET_NAMES, default="default",
        help="scale preset (default: %(default)s)",
    )
    parser.add_argument(
        "--results-dir", type=pathlib.Path, default=DEFAULT_RESULTS_DIR,
        help="artifact directory (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="worker processes; 0 = one per stage capped at the CPU count, "
             "1 = run in-process (default: %(default)s)",
    )
    parser.add_argument(
        "--retries", type=int, default=0,
        help="re-run stages that failed transiently up to N extra times "
             "before the manifest records them as failed (default: %(default)s)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's figures/tables and check its claims.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered stages and presets")

    run = sub.add_parser("run", help="run specific stages")
    run.add_argument("stages", nargs="+", metavar="STAGE",
                     help=f"stage names (among: {', '.join(stage_names())})")
    _add_run_options(run)

    reproduce = sub.add_parser(
        "reproduce", help="run the full reproduction (all stages)"
    )
    _add_run_options(reproduce)

    check = sub.add_parser(
        "check", help="evaluate the paper expectations against saved artifacts"
    )
    check.add_argument(
        "--results-dir", type=pathlib.Path, default=DEFAULT_RESULTS_DIR,
        help="artifact directory to check (default: %(default)s)",
    )
    check.add_argument(
        "--perf", action="store_true",
        help="also gate the run's BENCH_*.json rates against the committed "
             "baseline history (median/slack floors; see repro.pipeline.perf)",
    )
    check.add_argument(
        "--perf-baseline-dir", type=pathlib.Path, default=DEFAULT_RESULTS_DIR,
        help="directory holding the committed BENCH_*.json baselines "
             "(default: %(default)s)",
    )

    add_audit_parser(sub)
    return parser


def _cmd_list() -> int:
    print("stages:")
    for stage in all_stages():
        expectation_count = len(stage.expectations)
        print(f"  {stage.name:<14s} [{stage.kind:<8s}] {stage.title}"
              f"  ({expectation_count} expectation{'s' if expectation_count != 1 else ''})")
    print("\npresets:")
    for preset in PRESETS.values():
        print(f"  {preset.name:<10s} sim_lg={preset.sim_lg:<3d} "
              f"n_queries={preset.n_queries:<5d} {preset.description}")
    return 0


def _cmd_run(names: List[str], preset_name: str,
             results_dir: pathlib.Path, jobs: int, retries: int = 0) -> int:
    # Resolve every name up front so typos fail before any stage runs.
    known = stage_names()
    unknown = [name for name in names if name not in known]
    if unknown:
        for name in unknown:
            line = f"error: unknown stage {name!r}"
            matches = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
            if matches:
                suggestions = " or ".join(repr(match) for match in matches)
                line += f" — did you mean {suggestions}?"
            print(line, file=sys.stderr)
        print("\navailable stages:", file=sys.stderr)
        for stage in all_stages():
            print(f"  {stage.name:<14s} {stage.title}", file=sys.stderr)
        return 2
    preset = get_preset(preset_name)
    if jobs <= 0:
        jobs = default_jobs(len(names))
    manifest = run_stages(names, preset, results_dir, jobs=jobs, progress=print,
                          retries=retries)
    totals = manifest["totals"]
    print(
        f"\n{totals['ok']}/{totals['stages']} stages ok, "
        f"{totals['expectations_passed']} expectations passed, "
        f"{totals['expectations_failed']} failed "
        f"({manifest['duration_s']:.1f}s; preset {manifest['preset']}, "
        f"git {manifest['git_sha'][:12]})"
    )
    print(f"artifacts: {results_dir}/manifest.json")
    if totals["failed"]:
        for record in manifest["stages"].values():
            if record["status"] == "failed":
                print(f"\nstage {record['name']} failed:\n{record.get('error', '')}",
                      file=sys.stderr)
        return 1
    # A completed run with violated paper expectations is still a failure
    # (`repro check` reprints the details from the artifacts).
    return 1 if totals["expectations_failed"] else 0


def _cmd_check(results_dir: pathlib.Path) -> int:
    try:
        manifest = load_manifest(results_dir)
    except FileNotFoundError:
        print(f"no manifest.json under {results_dir}; run "
              f"`repro reproduce` first", file=sys.stderr)
        return 2
    print(f"checking artifacts in {results_dir} "
          f"(preset {manifest['preset']}, git {manifest['git_sha'][:12]})")
    n_passed = n_failed = n_missing = 0
    # Gate every registered stage — not just whatever the last (possibly
    # partial `repro run`) manifest covered — so a full `repro check` always
    # means the whole reproduction holds.
    for stage in all_stages():
        name = stage.name
        record = manifest["stages"].get(name)
        if record is None:
            # An artifact may exist from an older run, but this manifest's
            # run did not produce it — mixed provenance is not a pass.
            print(f"  {name:<14s} MISSING from the recorded run (re-run "
                  f"`repro reproduce`)")
            n_missing += 1
            continue
        if record["status"] != "ok":
            # A stale artifact from an earlier run may still exist; don't
            # evaluate it as if the failed stage had produced it.
            print(f"  {name:<14s} SKIPPED (stage failed during the run)")
            n_missing += 1
            continue
        try:
            artifact = load_stage_artifact(results_dir, name)
        except FileNotFoundError:
            print(f"  {name:<14s} MISSING artifact {name}.json")
            n_missing += 1
            continue
        if artifact.get("preset") != manifest["preset"]:
            print(f"  {name:<14s} STALE artifact (preset "
                  f"{artifact.get('preset')!r} vs run {manifest['preset']!r})")
            n_missing += 1
            continue
        for result in stage.evaluate(artifact["data"]):
            status = "ok  " if result.passed else "FAIL"
            detail = result.detail or result.description
            print(f"  {status} {name:<12s} {result.expectation_id:<34s} {detail}")
            if result.passed:
                n_passed += 1
            else:
                n_failed += 1
    print(f"\n{n_passed} expectation(s) hold, {n_failed} failed, "
          f"{n_missing} stage(s) unavailable")
    return 0 if n_failed == 0 and n_missing == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.stages, args.preset, args.results_dir, args.jobs,
                        args.retries)
    if args.command == "reproduce":
        return _cmd_run(stage_names(), args.preset, args.results_dir, args.jobs,
                        args.retries)
    if args.command == "check":
        status = _cmd_check(args.results_dir)
        if args.perf:
            from .perf import check_perf

            print()
            status = max(status, check_perf(args.results_dir,
                                            args.perf_baseline_dir))
        return status
    if args.command == "audit":
        return run_audit(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
