"""Stage execution: sequential or parallel across processes.

Stages are independent of each other (each builds its own filters and
recorders), so the runner fans them out over a ``ProcessPoolExecutor``
keyed by *name* — the worker re-resolves the stage from the registry, which
keeps the submitted payload picklable and works under both ``fork`` and
``spawn`` start methods.  Results stream back as stages finish; artifacts
are written incrementally and the manifest last, so a crashed run still
leaves the completed stages' artifacts on disk.
"""

from __future__ import annotations

import os
import pathlib
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence

from .artifacts import stage_artifact_name, write_manifest, write_stage_artifact
from .presets import Preset, get_preset
from .stage import ExpectationResult, get_stage


def execute_stage(stage_name: str, preset: "Preset | str") -> dict:
    """Run one stage end to end; never raises (failures are recorded).

    ``preset`` may be a :class:`Preset` (honouring any ``.scaled()``
    overrides — the frozen dataclass pickles across the pool boundary) or a
    registered preset name.  Returns a picklable record: status, duration,
    payload, reports, files and evaluated expectations (or the formatted
    traceback on failure).  This is the process-pool worker, so it must
    stay module-level.
    """
    stage = get_stage(stage_name)
    if isinstance(preset, str):
        preset = get_preset(preset)
    record: dict = {
        "name": stage.name,
        "title": stage.title,
        "kind": stage.kind,
        "artifact": stage_artifact_name(stage.name),
    }
    start = time.perf_counter()
    try:
        output = stage.run(preset)
    except Exception:  # noqa: BLE001 - reported through the manifest
        record.update(
            status="failed",
            duration_s=round(time.perf_counter() - start, 3),
            error=traceback.format_exc(),
        )
        return record
    results = stage.evaluate(output.data)
    record.update(
        status="ok",
        duration_s=round(time.perf_counter() - start, 3),
        reports=sorted(output.reports),
        expectations={
            "passed": sum(1 for r in results if r.passed),
            "failed": sum(1 for r in results if not r.passed),
            "results": [r.as_dict() for r in results],
        },
        _output_data=output.data,
        _output_reports=output.reports,
        _output_files=output.files,
    )
    return record


def _pop_private(record: dict):
    """Split a worker record into (manifest record, run products)."""
    data = record.pop("_output_data", None)
    reports = record.pop("_output_reports", None)
    files = record.pop("_output_files", None)
    results = [
        ExpectationResult(r["id"], r["description"], r["passed"], r["detail"])
        for r in record.get("expectations", {}).get("results", [])
    ]
    return record, data, reports, files, results


def default_jobs(n_stages: int) -> int:
    """Default process count: one per stage, capped by the CPU count."""
    return max(1, min(n_stages, os.cpu_count() or 1))


def run_stages(
    stage_names: Sequence[str],
    preset: Preset,
    results_dir: pathlib.Path,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    retries: int = 0,
) -> dict:
    """Run the named stages, write artifacts + manifest, return the manifest.

    ``jobs > 1`` fans the stages out across processes.  Stage failures do
    not abort the run; they are recorded with status ``"failed"`` in the
    manifest (the CLI turns them into a non-zero exit).  ``retries`` re-runs
    failed stages (in-process, up to that many extra attempts each) before
    the manifest is finalized, so transient failures — a worker killed by
    the OS, a flaky timing assertion — do not fail the whole run; the
    manifest records the attempt count per stage.
    """
    from .stage import StageOutput  # local import: keep module load light

    results_dir = pathlib.Path(results_dir)
    notify = progress or (lambda message: None)
    started_at = time.time()
    records: Dict[str, dict] = {}

    def finish(worker_record: dict) -> None:
        record, data, reports, files, results = _pop_private(worker_record)
        if record["status"] == "ok":
            stage = get_stage(record["name"])
            write_stage_artifact(
                results_dir, stage,
                StageOutput(data=data, reports=reports or {}, files=files or {}),
                preset.name, results or [],
            )
            failed = record["expectations"]["failed"]
            verdict = "all expectations hold" if not failed else f"{failed} expectation(s) FAILED"
            notify(f"  {record['name']:<14s} ok in {record['duration_s']:6.2f}s — {verdict}")
        else:
            notify(f"  {record['name']:<14s} FAILED in {record['duration_s']:6.2f}s")
        records[record["name"]] = record

    names = list(stage_names)
    # Wall-clock-sensitive stages (Stage.serial) run after the pool drains,
    # so their timings are not contended by sibling stages.
    pooled = [name for name in names if not get_stage(name).serial]
    drained = [name for name in names if get_stage(name).serial]
    if jobs <= 1 or len(pooled) <= 1:
        for name in names:
            notify(f"running {name} (preset {preset.name})...")
            finish(execute_stage(name, preset))
    else:
        notify(f"running {len(pooled)} stages on {jobs} processes (preset {preset.name})...")
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {pool.submit(execute_stage, name, preset): name
                       for name in pooled}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    name = pending.pop(future)
                    try:
                        finish(future.result())
                    except Exception as exc:  # noqa: BLE001 - worker died hard
                        # The worker process died without returning a record
                        # (OOM-kill, segfault, broken pool).  Preserve the
                        # full exception chain — for exceptions that crossed
                        # the pool boundary it embeds the worker-side
                        # traceback — so the manifest says *why*, not just
                        # that it failed.
                        finish({
                            "name": name,
                            "title": get_stage(name).title,
                            "kind": get_stage(name).kind,
                            "artifact": stage_artifact_name(name),
                            "status": "failed",
                            "duration_s": 0.0,
                            "died_hard": True,
                            "error": "".join(
                                traceback.format_exception(
                                    type(exc), exc, exc.__traceback__
                                )
                            ),
                        })
        for name in drained:
            notify(f"running {name} (preset {preset.name}, uncontended)...")
            finish(execute_stage(name, preset))

    # Transient-failure policy: re-run failed stages in-process before the
    # manifest is finalized, recording how many attempts each one took.
    for record in records.values():
        record.setdefault("attempts", 1)
    for _ in range(max(0, retries)):
        failed = [name for name in names
                  if records.get(name, {}).get("status") == "failed"]
        if not failed:
            break
        for name in failed:
            attempts = records[name].get("attempts", 1) + 1
            notify(f"retrying {name} (attempt {attempts}, preset {preset.name})...")
            finish(execute_stage(name, preset))
            records[name]["attempts"] = attempts

    ordered: List[dict] = [records[name] for name in names if name in records]
    write_manifest(results_dir, preset.name, ordered, started_at, time.time())
    from .artifacts import load_manifest

    return load_manifest(results_dir)
