"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they verify that the individual mechanisms the
paper credits for its performance/robustness actually carry their weight in
this reproduction:

* the **backing table** raises the TCF's achievable load factor from ~80 %
  to 90 % (Section 4.1);
* the **shortcut optimisation** saves roughly one cache-line read per insert
  while the filter is below 75 % full;
* **map-reduce aggregation** removes the skew penalty for Zipfian counting
  (Section 5.4);
* **sorting the batch** before bulk GQF insertion eliminates intra-batch
  Robin-Hood shifting (Section 5.3).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_dict_rows
from repro.core.exceptions import FilterFullError
from repro.core.gqf import BulkGQF, QuotientFilterCore
from repro.core.tcf import PointTCF, TCFConfig
from repro.gpusim.stats import StatsRecorder
from repro.hashing.xorwow import generate_keys
from repro.workloads.generators import zipfian_count_dataset


def _max_load_factor(config: TCFConfig, n_slots: int = 4096) -> float:
    """Fill a TCF until the first insertion failure; return the load factor."""
    filt = PointTCF(n_slots, config, StatsRecorder())
    keys = generate_keys(n_slots * 2, seed=0xAB1A7E)
    try:
        for key in keys:
            filt.insert(int(key))
    except FilterFullError:
        pass
    return filt.load_factor


def test_ablation_backing_table_load_factor(benchmark, report_writer):
    """Without the backing table the TCF stalls near ~80 % load; with it the
    filter reaches 90 %+ (paper: 79.6 % vs 90 %)."""
    with_backing = TCFConfig(fingerprint_bits=16, block_size=16, backing_fraction=0.01)
    # A vanishingly small backing table approximates "no backing store".
    without_backing = TCFConfig(fingerprint_bits=16, block_size=16, backing_fraction=1e-9)

    lf_with = benchmark.pedantic(_max_load_factor, args=(with_backing,), rounds=1, iterations=1)
    lf_without = _max_load_factor(without_backing)

    rows = [
        {"configuration": "with backing table (1/100th)", "achievable_load_factor": lf_with},
        {"configuration": "without backing table", "achievable_load_factor": lf_without},
    ]
    report_writer(
        "ablation_backing_table",
        format_dict_rows(rows, ["configuration", "achievable_load_factor"],
                         "Ablation: TCF achievable load factor with/without the backing store"),
    )
    # At benchmark scale (a few hundred blocks) the first both-blocks-full
    # event strikes later than at the paper's 2^28 scale (millions of blocks,
    # where the filter stalls at ~79.6 % without the backing store), so the
    # check here is directional: the backing table must extend the achievable
    # load factor, and with it the filter must reach the 90 % target.
    assert lf_with >= 0.89
    assert lf_without < lf_with


def test_ablation_shortcut_optimisation(benchmark, report_writer):
    """The shortcut skips the secondary-block read below 75 % primary fill."""

    def measure(shortcut_fill: float) -> float:
        config = TCFConfig(fingerprint_bits=16, block_size=16, shortcut_fill=shortcut_fill)
        recorder = StatsRecorder()
        filt = PointTCF(4096, config, recorder)
        keys = generate_keys(2000, seed=0x5C)
        for key in keys:
            filt.insert(int(key))
        return recorder.total.cache_line_reads / 2000.0

    reads_with = benchmark.pedantic(measure, args=(0.75,), rounds=1, iterations=1)
    reads_without = measure(0.0)  # never shortcut

    rows = [
        {"configuration": "shortcut at 0.75 fill", "cache_line_reads_per_insert": reads_with},
        {"configuration": "shortcut disabled", "cache_line_reads_per_insert": reads_without},
    ]
    report_writer(
        "ablation_shortcut",
        format_dict_rows(rows, ["configuration", "cache_line_reads_per_insert"],
                         "Ablation: cache-line reads per TCF insert with/without the shortcut"),
    )
    assert reads_with < reads_without
    assert reads_without - reads_with > 0.5  # roughly one line saved per insert


def test_ablation_mapreduce_for_skew(benchmark, report_writer):
    """Map-reduce aggregation removes the hot-item work from skewed batches."""
    dataset = zipfian_count_dataset(3000, seed=0x21F)

    def measure(use_mapreduce: bool) -> dict:
        recorder = StatsRecorder()
        gqf = BulkGQF(12, 8, region_slots=1024, use_mapreduce=use_mapreduce,
                      recorder=recorder)
        gqf.bulk_insert(dataset.keys)
        return {
            "configuration": "map-reduce" if use_mapreduce else "direct",
            "slot_writes": recorder.total.cache_line_writes,
            "slots_shifted": recorder.total.slots_shifted,
        }

    mr = benchmark.pedantic(measure, args=(True,), rounds=1, iterations=1)
    direct = measure(False)
    report_writer(
        "ablation_mapreduce",
        format_dict_rows([mr, direct], ["configuration", "slot_writes", "slots_shifted"],
                         "Ablation: GQF work on a Zipfian batch with/without map-reduce"),
    )
    assert mr["slot_writes"] < direct["slot_writes"]


def test_ablation_sorted_bulk_insert(benchmark, report_writer):
    """Inserting a batch in sorted order eliminates intra-batch shifting."""
    keys = generate_keys(3000, seed=0x50F7)

    def measure(sort_first: bool) -> dict:
        recorder = StatsRecorder()
        core = QuotientFilterCore(12, 8, recorder, counting=True)
        from repro.hashing.fingerprints import FingerprintScheme

        scheme = FingerprintScheme(12, 8)
        quotients, remainders = scheme.key_to_slot(keys)
        order = np.argsort(quotients) if sort_first else np.arange(keys.size)
        for i in order:
            core.insert_fingerprint(int(quotients[i]), int(remainders[i]))
        return {
            "configuration": "sorted batch" if sort_first else "unsorted batch",
            "slots_shifted": recorder.total.slots_shifted,
        }

    sorted_run = benchmark.pedantic(measure, args=(True,), rounds=1, iterations=1)
    unsorted_run = measure(False)
    report_writer(
        "ablation_sorted_insert",
        format_dict_rows([sorted_run, unsorted_run], ["configuration", "slots_shifted"],
                         "Ablation: Robin-Hood slots shifted with sorted vs unsorted batches"),
    )
    assert sorted_run["slots_shifted"] <= unsorted_run["slots_shifted"] * 0.2 + 5
